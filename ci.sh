#!/usr/bin/env bash
# Hermetic CI: everything below must pass with the network disabled.
# The workspace has zero external dependencies (see DESIGN.md, "Hermetic
# build"), so --offline is not a restriction — it is the point.
set -euo pipefail
cd "$(dirname "$0")"

# Zero-warning policy for the whole workspace: -Dwarnings turns any
# warning in the release build into a hard error.
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace

# The morsel-driven executor must be invariant under the worker count:
# the whole suite runs serial and again with an 8-thread pool (the env
# var is read once per process, so each setting needs its own run).
PROBKB_THREADS=1 cargo test -q --offline --workspace
PROBKB_THREADS=8 cargo test -q --offline --workspace

# The cost-based planner must be invariant in results: the whole suite
# runs with the optimizer forced off (the unoptimized differential
# oracle) and forced on. Same one-read-per-process caveat as above.
PROBKB_OPTIMIZE=0 cargo test -q --offline --workspace
PROBKB_OPTIMIZE=1 cargo test -q --offline --workspace

# The partitioned Gibbs sampler must be invariant under its own worker
# pool: marginals, diagnostics, and R̂ early stops are a pure function of
# (seed, chains) at any PROBKB_GIBBS_WORKERS setting.
PROBKB_GIBBS_WORKERS=1 cargo test -q --offline --workspace
PROBKB_GIBBS_WORKERS=4 cargo test -q --offline --workspace

# Out-of-core storage must be invisible to results: the whole suite runs
# once more with every catalog forced through a hard-capped buffer pool
# (64 pages = 512 KiB) and an aggressive spill threshold, so every table
# larger than 256 rows lives in buffer-managed pages. Any divergence
# between paged and in-memory execution fails the normal assertions.
PROBKB_BUFFER_PAGES=64 PROBKB_SPILL_ROWS=256 cargo test -q --offline --workspace

# Out-of-core grounding smoke: the acceptance harness grounds the same
# KB in memory and through a capped pool and asserts byte-identity of
# facts, factors, and the derivation schedule.
cargo run --release --offline -p probkb-bench --bin outofcore -- --scale 0.02 --pool 64

# Benches (including the join thread-scaling sweep and the out-of-core
# pool sweep) must stay compiling.
cargo bench --offline --no-run --workspace

# Gibbs bench smoke: the sampler sweep and the convergence-control
# comparison (fixed vs R̂-stopped) must run end to end; MICROBENCH_SAMPLES
# keeps it to a smoke pass.
MICROBENCH_SAMPLES=1 cargo bench --offline -p probkb-bench --bench gibbs
cargo run --release --offline -p probkb-bench --bin table2

# Incremental-expansion bench smoke: apply_delta must stay byte-identical
# to the full re-ground oracle (the bench asserts the fingerprints match)
# and the blanket-scoped re-inference path must run end to end. The
# incremental test suites themselves (incremental_differential,
# incremental_inference, incremental_durability, incremental_stats) ride
# in the --workspace test matrix above.
MICROBENCH_SAMPLES=1 cargo bench --offline -p probkb-bench --bench delta

# Local-grounding differential (DESIGN.md, "Local grounding"): answers
# from the budgeted backward-chaining grounder must match the global
# pipeline on every budget-covered fact, and truncated answers must
# honor the budget shape contract. The suite reads PROBKB_LOCAL_BUDGET
# per answer, so it runs once starved (4 nodes/4 factors — almost every
# component truncates) and once unlimited (every component covered; the
# unset default also rides in the --workspace matrix above).
PROBKB_LOCAL_BUDGET=4 cargo test -q --offline --test local_grounding
PROBKB_LOCAL_BUDGET=100000,100000 cargo test -q --offline --test local_grounding

# Local-grounding bench smoke: time-to-first-marginal for one query,
# budgeted local path vs full expand, must run end to end (the ≥50x
# acceptance numbers live in EXPERIMENTS.md).
MICROBENCH_SAMPLES=1 cargo bench --offline -p probkb-bench --bench local

# Join-order microbench: the statistics-driven planner must beat the
# worst-case left-deep order on the skewed workload (the binary asserts
# both plans agree on output size; see EXPERIMENTS.md for numbers).
cargo run --release --offline -p probkb-bench --bin join_order

# Durability smoke (DESIGN.md, "Durability"): a run killed mid-grounding
# must resume at the last completed iteration and produce an export
# byte-identical to an uninterrupted run.
rm -rf target/ci-ckpt-full target/ci-ckpt-crash
PROBKB_CKPT_DIR=target/ci-ckpt-full \
  cargo run --release --offline --example checkpoint_resume
set +e
PROBKB_CKPT_DIR=target/ci-ckpt-crash PROBKB_CRASH_AFTER_ITER=4 \
  cargo run --release --offline --example checkpoint_resume
crash_status=$?
set -e
if [ "$crash_status" -ne 86 ]; then
  echo "ci: expected injected-crash exit code 86, got $crash_status" >&2
  exit 1
fi
PROBKB_CKPT_DIR=target/ci-ckpt-crash \
  cargo run --release --offline --example checkpoint_resume
cmp target/ci-ckpt-full/export.pkb target/ci-ckpt-crash/export.pkb

# Client/server smoke (DESIGN.md, "Client/server architecture"): start
# probkb-server on the Table-2 synthetic KB at smoke scale, drive it with
# probkb-cli one-shots over the real wire protocol, and shut it down
# gracefully through the protocol — zero external dependencies.
server_log=target/ci-server.log
rm -f "$server_log"
cargo run --release --offline -p probkb-server -- \
  --reverb-scale 0.002 --addr 127.0.0.1:0 --burn-in 50 --samples 300 \
  > "$server_log" 2>&1 &
server_pid=$!
for _ in $(seq 1 300); do
  grep -q "probkb-server listening on" "$server_log" && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "ci: probkb-server died during startup" >&2; cat "$server_log" >&2; exit 1
  fi
  sleep 0.2
done
addr=$(sed -n 's/^probkb-server listening on \([0-9.:]*\) .*/\1/p' "$server_log")
if [ -z "$addr" ]; then
  echo "ci: could not parse server address" >&2; cat "$server_log" >&2; exit 1
fi
cli() { cargo run --release --offline -q -p probkb-client-cli -- --addr "$addr" "$@"; }
cli ping               | grep -q "^PONG epoch=0 protocol=1"
cli stats              | grep -q "^epoch=0 facts="
cli fact --id 0        | grep -q "^epoch=0 \[extracted, P="
cli marginal --id 0    | grep -q "source=stored"
# MARGINAL_LOCAL over the wire: budgeted local grounding served from a
# read session, twice so the second answer comes from the epoch cache.
cli marginal --id 0 --local --budget 64,256 | grep -q "frontier_stops="
cli marginal --id 0 --local --budget 64,256 | grep -q "cache=hit"
cli apply 'fact 0.80 smoke_rel(sx:smokeC, sy:smokeC)' | grep -q "^applied: epoch=1"
cli fact smoke_rel sx sy | grep -q "^epoch=1 \[extracted, P=0.8000\]"
# Retraction is a structured, non-fatal unsupported error (cli exits 1).
retract_out=$(cli retract 'fact 0.80 smoke_rel(sx:smokeC, sy:smokeC)' 2>&1 || true)
echo "$retract_out" | grep -q "retract is not supported"
cli shutdown           | grep -q "server shutting down at epoch=1"
wait "$server_pid"
grep -q "graceful shutdown complete" "$server_log"

echo "ci: all green"
