#!/usr/bin/env bash
# Hermetic CI: everything below must pass with the network disabled.
# The workspace has zero external dependencies (see DESIGN.md, "Hermetic
# build"), so --offline is not a restriction — it is the point.
set -euo pipefail
cd "$(dirname "$0")"

# The support crate is the substrate everything else stands on: it must
# build without a single warning. -Dwarnings turns any into a hard error.
RUSTFLAGS="-D warnings" cargo build --release --offline -p probkb-support

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo bench --offline --no-run --workspace
cargo run --release --offline -p probkb-bench --bin table2

echo "ci: all green"
