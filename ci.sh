#!/usr/bin/env bash
# Hermetic CI: everything below must pass with the network disabled.
# The workspace has zero external dependencies (see DESIGN.md, "Hermetic
# build"), so --offline is not a restriction — it is the point.
set -euo pipefail
cd "$(dirname "$0")"

# The support crate is the substrate everything else stands on: it must
# build without a single warning. -Dwarnings turns any into a hard error.
RUSTFLAGS="-D warnings" cargo build --release --offline -p probkb-support

cargo build --release --offline --workspace

# The morsel-driven executor must be invariant under the worker count:
# the whole suite runs serial and again with an 8-thread pool (the env
# var is read once per process, so each setting needs its own run).
PROBKB_THREADS=1 cargo test -q --offline --workspace
PROBKB_THREADS=8 cargo test -q --offline --workspace

# Benches (including the join thread-scaling sweep) must stay compiling.
cargo bench --offline --no-run --workspace
cargo run --release --offline -p probkb-bench --bin table2

echo "ci: all green"
