//! A hand-computed worked example covering EVERY structural pattern
//! (M1..M6), verified on all four engines. Each pattern has its own
//! relations and entities, arranged so it derives exactly one predictable
//! fact — any join-geometry mistake in any partition shows up as a wrong
//! or missing name here.

use std::collections::BTreeSet;

use probkb::prelude::*;

const SIX_PATTERNS: &str = r#"
    # P1: p1(x,y) <- q1(x,y)
    fact 0.9 q1(a1:A1, b1:B1)
    rule 1.0 p1(x:A1, y:B1) :- q1(x, y)

    # P2: p2(x,y) <- q2(y,x)
    fact 0.9 q2(b2:B2, a2:A2)
    rule 1.0 p2(x:A2, y:B2) :- q2(y, x)

    # P3: p3(x,y) <- q3(z,x), r3(z,y)
    fact 0.9 q3(z3:Z3, a3:A3)
    fact 0.9 r3(z3:Z3, b3:B3)
    rule 1.0 p3(x:A3, y:B3) :- q3(z:Z3, x), r3(z, y)

    # P4: p4(x,y) <- q4(x,z), r4(z,y)
    fact 0.9 q4(a4:A4, z4:Z4)
    fact 0.9 r4(z4:Z4, b4:B4)
    rule 1.0 p4(x:A4, y:B4) :- q4(x, z:Z4), r4(z, y)

    # P5: p5(x,y) <- q5(z,x), r5(y,z)
    fact 0.9 q5(z5:Z5, a5:A5)
    fact 0.9 r5(b5:B5, z5:Z5)
    rule 1.0 p5(x:A5, y:B5) :- q5(z:Z5, x), r5(y, z)

    # P6: p6(x,y) <- q6(x,z), r6(y,z)
    fact 0.9 q6(a6:A6, z6:Z6)
    fact 0.9 r6(b6:B6, z6:Z6)
    rule 1.0 p6(x:A6, y:B6) :- q6(x, z:Z6), r6(y, z)
"#;

/// The facts each pattern must derive.
fn expected_inferences() -> BTreeSet<String> {
    [
        "p1(a1, b1)",
        "p2(a2, b2)",
        "p3(a3, b3)",
        "p4(a4, b4)",
        "p5(a5, b5)",
        "p6(a6, b6)",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn inferred_names(kb: &ProbKb, expansion: &Expansion) -> BTreeSet<String> {
    expansion
        .new_facts
        .iter()
        .map(|f| kb.fact_to_string(f))
        .collect()
}

#[test]
fn all_six_patterns_derive_exactly_their_fact() {
    let kb = parse(SIX_PATTERNS).unwrap().build();
    assert!(kb.validate().is_empty(), "{:?}", kb.validate());

    // All six structural partitions are populated.
    let partitioning = Partitioning::build(&kb.rules);
    assert_eq!(partitioning.k(), 6);
    assert!(partitioning.rejected().is_empty());

    for backend in [
        Backend::SingleNode,
        Backend::Tuffy,
        Backend::Mpp {
            segments: 3,
            mode: MppMode::Optimized,
        },
        Backend::Mpp {
            segments: 3,
            mode: MppMode::NoViews,
        },
    ] {
        let expansion = expand(
            &kb,
            &ExpandOptions {
                backend,
                config: GroundingConfig::default(),
            },
        )
        .unwrap();
        assert_eq!(
            inferred_names(&kb, &expansion),
            expected_inferences(),
            "{backend:?} derived the wrong facts"
        );
        // 10 base facts + 6 derived.
        assert_eq!(expansion.outcome.facts.len(), 16, "{backend:?}");
        // 10 singleton factors + 6 rule factors.
        assert_eq!(expansion.outcome.factors.len(), 16, "{backend:?}");
        assert!(expansion.outcome.report.converged, "{backend:?}");
    }
}

#[test]
fn six_patterns_use_six_queries_per_iteration() {
    let kb = parse(SIX_PATTERNS).unwrap().build();
    let mut engine = SingleNodeEngine::new();
    let config = GroundingConfig {
        apply_constraints: false,
        ..GroundingConfig::default()
    };
    let out = ground(&kb, &mut engine, &config).unwrap();
    for iter in &out.report.iterations {
        assert_eq!(iter.queries, 6, "the paper's k = 6 queries per iteration");
    }
}

#[test]
fn semi_naive_handles_all_patterns() {
    let kb = parse(SIX_PATTERNS).unwrap().build();
    let mut engine = SemiNaiveEngine::new();
    let config = GroundingConfig {
        apply_constraints: false,
        ..GroundingConfig::default()
    };
    let out = ground(&kb, &mut engine, &config).unwrap();
    assert_eq!(out.facts.len(), 16);
    assert_eq!(out.factors.len(), 16);
    // Delta-restricted length-3 joins run two queries per partition:
    // 1×2 (for P1, P2) + 2×4 (for P3..P6) = 10.
    assert_eq!(out.report.iterations[0].queries, 10);
}

#[test]
fn each_pattern_factor_links_head_to_its_body() {
    let kb = parse(SIX_PATTERNS).unwrap().build();
    let mut engine = SingleNodeEngine::new();
    let out = ground(&kb, &mut engine, &GroundingConfig::default()).unwrap();
    let lineage = Lineage::from_phi(&out.factors);

    use probkb::core::relmodel::tpi;
    let mut names = std::collections::HashMap::new();
    for row in out.facts.rows() {
        let id = row[tpi::I].as_int().unwrap();
        let rel = kb
            .relations
            .resolve(row[tpi::R].as_int().unwrap() as u32)
            .unwrap();
        names.insert(id, rel.to_string());
    }

    let mut checked = 0;
    for (id, rel) in &names {
        if !rel.starts_with('p') {
            continue; // base facts
        }
        let derivations = lineage.derivations(*id);
        assert_eq!(derivations.len(), 1, "{rel} should have one derivation");
        let body_rels: BTreeSet<String> = derivations[0]
            .body
            .iter()
            .map(|b| names[b].clone())
            .collect();
        let suffix = &rel[1..]; // "pN" → "N"
        let expected: BTreeSet<String> = if suffix == "1" || suffix == "2" {
            BTreeSet::from([format!("q{suffix}")])
        } else {
            BTreeSet::from([format!("q{suffix}"), format!("r{suffix}")])
        };
        assert_eq!(body_rels, expected, "{rel}'s body relations");
        checked += 1;
    }
    assert_eq!(checked, 6);
}
