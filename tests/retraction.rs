//! Retraction is deliberately unsupported (ROADMAP open item): callers
//! must get a *structured* `Unsupported` error — stable feature name,
//! counts in the reason — not a panic or a silent no-op. These tests pin
//! that shape so the server's `unsupported` wire error (and any future
//! real implementation) has a contract to hold.

use probkb::prelude::*;
use probkb::relational::prelude::Error;

const BASE: &str = r#"
    fact 0.90 qa(a1:A, b1:B)
    fact 0.80 qa(a2:A, b2:B)
    rule 1.20 pa(x:A, y:B) :- qa(x, y)
"#;

fn session() -> DeltaSession {
    let kb = parse(BASE).unwrap().build();
    let config = GroundingConfig {
        apply_constraints: false,
        threads: Some(1),
        ..GroundingConfig::default()
    };
    DeltaSession::new(kb, config).unwrap()
}

#[test]
fn retract_returns_structured_unsupported_error() {
    let mut session = session();
    let retraction = session.parse_retraction("fact 0.90 qa(a1:A, b1:B)").unwrap();
    assert_eq!(retraction.facts.len(), 1);

    let err = session.retract(&retraction).unwrap_err();
    match err {
        Error::Unsupported { feature, reason } => {
            assert_eq!(feature, "retract");
            assert!(reason.contains("1 fact(s)"), "reason: {reason}");
            assert!(reason.contains("0 rule(s)"), "reason: {reason}");
            assert!(
                reason.contains("rebuild a session"),
                "reason should point at the workaround: {reason}"
            );
        }
        other => panic!("expected Error::Unsupported, got {other:?}"),
    }
}

#[test]
fn retract_error_counts_follow_the_delta() {
    let mut session = session();
    let retraction = session
        .parse_retraction("fact 0.90 qa(a1:A, b1:B)\nfact 0.80 qa(a2:A, b2:B)\nrule 1.20 pa(x:A, y:B) :- qa(x, y)")
        .unwrap();
    let err = session.retract(&retraction).unwrap_err();
    let Error::Unsupported { reason, .. } = err else {
        panic!("expected Error::Unsupported");
    };
    assert!(reason.contains("2 fact(s)"), "reason: {reason}");
    assert!(reason.contains("1 rule(s)"), "reason: {reason}");
}

#[test]
fn retract_leaves_the_session_usable() {
    let mut session = session();
    let before = session.facts().len();
    let retraction = session.parse_retraction("fact 0.90 qa(a1:A, b1:B)").unwrap();
    let _ = session.retract(&retraction).unwrap_err();

    // The failed retraction must not have mutated grounded state, and a
    // normal addition must still go through.
    assert_eq!(session.facts().len(), before);
    let addition = session.parse_delta("fact 0.85 qa(a3:A, b3:B)").unwrap();
    let applied = session.apply_delta(&addition).unwrap();
    assert!(applied.report.new_facts >= 1);
}

/// `MARGINAL_LOCAL` claimed opcode 7, so the first unknown request
/// opcode is now 8 — and unknown opcodes must stay *structured* protocol
/// errors (same contract as the structured `unsupported` retract error:
/// a client never gets a panic or a silent drop for a feature the server
/// does not speak). Pinned here so adding the next opcode forces a
/// deliberate update.
#[test]
fn opcode_after_marginal_local_is_rejected_with_a_structured_error() {
    use probkb_client::protocol::{decode_request, encode_request, Request};

    // Wire byte 7 = MARGINAL_LOCAL; 8 is the first unassigned opcode.
    let err = decode_request(&[8]).unwrap_err();
    assert!(
        err.to_string().contains("unknown request opcode 8"),
        "unexpected error: {err}"
    );

    // Opcode 7 itself decodes: the boundary is exactly one past it.
    let bytes = encode_request(&Request::MarginalLocal {
        fact: probkb_client::protocol::FactRef::Id(3),
        budget: Some((16, 64)),
    });
    assert_eq!(bytes[0], 7, "MARGINAL_LOCAL opcode moved; update this pin");
    let back = decode_request(&bytes).unwrap();
    assert!(matches!(
        back,
        Request::MarginalLocal {
            fact: probkb_client::protocol::FactRef::Id(3),
            budget: Some((16, 64)),
        }
    ));
}

#[test]
fn pipeline_retract_propagates_the_same_error() {
    let kb = parse(BASE).unwrap().build();
    let config = GroundingConfig {
        apply_constraints: false,
        threads: Some(1),
        ..GroundingConfig::default()
    };
    let gibbs = GibbsConfig {
        burn_in: 50,
        samples: 200,
        workers: Some(1),
        ..GibbsConfig::default()
    };
    let mut pipeline = IncrementalPipeline::new(kb, config, gibbs).unwrap();
    let retraction = pipeline.parse_retraction("fact 0.90 qa(a1:A, b1:B)").unwrap();
    let err = pipeline.retract(&retraction).unwrap_err();
    assert!(matches!(err, Error::Unsupported { ref feature, .. } if feature == "retract"));
}
