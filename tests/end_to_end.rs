//! Cross-crate integration tests: the full pipeline from KB text to
//! marginals, exercised through the public facade.

use probkb::pipeline::{run_pipeline, PipelineOptions, Sampler};
use probkb::prelude::*;

fn table1_options() -> PipelineOptions {
    PipelineOptions {
        gibbs: GibbsConfig {
            burn_in: 100,
            samples: 4000,
            seed: 12,
            ..GibbsConfig::default()
        },
        ..PipelineOptions::default()
    }
}

#[test]
fn table1_pipeline_reproduces_figure3() {
    let kb = table1_kb();
    let result = run_pipeline(&kb, &table1_options()).unwrap();
    assert_eq!(result.expansion.outcome.facts.len(), 7);
    assert_eq!(result.expansion.outcome.factors.len(), 8);
    assert_eq!(result.expansion.new_facts.len(), 5);
    assert!(result.expansion.outcome.report.converged);

    // Every inferred fact has a usable marginal in (0, 1).
    for i in 0..result.expansion.new_facts.len() {
        let p = result.marginal_of_new_fact(i).expect("marginal exists");
        assert!(p > 0.0 && p < 1.0, "marginal {p} out of range");
    }

    // Marginals were written back: no NULL weights remain.
    use probkb::core::relmodel::tpi;
    assert!(result
        .facts_with_marginals
        .rows()
        .iter()
        .all(|r| !r[tpi::W].is_null()));
}

#[test]
fn marginals_reflect_rule_strength() {
    // Same body, two head rules with very different weights: the
    // strong-rule head must end up more probable.
    let kb = parse(
        r#"
        fact 3.0 born_in(A:Person, X:City)
        rule 3.0 live_in(x:Person, y:City) :- born_in(x, y)
        rule 0.1 works_in(x:Person, y:City) :- born_in(x, y)
        "#,
    )
    .unwrap()
    .build();
    let result = run_pipeline(&kb, &table1_options()).unwrap();
    let strong = result
        .expansion
        .new_facts
        .iter()
        .position(|f| kb.relations.resolve(f.rel.raw()) == Some("live_in"))
        .unwrap();
    let weak = result
        .expansion
        .new_facts
        .iter()
        .position(|f| kb.relations.resolve(f.rel.raw()) == Some("works_in"))
        .unwrap();
    let p_strong = result.marginal_of_new_fact(strong).unwrap();
    let p_weak = result.marginal_of_new_fact(weak).unwrap();
    assert!(
        p_strong > p_weak + 0.1,
        "strong rule {p_strong} should beat weak rule {p_weak}"
    );
}

#[test]
fn samplers_agree_on_small_graphs() {
    let kb = table1_kb();
    let seq = run_pipeline(&kb, &table1_options()).unwrap();
    let par = run_pipeline(
        &kb,
        &PipelineOptions {
            sampler: Sampler::ChromaticGibbs(4),
            ..table1_options()
        },
    )
    .unwrap();
    let diff = seq.marginals.max_diff(&par.marginals);
    assert!(diff < 0.06, "samplers disagree by {diff}");

    // Loopy BP lands in the same neighbourhood (Table 1's graph has one
    // loop through the located_in head).
    let bp = run_pipeline(
        &kb,
        &PipelineOptions {
            sampler: Sampler::BeliefPropagation(BpConfig::default()),
            ..table1_options()
        },
    )
    .unwrap();
    let diff = seq.marginals.max_diff(&bp.marginals);
    assert!(diff < 0.1, "BP disagrees with Gibbs by {diff}");
}

#[test]
fn gibbs_matches_exact_oracle_on_table1() {
    let kb = table1_kb();
    let result = run_pipeline(
        &kb,
        &PipelineOptions {
            gibbs: GibbsConfig {
                burn_in: 500,
                samples: 30_000,
                seed: 5,
                ..GibbsConfig::default()
            },
            ..PipelineOptions::default()
        },
    )
    .unwrap();
    let exact = exact_marginals(&result.graph.graph);
    for (v, (&got, &want)) in result.marginals.p.iter().zip(exact.iter()).enumerate() {
        assert!(
            (got - want).abs() < 0.02,
            "var {v}: gibbs {got} vs exact {want}"
        );
    }
}

#[test]
fn all_backends_produce_identical_expansions() {
    let kb = generate(&ReverbConfig::tiny());
    let config = GroundingConfig {
        max_iterations: 4,
        preclean: true,
        apply_constraints: true,
        max_total_facts: Some(100_000),
        threads: None,
        optimize: None,
    };
    let mut reference: Option<Vec<[i64; 5]>> = None;
    for backend in [
        Backend::SingleNode,
        Backend::Tuffy,
        Backend::Mpp {
            segments: 4,
            mode: MppMode::Optimized,
        },
        Backend::Mpp {
            segments: 4,
            mode: MppMode::NoViews,
        },
    ] {
        let options = ExpandOptions {
            config: config.clone(),
            backend,
        };
        let expansion = expand(&kb, &options).unwrap();
        let mut keys: Vec<[i64; 5]> = expansion.new_facts.iter().map(fact_key).collect();
        keys.sort();
        match &reference {
            None => reference = Some(keys),
            Some(expected) => assert_eq!(&keys, expected, "{backend:?} diverges"),
        }
    }
    assert!(
        reference.map(|k| !k.is_empty()).unwrap_or(false),
        "expansion inferred nothing"
    );
}

#[test]
fn lineage_is_consistent_with_expansion() {
    let kb = table1_kb();
    let result = run_pipeline(&kb, &table1_options()).unwrap();
    use probkb::core::relmodel::tpi;
    for row in result.expansion.outcome.facts.rows() {
        let id = row[tpi::I].as_int().unwrap();
        let inferred = row[tpi::W].is_null();
        // Inferred facts must have derivations; base facts must not.
        assert_eq!(
            !result.lineage.is_base(id),
            inferred,
            "fact {id} lineage mismatch"
        );
        if inferred {
            // Every ancestor chain bottoms out in base facts.
            let ancestors = result.lineage.ancestors(id);
            assert!(ancestors.iter().any(|&a| result.lineage.is_base(a)));
        }
    }
}

#[test]
fn export_roundtrip_preserves_inference() {
    let kb = table1_kb();
    let result = run_pipeline(&kb, &table1_options()).unwrap();
    let json = to_json(&result.graph);
    let back = from_json(&json).unwrap();
    let m1 = gibbs_marginals(
        &result.graph.graph,
        &GibbsConfig {
            burn_in: 100,
            samples: 2000,
            seed: 3,
            ..GibbsConfig::default()
        },
    );
    let m2 = gibbs_marginals(
        &back.graph,
        &GibbsConfig {
            burn_in: 100,
            samples: 2000,
            seed: 3,
            ..GibbsConfig::default()
        },
    );
    assert_eq!(m1.p, m2.p, "roundtripped graph must sample identically");
}

#[test]
fn quality_control_improves_precision_end_to_end() {
    // Seed picked by sweeping the generator: QC beats raw grounding on
    // 22 of 24 scenarios; this one shows the effect with a wide margin
    // (raw ≈ 0.80 vs QC ≈ 0.95) so the assertion is robust to small
    // sampler perturbations.
    let clean = generate(&ReverbConfig::tiny().with_seed(10));
    let corrupted = inject(&clean, &ErrorConfig::for_kb(&clean));

    let run = |kb: &ProbKb, qc: bool| {
        let mut engine = SingleNodeEngine::new();
        let config = GroundingConfig {
            max_iterations: 5,
            preclean: qc,
            apply_constraints: qc,
            max_total_facts: Some(200_000),
            threads: None,
            optimize: None,
        };
        let out = ground(kb, &mut engine, &config).unwrap();
        evaluate(&out, &corrupted.truth)
    };

    let raw = run(&corrupted.kb, false);
    let cleaned = clean_rules(&corrupted.kb, 0.5);
    let qc = run(&cleaned, true);
    assert!(raw.inferred > 0);
    assert!(
        qc.precision >= raw.precision,
        "QC precision {} should be >= raw {}",
        qc.precision,
        raw.precision
    );
}
