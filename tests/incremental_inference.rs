//! Incremental inference: after `IncrementalPipeline::apply_delta`, the
//! blanket-scoped warm-restart marginals must (a) agree with the exact
//! enumeration oracle, (b) agree with a full cold restart over the
//! merged KB, (c) be byte-identical at any worker count, and (d) leave
//! variables outside the delta's Markov blanket bitwise untouched.

use probkb::core::relmodel::tpi;
use probkb::prelude::*;

/// Two disconnected components: the delta only ever touches `qa`/`pa`,
/// so the `qb`/`pb` component must never be resampled.
const BASE: &str = r#"
    fact 0.90 qa(a1:A, b1:B)
    fact 0.80 qa(a2:A, b2:B)
    fact 0.70 qb(c1:C, d1:D)
    rule 1.20 pa(x:A, y:B) :- qa(x, y)
    rule 0.80 pb(x:C, y:D) :- qb(x, y)
"#;

const UNION: &str = r#"
    fact 0.90 qa(a1:A, b1:B)
    fact 0.80 qa(a2:A, b2:B)
    fact 0.70 qb(c1:C, d1:D)
    rule 1.20 pa(x:A, y:B) :- qa(x, y)
    rule 0.80 pb(x:C, y:D) :- qb(x, y)
    fact 0.85 qa(a3:A, b3:B)
"#;

fn base_and_delta() -> (ProbKb, KbDelta) {
    let union = parse(UNION).unwrap().build();
    let n_base_facts = parse(BASE).unwrap().build().facts.len();
    let delta = KbDelta {
        facts: union.facts[n_base_facts..].to_vec(),
        rules: vec![],
    };
    let mut base = union;
    base.facts.truncate(n_base_facts);
    (base, delta)
}

fn ground_config(threads: usize) -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        threads: Some(threads),
        ..GroundingConfig::default()
    }
}

fn gibbs(workers: usize) -> GibbsConfig {
    GibbsConfig {
        burn_in: 200,
        samples: 20_000,
        seed: 11,
        chains: 2,
        workers: Some(workers),
        ..GibbsConfig::default()
    }
}

const TOL: f64 = 0.05;

#[test]
fn delta_marginals_match_exact_oracle() {
    let (base, delta) = base_and_delta();
    let mut pipeline = IncrementalPipeline::new(base, ground_config(1), gibbs(1)).unwrap();
    let out = pipeline.apply_delta(&delta).unwrap();
    assert!(!out.grounding.full_fallback);
    // The disconnected qb/pb component stays outside the blanket.
    assert!(
        out.inference.touched < pipeline.graph().graph.num_vars(),
        "delta should not touch the whole graph"
    );

    let exact = exact_marginals(&pipeline.graph().graph);
    for (v, (&got, &want)) in pipeline
        .marginals()
        .iter()
        .zip(exact.iter())
        .enumerate()
    {
        assert!(
            (got - want).abs() < TOL,
            "var {v}: incremental {got:.4} vs exact {want:.4}"
        );
    }
}

#[test]
fn incremental_matches_full_restart_within_tolerance() {
    let (base, delta) = base_and_delta();
    let mut incremental =
        IncrementalPipeline::new(base.clone(), ground_config(1), gibbs(1)).unwrap();
    incremental.apply_delta(&delta).unwrap();

    // Cold restart over the merged KB: same facts and factors
    // (byte-identical grounding), independent sampling run.
    let mut union_kb = base;
    union_kb.facts.extend(delta.facts.iter().cloned());
    let restart = IncrementalPipeline::new(union_kb, ground_config(1), gibbs(1)).unwrap();

    assert_eq!(
        format!("{:?}", incremental.session().facts()),
        format!("{:?}", restart.session().facts()),
        "incremental and restart grounding diverged"
    );
    // Graphs may order variables differently (splice vs fresh build), so
    // compare per fact id.
    for (v, &fact_id) in restart.graph().var_to_fact.iter().enumerate() {
        let cold = restart.marginals()[v];
        let warm = incremental
            .marginal_of_fact(fact_id)
            .expect("fact missing from incremental graph");
        assert!(
            (cold - warm).abs() < TOL,
            "fact {fact_id}: restart {cold:.4} vs incremental {warm:.4}"
        );
    }
}

#[test]
fn worker_count_never_changes_delta_marginals() {
    let (base, delta) = base_and_delta();
    let run = |workers: usize| {
        let mut p =
            IncrementalPipeline::new(base.clone(), ground_config(workers), gibbs(workers))
                .unwrap();
        p.apply_delta(&delta).unwrap();
        p.marginals()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u64>>()
    };
    let baseline = run(1);
    for workers in [2usize, 4] {
        assert_eq!(baseline, run(workers), "workers=1 vs workers={workers}");
    }
}

#[test]
fn untouched_component_keeps_marginals_bitwise() {
    let (base, delta) = base_and_delta();
    let mut pipeline = IncrementalPipeline::new(base.clone(), ground_config(1), gibbs(1)).unwrap();

    // All facts of the disconnected qb/pb component, by relation id.
    let quiet: Vec<u32> = ["qb", "pb"]
        .iter()
        .filter_map(|name| base.relations.get(name))
        .collect();
    assert_eq!(quiet.len(), 2);
    let before: Vec<(i64, u64)> = pipeline
        .session()
        .facts()
        .rows()
        .iter()
        .filter_map(|row| {
            let rel = row[tpi::R].as_int()? as u32;
            if !quiet.contains(&rel) {
                return None;
            }
            let id = row[tpi::I].as_int()?;
            Some((id, pipeline.marginal_of_fact(id)?.to_bits()))
        })
        .collect();
    assert_eq!(before.len(), 2, "expected the qb fact and the derived pb fact");

    let out = pipeline.apply_delta(&delta).unwrap();
    for (old_id, bits) in before {
        let new_id = out.remap[old_id as usize];
        let after = pipeline
            .marginal_of_fact(new_id)
            .expect("untouched fact lost its variable")
            .to_bits();
        assert_eq!(
            bits, after,
            "marginal of untouched fact {old_id} (now {new_id}) changed"
        );
    }
}
