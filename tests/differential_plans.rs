//! Differential plan-equivalence tests: the cost-based planner may pick
//! any join order, build side, or motion strategy, but grounding output
//! must be **byte-identical** to the unoptimized oracle — across all six
//! structural rule partitions, serial and parallel execution, and the
//! single-node and MPP engines.

use probkb_support::check::prelude::*;

use probkb::mpp::prelude::NetworkModel;
use probkb::prelude::*;

/// Tiny xorshift generator so each proptest case derives a whole KB from
/// one seed (keeps the strategy simple and shrinkable).
struct Rng(u64);

impl Rng {
    fn pick(&mut self, bound: u64) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x % bound
    }
}

/// Build a random KB whose rules populate every one of the six
/// structural partitions (the same shapes as `tests/all_patterns.rs`,
/// but with randomized fact sets of skewed sizes so the optimizer has
/// real cardinality differences to react to).
fn random_six_pattern_kb(seed: u64, constrained: bool) -> ProbKb {
    let mut rng = Rng(seed | 1);
    let mut text = String::new();
    for p in 1..=6u32 {
        // Randomized, deliberately unbalanced table sizes per relation.
        let q_facts = 1 + rng.pick(8);
        let r_facts = 1 + rng.pick(3);
        let pool = 2 + rng.pick(3);
        let mut fact = |rel: &str, n: u64| {
            for _ in 0..n {
                let i = rng.pick(pool);
                let j = rng.pick(pool);
                let w = 50 + rng.pick(50);
                let (subj, obj) = match (rel.as_bytes()[0], p) {
                    // q1/q2 relate A and B directly; body order varies
                    // per pattern but entity classes stay consistent.
                    (b'q', 1) => (format!("a{p}_{i}:A{p}"), format!("b{p}_{j}:B{p}")),
                    (b'q', 2) => (format!("b{p}_{i}:B{p}"), format!("a{p}_{j}:A{p}")),
                    (b'q', 3) | (b'q', 5) => {
                        (format!("z{p}_{i}:Z{p}"), format!("a{p}_{j}:A{p}"))
                    }
                    (b'q', _) => (format!("a{p}_{i}:A{p}"), format!("z{p}_{j}:Z{p}")),
                    (_, 3) | (_, 4) => (format!("z{p}_{i}:Z{p}"), format!("b{p}_{j}:B{p}")),
                    _ => (format!("b{p}_{i}:B{p}"), format!("z{p}_{j}:Z{p}")),
                };
                text.push_str(&format!("fact 0.{w} {rel}({subj}, {obj})\n"));
            }
        };
        fact(&format!("q{p}"), q_facts);
        if p >= 3 {
            fact(&format!("r{p}"), r_facts);
        }
    }
    text.push_str("rule 1.0 p1(x:A1, y:B1) :- q1(x, y)\n");
    text.push_str("rule 1.0 p2(x:A2, y:B2) :- q2(y, x)\n");
    text.push_str("rule 1.0 p3(x:A3, y:B3) :- q3(z:Z3, x), r3(z, y)\n");
    text.push_str("rule 1.0 p4(x:A4, y:B4) :- q4(x, z:Z4), r4(z, y)\n");
    text.push_str("rule 1.0 p5(x:A5, y:B5) :- q5(z:Z5, x), r5(y, z)\n");
    text.push_str("rule 1.0 p6(x:A6, y:B6) :- q6(x, z:Z6), r6(y, z)\n");
    if constrained {
        // Exercise Query 3 in the differential run too.
        text.push_str("functional q1 1 1\n");
    }
    parse(&text).unwrap().build()
}

fn config(optimize: bool, threads: usize, constrained: bool) -> GroundingConfig {
    GroundingConfig {
        max_iterations: 4,
        preclean: false,
        apply_constraints: constrained,
        max_total_facts: Some(20_000),
        threads: Some(threads),
        optimize: Some(optimize),
    }
}

/// Byte-level fingerprint of a grounding outcome: the Debug rendering
/// includes schemas, every row, and row order.
fn fingerprint(out: &GroundingOutcome) -> (String, String) {
    (
        format!("{:?}", out.facts),
        format!("{:?}", out.factors),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full differential matrix: unoptimized serial single-node is
    /// the oracle; the optimizer, the fork-join pool, the semi-naive
    /// engine, and both MPP modes must reproduce its facts and factors
    /// byte for byte.
    #[test]
    fn all_plans_ground_byte_identically(seed in any::<u64>(), constrained in any::<bool>()) {
        let kb = random_six_pattern_kb(seed, constrained);

        let mut oracle_engine = SingleNodeEngine::new();
        let oracle = ground(&kb, &mut oracle_engine, &config(false, 1, constrained))
            .expect("oracle");
        let expected = fingerprint(&oracle);

        // Optimizer on, serial.
        let mut e = SingleNodeEngine::new();
        let out = ground(&kb, &mut e, &config(true, 1, constrained)).expect("optimized");
        prop_assert_eq!(&fingerprint(&out), &expected, "optimize=1 vs oracle");

        // Optimizer on, 4 workers.
        let mut e = SingleNodeEngine::new();
        let out = ground(&kb, &mut e, &config(true, 4, constrained)).expect("parallel");
        prop_assert_eq!(&fingerprint(&out), &expected, "threads=4 vs oracle");

        // Semi-naive evaluation with the optimizer on.
        let mut e = SemiNaiveEngine::new();
        let out = ground(&kb, &mut e, &config(true, 1, constrained)).expect("semi-naive");
        prop_assert_eq!(&fingerprint(&out), &expected, "semi-naive vs oracle");

        // MPP, both physical designs, optimizer on and off.
        for mode in [MppMode::Optimized, MppMode::NoViews] {
            for optimize in [true, false] {
                let mut e = MppEngine::new(3, NetworkModel::free(), mode);
                let out = ground(&kb, &mut e, &config(optimize, 1, constrained))
                    .expect("mpp");
                prop_assert_eq!(
                    &fingerprint(&out),
                    &expected,
                    "{:?} optimize={} vs oracle", mode, optimize
                );
            }
        }
    }

    /// Fact ids — not just fact sets — are stable across plans: the
    /// iteration each fact was first derived in must agree too.
    #[test]
    fn fact_iterations_agree_across_planners(seed in any::<u64>()) {
        let kb = random_six_pattern_kb(seed, false);
        let mut a = SingleNodeEngine::new();
        let out_a = ground(&kb, &mut a, &config(false, 1, false)).expect("oracle");
        let mut b = MppEngine::new(3, NetworkModel::free(), MppMode::Optimized);
        let out_b = ground(&kb, &mut b, &config(true, 4, false)).expect("mpp");
        prop_assert_eq!(out_a.fact_iteration, out_b.fact_iteration);
    }
}
