//! Differential suite for query-time local grounding (ROADMAP item 4).
//!
//! The correctness oracle is the one the ProPPR line of work suggests:
//! on any fact whose *full* proof neighborhood fits the relevance
//! budget (`frontier_stops == 0`), the local marginal must agree with
//! the global pipeline's marginal within sampler tolerance — the local
//! subgraph is exactly the fact's connected component, so both paths
//! estimate the same distribution. Facts the budget truncates carry no
//! accuracy contract, only the budget-respecting shape contract.
//!
//! The suite honours `PROBKB_LOCAL_BUDGET`: ci.sh replays it at a small
//! budget (most neighborhoods truncated) and unlimited (all covered),
//! and the coverage-conditional assertions must hold at both.
//!
//! Also pinned here: byte-identical local answers across Gibbs worker
//! counts and across budget-irrelevant orderings (two covering budgets
//! admit the same subgraph), and the delta edge cases — carried cache
//! entries must be bit-equal to a fresh recompute, touched entries must
//! be recomputed.

use probkb::prelude::*;

/// Deterministic xorshift64* so KB generation never depends on ambient
/// randomness.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random KB exercising all six structural rule partitions: random
/// fact placement/weights, fixed rule shapes (one per partition).
fn random_six_partition_kb(seed: u64) -> String {
    let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let mut text = String::new();
    let a = 3;
    let b = 3;
    let c = 3;
    let fact = |text: &mut String, rel: &str, s: String, o: String, rng: &mut XorShift| {
        if rng.unit() < 0.35 {
            let w = 0.2 + rng.unit();
            text.push_str(&format!("fact {w:.3} {rel}({s}, {o})\n"));
        }
    };
    for i in 0..a {
        for j in 0..b {
            fact(&mut text, "q1", format!("a{i}:A"), format!("b{j}:B"), &mut rng);
            fact(&mut text, "q2", format!("b{j}:B"), format!("a{i}:A"), &mut rng);
        }
    }
    for k in 0..c {
        for i in 0..a {
            fact(&mut text, "q3", format!("c{k}:C"), format!("a{i}:A"), &mut rng);
            fact(&mut text, "q4", format!("a{i}:A"), format!("c{k}:C"), &mut rng);
        }
        for j in 0..b {
            fact(&mut text, "q3", format!("c{k}:C"), format!("b{j}:B"), &mut rng);
        }
    }
    let mut w = || 0.5 + rng.unit();
    text.push_str(&format!("rule {:.3} p1(x:A, y:B) :- q1(x, y)\n", w()));
    text.push_str(&format!("rule {:.3} p2(x:A, y:B) :- q2(y, x)\n", w()));
    text.push_str(&format!("rule {:.3} p3(x:A, y:B) :- q3(z:C, x), q3(z, y)\n", w()));
    text.push_str(&format!("rule {:.3} p4(x:A, y:B) :- q4(x, z:C), q3(z, y)\n", w()));
    text.push_str(&format!("rule {:.3} p5(x:A, y:B) :- q3(z:C, x), q2(y, z)\n", w()));
    text.push_str(&format!("rule {:.3} p6(x:A, y:B) :- q4(x, z:C), q2(y, z)\n", w()));
    text
}

fn grounding() -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        threads: Some(1),
        ..GroundingConfig::default()
    }
}

fn gibbs() -> GibbsConfig {
    GibbsConfig {
        burn_in: 200,
        samples: 3000,
        seed: 7,
        chains: 2,
        workers: Some(1),
        ..GibbsConfig::default()
    }
}

fn pipeline_of(text: &str) -> IncrementalPipeline {
    let kb = parse(text).unwrap().build();
    IncrementalPipeline::new(kb, grounding(), gibbs()).unwrap()
}

fn local_session_of(pipeline: &IncrementalPipeline, epoch: u64) -> LocalSession {
    let session = pipeline.session();
    let grounder = LocalGrounder::new(session.facts().clone(), &session.kb().rules).unwrap();
    LocalSession::with_cache(grounder, *pipeline.gibbs(), epoch, LocalCache::new())
}

fn fact_ids(pipeline: &IncrementalPipeline) -> Vec<i64> {
    pipeline
        .session()
        .facts()
        .rows()
        .iter()
        .map(|row| row[tpi::I].as_int().unwrap())
        .collect()
}

/// Two samplers, each within sampler error of the true marginal; exact
/// local answers only carry the global sampler's error.
const TOLERANCE: f64 = 0.10;

#[test]
fn local_matches_global_on_budget_covered_facts() {
    let budget = LocalBudget::from_env();
    for seed in [1u64, 2, 3] {
        let text = random_six_partition_kb(seed);
        let pipeline = pipeline_of(&text);
        let mut local = local_session_of(&pipeline, 0);
        let mut covered = 0usize;
        for id in fact_ids(&pipeline) {
            let answer = local.marginal(id, Some(budget)).expect("known fact");
            assert!(answer.nodes >= 1, "query always admitted (seed {seed})");
            if answer.frontier_stops > 0 {
                // Truncated: shape contract only — the budget held.
                assert!(answer.nodes <= budget.nodes.max(1));
                assert!(answer.factors <= budget.factors);
                continue;
            }
            covered += 1;
            let global = pipeline
                .marginal_of_fact(id)
                .expect("every fact carries at least its singleton factor");
            assert!(
                (answer.p - global).abs() < TOLERANCE,
                "seed {seed} fact {id}: local {} vs global {} (nodes={}, exact={})",
                answer.p,
                global,
                answer.nodes,
                answer.exact
            );
        }
        assert!(covered > 0, "seed {seed}: no covered facts at all");
    }
}

/// A `next(x,y) :- next(x,z), next(z,y)` chain closure is one big
/// connected component (> 20 variables), forcing the local Gibbs path.
fn chain_kb(n: usize) -> String {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("fact 0.8 next(n{i}:Node, n{}:Node)\n", i + 1));
    }
    text.push_str("rule 1.0 next(x:Node, y:Node) :- next(x, z:Node), next(z, y)\n");
    text
}

#[test]
fn local_gibbs_answers_byte_identical_across_workers_and_covering_budgets() {
    let text = chain_kb(8);
    let pipeline = pipeline_of(&text);
    let ids = fact_ids(&pipeline);
    assert!(ids.len() > LOCAL_EXACT_MAX_VARS, "chain closure too small");

    let session = pipeline.session();
    let session_with = |workers: usize| {
        let grounder = LocalGrounder::new(session.facts().clone(), &session.kb().rules).unwrap();
        let config = GibbsConfig {
            workers: Some(workers),
            ..gibbs()
        };
        LocalSession::with_cache(grounder, config, 0, LocalCache::new())
    };
    let mut one = session_with(1);
    let mut four = session_with(4);
    for &id in &ids {
        let a = one.marginal(id, Some(LocalBudget::UNLIMITED)).unwrap();
        let b = four.marginal(id, Some(LocalBudget::UNLIMITED)).unwrap();
        assert!(!a.exact, "fact {id} should take the Gibbs path");
        assert_eq!(
            a.p.to_bits(),
            b.p.to_bits(),
            "fact {id}: 1 vs 4 workers diverged"
        );
        // A different budget that still covers the component admits the
        // identical subgraph and must reproduce the identical bits.
        let covering = one
            .marginal(id, Some(LocalBudget::uniform(1_000_000)))
            .unwrap();
        assert_eq!(covering.frontier_stops, 0);
        assert_eq!(a.p.to_bits(), covering.p.to_bits(), "fact {id}: budget order leaked");
    }
}

#[test]
fn edge_cases_unknown_base_and_budget_zero() {
    let text = "fact 0.9 iso(a:A, b:B)\n";
    let pipeline = pipeline_of(text);
    let mut local = local_session_of(&pipeline, 0);

    // Unknown fact id: no answer, not a panic.
    assert!(local.marginal(999, Some(LocalBudget::UNLIMITED)).is_none());

    // Isolated base EDB fact: its component is the singleton factor, so
    // the exact local marginal is sigmoid(w).
    let answer = local.marginal(0, Some(LocalBudget::UNLIMITED)).unwrap();
    assert!(answer.exact);
    assert_eq!(answer.frontier_stops, 0);
    assert!((answer.p - sigmoid(0.9)).abs() < 1e-12);

    // Budget 0: the query is still admitted, nothing else is, and the
    // answer degrades to uniform.
    let zero = local.marginal(0, Some(LocalBudget::uniform(0))).unwrap();
    assert_eq!(zero.nodes, 1);
    assert_eq!(zero.factors, 0);
    assert!(zero.frontier_stops > 0);
    assert!((zero.p - 0.5).abs() < 1e-12);
}

#[test]
fn cache_carries_untouched_entries_and_recomputes_touched_ones_across_delta() {
    // Two disconnected regions: an isolated weighted fact (never touched
    // by deltas below) and a rule-fed component the delta extends.
    let text = r#"
        fact 0.9 iso(i1:I, i2:I)
        fact 0.8 qa(a1:A, b1:B)
        rule 1.2 pa(x:A, y:B) :- qa(x, y)
    "#;
    let mut pipeline = pipeline_of(text);
    let mut local = local_session_of(&pipeline, 0);

    let iso_id = 0i64; // first base fact
    let iso_before = local.marginal(iso_id, Some(LocalBudget::UNLIMITED)).unwrap();
    assert_eq!(iso_before.cache, LocalCacheStatus::Miss);
    // Find the derived pa fact and warm its cache entry too.
    let derived_id = *fact_ids(&pipeline).last().unwrap();
    let derived_before = local
        .marginal(derived_id, Some(LocalBudget::UNLIMITED))
        .unwrap();
    assert_eq!(derived_before.cache, LocalCacheStatus::Miss);

    // Delta: extend the qa component. New base facts take low ids ahead
    // of derived facts, so derived ids renumber while the isolated
    // fact's id (below the insertion point) stays fixed.
    let delta = pipeline.parse_delta("fact 0.7 qa(a2:A, b1:B)\n").unwrap();
    let applied = pipeline.apply_delta(&delta).unwrap();
    assert!(!applied.grounding.full_fallback);
    assert!(!applied.touched_facts.is_empty());

    let mut cache = local.cache_snapshot();
    let touched: std::collections::HashSet<i64> =
        applied.touched_facts.iter().copied().collect();
    let touched_fx = touched.iter().copied().collect();
    cache.advance(1, &touched_fx, &applied.remap, false);

    let session = pipeline.session();
    let grounder = LocalGrounder::new(session.facts().clone(), &session.kb().rules).unwrap();
    let mut after = LocalSession::with_cache(grounder, *pipeline.gibbs(), 1, cache);

    // Untouched isolated fact: served from the carried entry,
    // bit-identical to what a cold session would recompute.
    let iso_after = after.marginal(iso_id, Some(LocalBudget::UNLIMITED)).unwrap();
    assert_eq!(iso_after.cache, LocalCacheStatus::Carried);
    assert_eq!(iso_after.p.to_bits(), iso_before.p.to_bits());
    let mut cold = local_session_of(&pipeline, 1);
    let iso_cold = cold.marginal(iso_id, Some(LocalBudget::UNLIMITED)).unwrap();
    assert_eq!(iso_cold.cache, LocalCacheStatus::Miss);
    assert_eq!(iso_after.p.to_bits(), iso_cold.p.to_bits());

    // The touched component: recomputed (post-delta id), and it tracks
    // the updated global marginal.
    let new_derived = applied
        .remap
        .get(derived_id as usize)
        .copied()
        .unwrap_or(derived_id);
    let derived_after = after
        .marginal(new_derived, Some(LocalBudget::UNLIMITED))
        .unwrap();
    assert_eq!(derived_after.cache, LocalCacheStatus::Miss);
    assert_eq!(derived_after.frontier_stops, 0);
    let global = pipeline.marginal_of_fact(new_derived).unwrap();
    assert!(
        (derived_after.p - global).abs() < TOLERANCE,
        "local {} vs global {global}",
        derived_after.p
    );
}
