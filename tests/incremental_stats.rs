//! Regression: the relational `Catalog` a delta session maintains must
//! bump its statistics for delta-inserted rows, so post-delta planning
//! (and `EXPLAIN ANALYZE`'s `est=`) sees current cardinalities instead
//! of stale base-grounding counts.

use probkb::prelude::*;
use probkb::relational::prelude::{explain_analyze, Executor, Plan};

const UNION: &str = r#"
    fact 0.90 qa(a1:A, b1:B)
    fact 0.80 qa(a2:A, b2:B)
    rule 1.20 pa(x:A, y:B) :- qa(x, y)
    fact 0.85 qa(a3:A, b3:B)
    fact 0.75 qa(a4:A, b4:B)
"#;

fn base_and_delta() -> (ProbKb, KbDelta) {
    let union = parse(UNION).unwrap().build();
    let mut base = union.clone();
    base.facts.truncate(2);
    let delta = KbDelta {
        facts: union.facts[2..].to_vec(),
        rules: vec![],
    };
    (base, delta)
}

fn config() -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        ..GroundingConfig::default()
    }
}

#[test]
fn post_delta_stats_and_explain_show_updated_cardinality() {
    let (base, delta) = base_and_delta();
    let mut session = DeltaSession::new(base, config()).unwrap();
    let base_facts = session.facts().len();
    session.apply_delta(&delta).unwrap();
    let total_facts = session.facts().len();
    assert!(
        total_facts > base_facts,
        "delta should derive new facts ({base_facts} -> {total_facts})"
    );

    let catalog = session
        .catalog()
        .expect("incremental apply_delta keeps a live catalog");

    // The catalog's row count and its *statistics* both cover the
    // delta-inserted rows — `append_table` must bump, not go stale.
    assert_eq!(catalog.row_count("T_pi").unwrap(), total_facts);
    let stats = catalog.stats_of("T_pi").expect("T_pi was analyzed");
    assert_eq!(
        stats.row_count(),
        total_facts,
        "catalog statistics are stale after the delta"
    );

    // And the planner actually consumes them: EXPLAIN ANALYZE of a
    // post-delta scan estimates the grown table, not the base one.
    let (out, metrics) = Executor::new(catalog)
        .with_optimize(true)
        .execute(&Plan::scan("T_pi"))
        .unwrap();
    assert_eq!(out.len(), total_facts);
    let text = explain_analyze(&metrics);
    assert!(
        text.contains(&format!("est={total_facts}")),
        "EXPLAIN should estimate {total_facts} rows:\n{text}"
    );
    assert!(
        !text.contains(&format!("est={base_facts},")),
        "EXPLAIN still shows the pre-delta estimate:\n{text}"
    );
}

#[test]
fn chained_deltas_keep_bumping_stats() {
    let (base, delta) = base_and_delta();
    let mut session = DeltaSession::new(base, config()).unwrap();
    let (first, second) = (
        KbDelta {
            facts: delta.facts[..1].to_vec(),
            rules: vec![],
        },
        KbDelta {
            facts: delta.facts[1..].to_vec(),
            rules: vec![],
        },
    );
    session.apply_delta(&first).unwrap();
    let mid = session.facts().len();
    assert_eq!(
        session.catalog().unwrap().stats_of("T_pi").unwrap().row_count(),
        mid
    );
    session.apply_delta(&second).unwrap();
    let last = session.facts().len();
    assert!(last > mid);
    assert_eq!(
        session.catalog().unwrap().stats_of("T_pi").unwrap().row_count(),
        last
    );
}
