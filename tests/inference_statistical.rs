//! Statistical validation of the samplers against the exact enumeration
//! oracle: multi-chain partitioned Gibbs on random small factor graphs and
//! on KBs that ground through all six rule partitions (P1–P6), and belief
//! propagation on tree-shaped graphs where loopy BP is exact.

use probkb::pipeline::{run_pipeline, PipelineOptions, Sampler};
use probkb::prelude::*;
use probkb_support::rng::{Rng, SeedableRng, StdRng};

/// Assert every estimated marginal is within `tol` of the oracle.
fn assert_marginals_close(got: &[f64], want: &[f64], tol: f64, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: length mismatch");
    for (v, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (g - w).abs() < tol,
            "{label}: var {v} estimated {g} vs exact {w} (tol {tol})"
        );
    }
}

/// A random factor graph over `n` variables with singleton, unary and
/// binary rule factors — the paper's clause shapes with random weights.
fn random_graph(seed: u64, n: usize, m: usize) -> FactorGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = Vec::new();
    for _ in 0..m {
        let head = (rng.random::<u64>() as usize) % n;
        let arity = (rng.random::<u64>() as usize) % 3;
        let mut body = Vec::new();
        while body.len() < arity {
            let u = (rng.random::<u64>() as usize) % n;
            if u != head && !body.contains(&u) {
                body.push(u);
            }
        }
        let weight = rng.random::<f64>() * 4.0 - 2.0;
        factors.push(Factor { head, body, weight });
    }
    FactorGraph::new(n, factors)
}

#[test]
fn multi_chain_gibbs_tracks_exact_on_random_graphs() {
    for seed in [11u64, 23, 47] {
        let g = random_graph(seed, 10, 25);
        let exact = exact_marginals(&g);
        let run = partitioned_marginals(
            &g,
            &GibbsConfig {
                burn_in: 500,
                samples: 12_000,
                seed,
                chains: 3,
                workers: Some(2),
                ..GibbsConfig::default()
            },
        );
        assert_marginals_close(
            &run.marginals.p,
            &exact,
            0.04,
            &format!("random graph seed {seed}"),
        );
        assert!(run.report.rhat.is_some());
    }
}

/// A KB whose six rules fall into the six structural partitions of §4.2.2,
/// grounding to 12 variables (6 base facts + 6 inferred heads).
fn six_pattern_kb() -> ProbKb {
    parse(
        r#"
        fact 1.8 q1(a1:A, b1:B)
        fact 1.5 q2(b1:B, a1:A)
        fact 1.2 qa(a1:A, c1:C)
        fact 1.4 qc(c1:C, a1:A)
        fact 1.6 rb(c1:C, b1:B)
        fact 1.3 ry(b1:B, c1:C)

        rule 1.1 p1(x:A, y:B) :- q1(x, y)
        rule 0.9 p2(x:A, y:B) :- q2(y, x)
        rule 1.3 p3(x:A, y:B) :- qc(z:C, x), rb(z, y)
        rule 0.8 p4(x:A, y:B) :- qa(x, z:C), rb(z, y)
        rule 1.0 p5(x:A, y:B) :- qc(z:C, x), ry(y, z)
        rule 1.2 p6(x:A, y:B) :- qa(x, z:C), ry(y, z)
        "#,
    )
    .unwrap()
    .build()
}

#[test]
fn six_pattern_kb_covers_every_rule_partition() {
    let kb = six_pattern_kb();
    let partitioning = Partitioning::build(&kb.rules);
    assert_eq!(partitioning.k(), 6);
    assert_eq!(partitioning.non_empty_patterns(), RulePattern::ALL.to_vec());
}

#[test]
fn multi_chain_gibbs_tracks_exact_through_all_six_partitions() {
    // The real path: parse → ground (Algorithm 1) → factor graph →
    // partitioned multi-chain Gibbs, checked against exact enumeration.
    let kb = six_pattern_kb();
    let options = PipelineOptions {
        sampler: Sampler::Partitioned,
        gibbs: GibbsConfig {
            burn_in: 500,
            samples: 12_000,
            seed: 7,
            chains: 3,
            workers: Some(2),
            ..GibbsConfig::default()
        },
        ..PipelineOptions::default()
    };
    let result = run_pipeline(&kb, &options).unwrap();
    assert_eq!(result.expansion.new_facts.len(), 6);
    assert_eq!(result.graph.graph.num_vars(), 12);

    let exact = exact_marginals(&result.graph.graph);
    assert_marginals_close(&result.marginals.p, &exact, 0.04, "six-pattern KB");

    let report = result.inference.expect("partitioned sampler reports");
    assert_eq!(report.vars, 12);
    assert!(report.annotate().contains("workers=2"));
}

/// Tree-shaped graphs: a chain and a star, with singleton evidence. Loopy
/// BP is exact on trees, so the same harness pins it to the oracle with a
/// tight tolerance.
fn tree_graphs() -> Vec<(String, FactorGraph)> {
    let chain = FactorGraph::new(
        7,
        vec![
            Factor::singleton(0, 1.5),
            Factor::singleton(3, -0.7),
            Factor::rule(1, vec![0], 1.2),
            Factor::rule(2, vec![1], 0.8),
            Factor::rule(3, vec![2], 1.0),
            Factor::rule(4, vec![3], -0.6),
            Factor::rule(5, vec![4], 0.9),
            Factor::rule(6, vec![5], 1.1),
        ],
    );
    let star = FactorGraph::new(
        6,
        vec![
            Factor::singleton(0, 0.8),
            Factor::rule(1, vec![0], 1.3),
            Factor::rule(2, vec![0], -0.9),
            Factor::rule(3, vec![0], 0.5),
            Factor::rule(4, vec![0], 1.7),
            Factor::rule(5, vec![0], -1.1),
        ],
    );
    vec![("chain".into(), chain), ("star".into(), star)]
}

#[test]
fn belief_propagation_is_exact_on_trees() {
    for (name, g) in tree_graphs() {
        let exact = exact_marginals(&g);
        let bp = belief_propagation(&g, &BpConfig::default());
        assert!(bp.converged, "{name}: BP did not converge");
        assert_marginals_close(&bp.marginals.p, &exact, 1e-6, &name);
    }
}

#[test]
fn gibbs_and_bp_agree_on_trees() {
    for (name, g) in tree_graphs() {
        let bp = belief_propagation(&g, &BpConfig::default());
        let run = partitioned_marginals(
            &g,
            &GibbsConfig {
                burn_in: 500,
                samples: 12_000,
                seed: 13,
                chains: 2,
                workers: Some(2),
                ..GibbsConfig::default()
            },
        );
        assert_marginals_close(&run.marginals.p, &bp.marginals.p, 0.04, &name);
    }
}
