//! Worker-count invariance and edge cases of the partitioned sampler.
//!
//! The shard — not the worker chunk — is the unit of randomness, so for a
//! fixed `(seed, chains)` the marginals must be byte-identical at any
//! worker count, and an R̂-triggered early stop must fire at the same
//! sweep number no matter how many workers run the chains.

use probkb::prelude::*;

fn bits(p: &[f64]) -> Vec<u64> {
    p.iter().map(|x| x.to_bits()).collect()
}

fn run_with_workers(g: &FactorGraph, workers: usize, extra: &GibbsConfig) -> GibbsRun {
    partitioned_marginals(
        g,
        &GibbsConfig {
            workers: Some(workers),
            ..*extra
        },
    )
}

fn test_graph() -> FactorGraph {
    FactorGraph::new(
        8,
        vec![
            Factor::singleton(0, 1.1),
            Factor::singleton(5, -0.4),
            Factor::rule(1, vec![0], 0.9),
            Factor::rule(2, vec![0, 1], 1.3),
            Factor::rule(3, vec![2], 0.7),
            Factor::rule(4, vec![3], -0.5),
            Factor::rule(6, vec![5], 1.0),
            Factor::rule(7, vec![6, 5], 0.8),
        ],
    )
}

#[test]
fn marginals_are_byte_identical_across_worker_counts() {
    let g = test_graph();
    let config = GibbsConfig {
        burn_in: 100,
        samples: 1_000,
        seed: 42,
        chains: 3,
        ..GibbsConfig::default()
    };
    let baseline = run_with_workers(&g, 1, &config);
    for workers in [2usize, 4, 7] {
        let run = run_with_workers(&g, workers, &config);
        assert_eq!(
            bits(&baseline.marginals.p),
            bits(&run.marginals.p),
            "workers=1 vs workers={workers} diverged"
        );
        assert_eq!(run.report.workers, workers);
    }
}

#[test]
fn rhat_early_stop_fires_at_the_same_sweep_for_any_worker_count() {
    let g = test_graph();
    let config = GibbsConfig {
        burn_in: 100,
        seed: 8,
        chains: 4,
        target_rhat: Some(1.05),
        max_sweeps: 20_000,
        check_interval: 200,
        ..GibbsConfig::default()
    };
    let baseline = run_with_workers(&g, 1, &config);
    assert!(baseline.report.converged, "baseline never converged");
    for workers in [2usize, 4] {
        let run = run_with_workers(&g, workers, &config);
        assert!(run.report.converged);
        assert_eq!(
            baseline.report.sweeps, run.report.sweeps,
            "early stop moved between workers=1 and workers={workers}"
        );
        assert_eq!(bits(&baseline.marginals.p), bits(&run.marginals.p));
        assert_eq!(
            baseline.report.rhat.map(f64::to_bits),
            run.report.rhat.map(f64::to_bits)
        );
    }
}

#[test]
fn empty_graph_yields_empty_marginals() {
    let g = FactorGraph::new(0, Vec::new());
    for &target in &[None, Some(1.05)] {
        let run = partitioned_marginals(
            &g,
            &GibbsConfig {
                target_rhat: target,
                ..GibbsConfig::default()
            },
        );
        assert!(run.marginals.p.is_empty());
        assert_eq!(run.report.vars, 0);
        assert_eq!(run.report.sweeps, 0);
        // A convergence-controlled run over nothing is trivially converged.
        assert_eq!(run.report.converged, target.is_some());
    }
}

#[test]
fn single_variable_graph_matches_its_sigmoid() {
    let g = FactorGraph::new(1, vec![Factor::singleton(0, 1.5)]);
    let run = partitioned_marginals(
        &g,
        &GibbsConfig {
            burn_in: 200,
            samples: 8_000,
            seed: 3,
            chains: 2,
            workers: Some(4),
            ..GibbsConfig::default()
        },
    );
    let want = sigmoid(1.5);
    assert!(
        (run.marginals.p[0] - want).abs() < 0.03,
        "p {} vs sigmoid {want}",
        run.marginals.p[0]
    );
    assert_eq!(run.report.colors, 1);
    assert_eq!(run.report.shards, 1);
}

#[test]
fn fully_disconnected_components_sample_independently() {
    // Singletons only: every variable is its own component, one color.
    let weights = [1.2f64, -0.8, 0.0, 2.0, -1.5];
    let g = FactorGraph::new(
        5,
        weights
            .iter()
            .enumerate()
            .map(|(v, &w)| Factor::singleton(v, w))
            .collect(),
    );
    let run = partitioned_marginals(
        &g,
        &GibbsConfig {
            burn_in: 200,
            samples: 10_000,
            seed: 19,
            chains: 2,
            workers: Some(3),
            ..GibbsConfig::default()
        },
    );
    assert_eq!(run.report.colors, 1);
    for (v, &w) in weights.iter().enumerate() {
        let want = sigmoid(w);
        assert!(
            (run.marginals.p[v] - want).abs() < 0.03,
            "var {v}: p {} vs sigmoid {want}",
            run.marginals.p[v]
        );
    }
}

#[test]
fn one_color_graph_falls_back_to_a_single_serial_shard() {
    // 5 isolated variables < SHARD_SIZE: one color, one shard, so every
    // worker count degenerates to the same serial schedule — and must
    // still agree byte for byte.
    let g = FactorGraph::new(5, vec![Factor::singleton(2, 0.6)]);
    let config = GibbsConfig {
        burn_in: 50,
        samples: 500,
        seed: 77,
        chains: 2,
        ..GibbsConfig::default()
    };
    let a = run_with_workers(&g, 1, &config);
    let b = run_with_workers(&g, 8, &config);
    assert_eq!(a.report.colors, 1);
    assert_eq!(a.report.shards, 1);
    assert_eq!(bits(&a.marginals.p), bits(&b.marginals.p));
}

#[test]
fn pipeline_marginals_are_worker_invariant_end_to_end() {
    use probkb::pipeline::{run_pipeline, PipelineOptions, Sampler};
    let kb = generate(&ReverbConfig::tiny());
    let run = |workers: usize| {
        let options = PipelineOptions {
            sampler: Sampler::Partitioned,
            gibbs: GibbsConfig {
                burn_in: 50,
                samples: 400,
                seed: 17,
                chains: 2,
                workers: Some(workers),
                ..GibbsConfig::default()
            },
            ..PipelineOptions::default()
        };
        run_pipeline(&kb, &options).unwrap()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(bits(&a.marginals.p), bits(&b.marginals.p));
    assert_eq!(
        a.inference.unwrap().sweeps,
        b.inference.unwrap().sweeps
    );
}
