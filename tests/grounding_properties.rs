//! Property-based integration tests: invariants of the grounding
//! algorithm that must hold for ANY generated knowledge base.

use probkb_support::check::prelude::*;

use probkb::prelude::*;

/// Small random generator configurations (kept tiny so grounding closures
/// stay fast under proptest's many cases).
fn arb_config() -> impl Strategy<Value = ReverbConfig> {
    (
        20usize..100,  // entities
        2usize..6,     // classes
        5usize..20,    // relations
        20usize..120,  // facts
        5usize..30,    // rules
        any::<u64>(),  // seed
    )
        .prop_map(|(entities, classes, relations, facts, rules, seed)| ReverbConfig {
            entities,
            classes,
            relations,
            facts,
            rules,
            functional_frac: 0.3,
            pseudo_frac: 0.2,
            zipf_s: 1.0,
        rule_zipf_s: 0.6,
            seed,
        })
}

fn ground_kb(kb: &ProbKb, constraints: bool) -> GroundingOutcome {
    let mut engine = SingleNodeEngine::new();
    let config = GroundingConfig {
        max_iterations: 6,
        preclean: constraints,
        apply_constraints: constraints,
        max_total_facts: Some(50_000),
        threads: None,
        optimize: None,
    };
    ground(kb, &mut engine, &config).expect("grounding")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated KBs always validate and their rules always classify.
    #[test]
    fn generated_kbs_are_wellformed(config in arb_config()) {
        let kb = generate(&config);
        prop_assert!(kb.validate().is_empty());
        let part = Partitioning::build(&kb.rules);
        prop_assert!(part.rejected().is_empty());
        prop_assert!(part.k() <= 6);
    }

    /// TΠ never contains two rows with the same fact key, and fact ids
    /// are unique.
    #[test]
    fn facts_table_is_duplicate_free(config in arb_config()) {
        let kb = generate(&config);
        let out = ground_kb(&kb, false);
        use probkb::core::relmodel::tpi;
        let mut keys = std::collections::HashSet::new();
        let mut ids = std::collections::HashSet::new();
        for row in out.facts.rows() {
            let key: Vec<i64> = tpi::KEY
                .iter()
                .map(|&c| row[c].as_int().unwrap())
                .collect();
            prop_assert!(keys.insert(key), "duplicate fact key");
            prop_assert!(ids.insert(row[tpi::I].as_int().unwrap()), "duplicate id");
        }
    }

    /// Grounding is monotone in the rule set: more rules never yield
    /// fewer facts (without constraints).
    #[test]
    fn grounding_monotone_in_rules(config in arb_config()) {
        let kb_full = generate(&config);
        if kb_full.rules.len() < 2 {
            return Ok(());
        }
        let mut kb_half = kb_full.clone();
        kb_half.rules.truncate(kb_full.rules.len() / 2);
        let full = ground_kb(&kb_full, false);
        let half = ground_kb(&kb_half, false);
        prop_assert!(full.facts.len() >= half.facts.len());
    }

    /// Every factor in TΦ references existing fact ids, with the head
    /// non-null and arity ≤ 3.
    #[test]
    fn factors_reference_valid_facts(config in arb_config()) {
        let kb = generate(&config);
        let out = ground_kb(&kb, false);
        use probkb::core::relmodel::{tphi, tpi};
        let ids: std::collections::HashSet<i64> = out
            .facts
            .rows()
            .iter()
            .map(|r| r[tpi::I].as_int().unwrap())
            .collect();
        for row in out.factors.rows() {
            let head = row[tphi::I1].as_int();
            prop_assert!(head.is_some(), "factor with NULL head");
            prop_assert!(ids.contains(&head.unwrap()), "dangling head id");
            for col in [tphi::I2, tphi::I3] {
                if let Some(id) = row[col].as_int() {
                    prop_assert!(ids.contains(&id), "dangling body id");
                }
            }
            prop_assert!(row[tphi::W].as_float().is_some());
        }
    }

    /// Tuffy-T and ProbKB agree on the expanded fact-key set for any KB.
    #[test]
    fn engines_agree(config in arb_config()) {
        let kb = generate(&config);
        let gc = GroundingConfig {
            max_iterations: 4,
            preclean: false,
            apply_constraints: false,
            max_total_facts: Some(50_000),
            threads: None,
            optimize: None,
        };
        let mut single = SingleNodeEngine::new();
        let s = ground(&kb, &mut single, &gc).expect("single");
        let mut tuffy = TuffyEngine::new();
        let t = ground(&kb, &mut tuffy, &gc).expect("tuffy");

        use probkb::core::relmodel::tpi;
        let keys = |t: &probkb::relational::table::Table| {
            let mut k: Vec<Vec<i64>> = t
                .rows()
                .iter()
                .map(|r| tpi::KEY.iter().map(|&c| r[c].as_int().unwrap()).collect())
                .collect();
            k.sort();
            k
        };
        prop_assert_eq!(keys(&s.facts), keys(&t.facts));
        prop_assert_eq!(s.factors.len(), t.factors.len());
    }

    /// With constraints enforced, the surviving KB has no remaining
    /// violators (applyConstraints reaches a fixpoint each iteration).
    #[test]
    fn constraints_leave_no_violators_among_base_relations(config in arb_config()) {
        let kb = generate(&config);
        let out = ground_kb(&kb, true);
        // Re-check: rebuild a KB view of the surviving facts and detect.
        use probkb::core::relmodel::tpi;
        let mut survivors = kb.clone();
        survivors.facts = out
            .facts
            .rows()
            .iter()
            .map(|r| Fact {
                rel: RelationId::from_i64(r[tpi::R].as_int().unwrap()),
                x: EntityId::from_i64(r[tpi::X].as_int().unwrap()),
                c1: ClassId::from_i64(r[tpi::C1].as_int().unwrap()),
                y: EntityId::from_i64(r[tpi::Y].as_int().unwrap()),
                c2: ClassId::from_i64(r[tpi::C2].as_int().unwrap()),
                weight: r[tpi::W].as_float(),
            })
            .collect();
        let violators = detect_violating_entities(&survivors).expect("detect");
        prop_assert!(
            violators.is_empty(),
            "violators remain after enforcement: {violators:?}"
        );
    }

    /// The factor graph built from TΦ is structurally sound and colorable.
    #[test]
    fn factor_graph_roundtrip(config in arb_config()) {
        let kb = generate(&config);
        let out = ground_kb(&kb, false);
        let gg = from_phi(&out.factors);
        prop_assert_eq!(gg.graph.factors().len(), out.factors.len());
        let coloring = color(&gg.graph);
        prop_assert!(is_proper(&gg.graph, &coloring));
        // Export roundtrip preserves the factor list.
        let back = from_json(&to_json(&gg)).expect("roundtrip");
        prop_assert_eq!(back.graph.factors(), gg.graph.factors());
    }
}
