//! Offline smoke tests for the README's entry points: both examples must
//! build and run exactly as documented, so they can't silently rot.
//!
//! Each test shells out to the same `cargo` binary driving this test run
//! (examples are already compiled by `cargo test`, so this is execution,
//! not a rebuild) and fails with the example's full output on any
//! non-zero exit.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--offline", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example '{name}' exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_example_runs_offline() {
    run_example("quickstart");
}

#[test]
fn knowledge_expansion_example_runs_offline() {
    run_example("knowledge_expansion");
}

#[test]
fn checkpoint_resume_example_runs_offline() {
    run_example("checkpoint_resume");
}
