//! Workspace-level determinism: the paper's pipeline (grounding → factor
//! graph → Gibbs) must be a pure function of the seed. Two runs with the
//! same configuration have to agree bit for bit — marginals, grounded
//! fact tables, and exported graph documents alike — or no experiment in
//! `crates/bench` is reproducible.

use probkb::pipeline::{run_pipeline, PipelineOptions, PipelineResult, Sampler};
use probkb::prelude::*;

fn options(sampler: Sampler) -> PipelineOptions {
    PipelineOptions {
        sampler,
        gibbs: GibbsConfig {
            burn_in: 50,
            samples: 400,
            seed: 17,
            ..GibbsConfig::default()
        },
        ..PipelineOptions::default()
    }
}

fn marginal_bits(result: &PipelineResult) -> Vec<u64> {
    result.marginals.p.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn same_seed_same_marginals_and_fact_sets() {
    let kb = generate(&ReverbConfig::tiny());
    for sampler in [Sampler::Gibbs, Sampler::ChromaticGibbs(4)] {
        let a = run_pipeline(&kb, &options(sampler)).expect("pipeline");
        let b = run_pipeline(&kb, &options(sampler)).expect("pipeline");

        // Marginals byte-identical (bit patterns, not approximate equality).
        assert_eq!(
            marginal_bits(&a),
            marginal_bits(&b),
            "marginals must be bit-identical under {sampler:?}"
        );

        // Grounded fact sets byte-identical, row order included.
        assert_eq!(
            format!("{:?}", a.expansion.outcome.facts),
            format!("{:?}", b.expansion.outcome.facts),
            "grounded TΠ must match exactly under {sampler:?}"
        );
        assert_eq!(a.expansion.outcome.facts.len(), b.expansion.outcome.facts.len());
        assert!(a.expansion.outcome.facts.len() >= kb.facts.len());

        // The exported factor-graph document is byte-identical too.
        assert_eq!(to_json(&a.graph), to_json(&b.graph));
    }
}

#[test]
fn sweeps_are_deterministic_across_thread_counts_of_one_run() {
    // The chromatic sampler seeds per (sweep, class, chunk), so repeated
    // runs at the same thread count agree exactly.
    let kb = generate(&ReverbConfig::tiny().with_seed(3));
    for threads in [1usize, 2, 8] {
        let a = run_pipeline(&kb, &options(Sampler::ChromaticGibbs(threads))).unwrap();
        let b = run_pipeline(&kb, &options(Sampler::ChromaticGibbs(threads))).unwrap();
        assert_eq!(marginal_bits(&a), marginal_bits(&b), "threads = {threads}");
    }
}

#[test]
fn same_seed_byte_identical_across_grounding_thread_counts() {
    // The morsel-driven executor guarantees chunk-ordered concatenation,
    // so the grounding thread count must not leak into any output: same
    // seed at 1 vs 4 grounding threads → bit-identical marginals, fact
    // tables, and exported graphs. (Set via GroundingConfig rather than
    // PROBKB_THREADS — the env var is read once per process.)
    let kb = generate(&ReverbConfig::tiny());
    let run = |threads: usize| {
        let mut o = options(Sampler::Gibbs);
        o.expand.config.threads = Some(threads);
        run_pipeline(&kb, &o).expect("pipeline")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(marginal_bits(&serial), marginal_bits(&parallel));
    assert_eq!(
        format!("{:?}", serial.expansion.outcome.facts),
        format!("{:?}", parallel.expansion.outcome.facts),
        "grounded TΠ must not depend on the thread count"
    );
    assert_eq!(
        format!("{:?}", serial.expansion.outcome.factors),
        format!("{:?}", parallel.expansion.outcome.factors),
        "ground factors must not depend on the thread count"
    );
    assert_eq!(to_json(&serial.graph), to_json(&parallel.graph));
}

#[test]
fn kb_generation_and_snapshots_are_deterministic() {
    // Same generator seed → same KB; and the JSON snapshot itself is
    // canonical (sets serialized in sorted order), so snapshots of equal
    // KBs are byte-identical.
    let a = generate(&ReverbConfig::tiny());
    let b = generate(&ReverbConfig::tiny());
    let snapshot_a = probkb::kb::io::to_json(&a);
    let snapshot_b = probkb::kb::io::to_json(&b);
    assert_eq!(snapshot_a, snapshot_b);
    let back = probkb::kb::io::from_json(&snapshot_a).expect("roundtrip");
    assert_eq!(probkb::kb::io::to_json(&back), snapshot_a);
}
