//! Fault injection for the durable delta session: a run killed mid- or
//! post-commit must resume from snapshot + WAL replay onto the exact
//! bytes an uninterrupted run produces.
//!
//! The crashing runs execute in a child process: this test binary
//! re-invokes itself filtered to `helper_durable_delta_run` (a no-op
//! unless `PROBKB_DELTA_TEST_DIR` is set) with a crash hook armed, and
//! expects the injected exit code 86.

use std::path::PathBuf;
use std::process::Command;

use probkb::core::delta_store::{
    DurableDeltaSession, CRASH_AFTER_DELTA_ENV, CRASH_MID_DELTA_ENV,
};
use probkb::core::prelude::{
    DeltaSession, GroundingConfig, KbDelta, CRASH_EXIT_CODE,
};
use probkb::kb::prelude::{parse, ProbKb};

const DIR_ENV: &str = "PROBKB_DELTA_TEST_DIR";

/// Chain + transitive closure: enough grounding rounds that a delta has
/// real multi-round work to replay.
fn union_text() -> String {
    let mut text = String::new();
    for i in 0..8 {
        text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
    }
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
    // Delta 1: a shortcut edge that accelerates existing derivations.
    text.push_str("fact 0.8 next(n0:Node, n5:Node)\n");
    // Delta 2: a fresh tail edge plus a rule over the derived closure.
    text.push_str("fact 0.7 next(n8:Node, n9:Node)\n");
    text.push_str("rule 1.0 far(x:Node, y:Node) :- reach(x, y)\n");
    text
}

fn parts() -> (ProbKb, KbDelta, KbDelta) {
    let union = parse(&union_text()).unwrap().build();
    let mut base = union.clone();
    base.facts.truncate(8);
    base.rules.truncate(2);
    let d1 = KbDelta {
        facts: vec![union.facts[8]],
        rules: vec![],
    };
    let d2 = KbDelta {
        facts: vec![union.facts[9]],
        rules: vec![union.rules[2].clone()],
    };
    (base, d1, d2)
}

fn config() -> GroundingConfig {
    GroundingConfig {
        apply_constraints: false,
        max_iterations: 20,
        ..GroundingConfig::default()
    }
}

fn fingerprint(session: &DeltaSession) -> String {
    format!("{:?}\n{:?}", session.facts(), session.factors())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "probkb-incremental-durability-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Child-process body: create the durable session and push both deltas.
/// Inert (no env var) when libtest runs it directly.
#[test]
fn helper_durable_delta_run() {
    let Some(dir) = std::env::var_os(DIR_ENV) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let (base, d1, d2) = parts();
    let mut session = DurableDeltaSession::create(&dir, base, config()).unwrap();
    session.apply_delta(&d1).unwrap();
    session.apply_delta(&d2).unwrap();
    std::fs::write(dir.join("final.fp"), fingerprint(session.session())).unwrap();
}

/// Run the helper in a child process; return its exit code.
fn run_helper(dir: &PathBuf, crash: &[(&str, &str)]) -> i32 {
    let exe = std::env::current_exe().expect("own test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", "helper_durable_delta_run", "--test-threads", "1"])
        .env(DIR_ENV, dir)
        .env_remove(CRASH_MID_DELTA_ENV)
        .env_remove(CRASH_AFTER_DELTA_ENV);
    for (k, v) in crash {
        cmd.env(k, v);
    }
    let output = cmd.output().expect("spawn helper");
    output.status.code().unwrap_or_else(|| {
        panic!(
            "helper killed by signal\n--- stderr ---\n{}",
            String::from_utf8_lossy(&output.stderr)
        )
    })
}

/// The uninterrupted run's final bytes — the oracle for every crash
/// scenario below.
fn reference_fingerprint() -> String {
    let (base, d1, d2) = parts();
    let mut session = DeltaSession::new(base, config()).unwrap();
    session.apply_delta(&d1).unwrap();
    session.apply_delta(&d2).unwrap();
    fingerprint(&session)
}

#[test]
fn crash_after_commit_replays_wal_byte_identically() {
    let dir = tmp_dir("after-commit");
    let code = run_helper(&dir, &[(CRASH_AFTER_DELTA_ENV, "1")]);
    assert_eq!(code, CRASH_EXIT_CODE, "crash hook did not fire");

    // Delta 1 was committed before the crash: resume must replay it.
    let (_, _, d2) = parts();
    let (mut session, resume) = DurableDeltaSession::resume(&dir, &config()).unwrap();
    assert_eq!(resume.replayed, 1, "committed delta lost");
    session.apply_delta(&d2).unwrap();
    assert_eq!(fingerprint(session.session()), reference_fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_delta_loses_only_the_uncommitted_delta() {
    let dir = tmp_dir("mid-delta");
    let code = run_helper(&dir, &[(CRASH_MID_DELTA_ENV, "2")]);
    assert_eq!(code, CRASH_EXIT_CODE, "crash hook did not fire");

    // Delta 2 was computed but never logged: resume sees exactly one
    // committed delta, and re-submitting delta 2 converges on the
    // reference bytes.
    let (_, _, d2) = parts();
    let (mut session, resume) = DurableDeltaSession::resume(&dir, &config()).unwrap();
    assert_eq!(resume.replayed, 1);
    session.apply_delta(&d2).unwrap();
    assert_eq!(fingerprint(session.session()), reference_fingerprint());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uninterrupted_child_and_resumed_state_agree() {
    let dir = tmp_dir("clean");
    let code = run_helper(&dir, &[]);
    assert_eq!(code, 0, "clean helper run failed");

    let want = std::fs::read_to_string(dir.join("final.fp")).unwrap();
    assert_eq!(want, reference_fingerprint());

    let (session, resume) = DurableDeltaSession::resume(&dir, &config()).unwrap();
    assert_eq!(resume.replayed, 2);
    assert!(!resume.dropped_tail);
    assert_eq!(fingerprint(session.session()), want);
    let _ = std::fs::remove_dir_all(&dir);
}
