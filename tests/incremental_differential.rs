//! Differential tests for incremental expansion: `apply_delta` may
//! ground only what a delta can derive, but the resulting facts,
//! factors, and derivation schedule must be **byte-identical** to a full
//! re-ground of the merged KB — across random six-partition KBs, random
//! fact/rule deltas (including empty, duplicate, and already-derivable
//! batches), serial and parallel execution, and optimizer on/off.

use probkb_support::check::prelude::*;

use probkb::prelude::*;
use probkb::relational::prelude::Table;

/// Tiny xorshift generator so each proptest case derives a whole
/// KB-plus-delta from one seed (simple, shrinkable strategy).
struct Rng(u64);

impl Rng {
    fn pick(&mut self, bound: u64) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x % bound
    }
}

const BASE_RULES: usize = 6;

/// Random KB text covering all six structural rule partitions (same
/// shapes as `tests/differential_plans.rs`), plus a random set of
/// *delta-only* rules chained over the derived heads.
fn random_kb_text(rng: &mut Rng) -> (String, usize, usize) {
    let mut text = String::new();
    let mut n_facts = 0usize;
    for p in 1..=6u32 {
        let q_facts = 1 + rng.pick(8);
        let r_facts = 1 + rng.pick(3);
        let pool = 2 + rng.pick(3);
        let mut fact = |rng: &mut Rng, rel: &str, n: u64| {
            for _ in 0..n {
                let i = rng.pick(pool);
                let j = rng.pick(pool);
                let w = 50 + rng.pick(50);
                let (subj, obj) = match (rel.as_bytes()[0], p) {
                    (b'q', 1) => (format!("a{p}_{i}:A{p}"), format!("b{p}_{j}:B{p}")),
                    (b'q', 2) => (format!("b{p}_{i}:B{p}"), format!("a{p}_{j}:A{p}")),
                    (b'q', 3) | (b'q', 5) => {
                        (format!("z{p}_{i}:Z{p}"), format!("a{p}_{j}:A{p}"))
                    }
                    (b'q', _) => (format!("a{p}_{i}:A{p}"), format!("z{p}_{j}:Z{p}")),
                    (_, 3) | (_, 4) => (format!("z{p}_{i}:Z{p}"), format!("b{p}_{j}:B{p}")),
                    _ => (format!("b{p}_{i}:B{p}"), format!("z{p}_{j}:Z{p}")),
                };
                text.push_str(&format!("fact 0.{w} {rel}({subj}, {obj})\n"));
            }
        };
        fact(rng, &format!("q{p}"), q_facts);
        n_facts += q_facts as usize;
        if p >= 3 {
            fact(rng, &format!("r{p}"), r_facts);
            n_facts += r_facts as usize;
        }
    }
    text.push_str("rule 1.0 p1(x:A1, y:B1) :- q1(x, y)\n");
    text.push_str("rule 1.0 p2(x:A2, y:B2) :- q2(y, x)\n");
    text.push_str("rule 1.0 p3(x:A3, y:B3) :- q3(z:Z3, x), r3(z, y)\n");
    text.push_str("rule 1.0 p4(x:A4, y:B4) :- q4(x, z:Z4), r4(z, y)\n");
    text.push_str("rule 1.0 p5(x:A5, y:B5) :- q5(z:Z5, x), r5(y, z)\n");
    text.push_str("rule 1.0 p6(x:A6, y:B6) :- q6(x, z:Z6), r6(y, z)\n");
    // Delta-only rules: chain a fresh head over each derived `p{p}`, so
    // new-rule partitions must re-derive from *old* (already-grounded)
    // facts, not just the delta's.
    let mut delta_rules = 0usize;
    for p in 1..=6u32 {
        if rng.pick(2) == 0 {
            text.push_str(&format!("rule 1.0 s{p}(x:A{p}, y:B{p}) :- p{p}(x, y)\n"));
            delta_rules += 1;
        }
    }
    (text, n_facts, delta_rules)
}

/// A base KB, a delta, and the concatenated union KB the delta-applied
/// session must byte-match. `dup` re-adds random base facts to the
/// delta (duplicates and already-derivable keys).
fn split_kb(seed: u64, dup: bool) -> (ProbKb, KbDelta, ProbKb) {
    let mut rng = Rng(seed | 1);
    let (text, _, _) = random_kb_text(&mut rng);
    let union = parse(&text).unwrap().build();
    // Duplicate generated lines are deduped at build time, so size the
    // split by what actually survived.
    let n_facts = union.facts.len();

    let base_facts = 1 + rng.pick(n_facts as u64) as usize;
    let mut base = union.clone();
    base.facts.truncate(base_facts.min(n_facts));
    base.rules.truncate(BASE_RULES);

    let mut delta = KbDelta {
        facts: union.facts[base.facts.len()..].to_vec(),
        rules: union.rules[BASE_RULES..].to_vec(),
    };
    if dup && !base.facts.is_empty() {
        for _ in 0..=rng.pick(3) {
            let i = rng.pick(base.facts.len() as u64) as usize;
            delta.facts.push(base.facts[i]);
        }
    }

    // The union the session itself builds: base ++ delta, verbatim.
    let mut oracle_kb = base.clone();
    oracle_kb.facts.extend(delta.facts.iter().cloned());
    oracle_kb.rules.extend(delta.rules.iter().cloned());
    (base, delta, oracle_kb)
}

fn config(optimize: bool, threads: usize) -> GroundingConfig {
    GroundingConfig {
        max_iterations: 4,
        preclean: false,
        apply_constraints: false,
        max_total_facts: Some(20_000),
        threads: Some(threads),
        optimize: Some(optimize),
    }
}

fn fingerprint(facts: &Table, factors: &Table) -> (String, String) {
    (format!("{facts:?}"), format!("{factors:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The incremental matrix: for every (threads, optimize) setting the
    /// delta-applied session must byte-match the unoptimized serial full
    /// re-ground of the union — facts, factors, and schedule.
    #[test]
    fn apply_delta_matches_full_reground(seed in any::<u64>(), dup in any::<bool>()) {
        let (base, delta, oracle_kb) = split_kb(seed, dup);

        let mut oracle_engine = SingleNodeEngine::new();
        let oracle = ground(&oracle_kb, &mut oracle_engine, &config(false, 1)).expect("oracle");
        let expected = fingerprint(&oracle.facts, &oracle.factors);

        for threads in [1usize, 4] {
            for optimize in [false, true] {
                let cfg = config(optimize, threads);
                let mut session = DeltaSession::new(base.clone(), cfg).expect("base ground");
                let applied = session.apply_delta(&delta).expect("apply_delta");
                prop_assert!(
                    !applied.report.full_fallback,
                    "unconstrained delta fell back to full re-ground"
                );
                prop_assert_eq!(
                    &fingerprint(session.facts(), session.factors()),
                    &expected,
                    "threads={} optimize={} vs oracle", threads, optimize
                );
                prop_assert_eq!(
                    session.fact_iteration(),
                    &oracle.fact_iteration,
                    "schedule threads={} optimize={}", threads, optimize
                );
            }
        }
    }

    /// An empty delta is an exact no-op: identity remap, nothing added,
    /// state byte-unchanged.
    #[test]
    fn empty_delta_is_a_noop(seed in any::<u64>()) {
        let (base, _, _) = split_kb(seed, false);
        let mut session = DeltaSession::new(base, config(true, 4)).expect("base ground");
        let before = fingerprint(session.facts(), session.factors());
        let applied = session.apply_delta(&KbDelta::default()).expect("empty delta");
        prop_assert!(applied.new_fact_ids.is_empty());
        prop_assert!(applied.added_factors.is_empty());
        prop_assert!(applied.remap.iter().enumerate().all(|(i, &m)| i as i64 == m));
        prop_assert_eq!(fingerprint(session.facts(), session.factors()), before);
    }

    /// Two sequential deltas land on the same bytes as one big delta —
    /// and as a from-scratch ground of the final union.
    #[test]
    fn chained_deltas_match_one_shot(seed in any::<u64>()) {
        let (base, delta, oracle_kb) = split_kb(seed, false);
        if delta.facts.len() < 2 {
            return Ok(());
        }
        let mid = delta.facts.len() / 2;
        let first = KbDelta { facts: delta.facts[..mid].to_vec(), rules: vec![] };
        let second = KbDelta { facts: delta.facts[mid..].to_vec(), rules: delta.rules.clone() };

        let mut oracle_engine = SingleNodeEngine::new();
        let oracle = ground(&oracle_kb, &mut oracle_engine, &config(false, 1)).expect("oracle");

        let mut session = DeltaSession::new(base, config(true, 4)).expect("base ground");
        session.apply_delta(&first).expect("first delta");
        session.apply_delta(&second).expect("second delta");
        prop_assert_eq!(
            fingerprint(session.facts(), session.factors()),
            fingerprint(&oracle.facts, &oracle.factors)
        );
        prop_assert_eq!(session.fact_iteration(), &oracle.fact_iteration);
    }
}

/// Constraints force the documented full-re-ground fallback, which must
/// still land on the oracle's bytes.
#[test]
fn constrained_delta_falls_back_and_still_matches() {
    let (base, delta, oracle_kb) = {
        let mut rng = Rng(0xC0FFEE);
        let (mut text, n_facts, _) = random_kb_text(&mut rng);
        text.push_str("functional q1 1 1\n");
        let union = parse(&text).unwrap().build();
        let mut base = union.clone();
        base.facts.truncate(n_facts / 2);
        base.rules.truncate(BASE_RULES);
        let delta = KbDelta {
            facts: union.facts[base.facts.len()..].to_vec(),
            rules: union.rules[BASE_RULES..].to_vec(),
        };
        let mut oracle_kb = base.clone();
        oracle_kb.facts.extend(delta.facts.iter().cloned());
        oracle_kb.rules.extend(delta.rules.iter().cloned());
        (base, delta, oracle_kb)
    };

    let cfg = GroundingConfig {
        apply_constraints: true,
        ..config(true, 4)
    };
    let mut oracle_engine = SingleNodeEngine::new();
    let oracle_cfg = GroundingConfig {
        apply_constraints: true,
        ..config(false, 1)
    };
    let oracle = ground(&oracle_kb, &mut oracle_engine, &oracle_cfg).expect("oracle");

    let mut session = DeltaSession::new(base, cfg).expect("base ground");
    let applied = session.apply_delta(&delta).expect("apply_delta");
    assert!(applied.report.full_fallback, "constrained KB must fall back");
    assert_eq!(
        fingerprint(session.facts(), session.factors()),
        fingerprint(&oracle.facts, &oracle.factors)
    );
    assert_eq!(session.fact_iteration(), &oracle.fact_iteration);
}
