//! Lineage: why was a fact inferred, and how do errors propagate?
//!
//! Reproduces the Figure 5(a) scenario — an ambiguous "Mandel" fabricates
//! located_in facts whose errors cascade — and uses the `TΦ` lineage to
//! explain each inferred fact and trace the blast radius of a bad input.
//!
//! ```sh
//! cargo run --release --example lineage_explorer
//! ```

use probkb::prelude::*;

fn main() {
    // The Figure 5(a) setting: two different Mandels share one name.
    let kb = parse(
        r#"
        fact 0.9 born_in(Mandel:Person, Berlin:City)
        fact 0.9 born_in(Mandel:Person, Baltimore:City)
        fact 0.9 capital_of(Berlin:City, Germany:Country)
        fact 0.9 live_in(Rothman:Person, Baltimore:City)
        rule 0.52 located_in(x:City, y:City) :- born_in(z:Person, x), born_in(z, y)
        rule 0.48 hub_of(x:City, y:Country) :- capital_of(x, y)
        rule 0.40 live_in(x:Person, y:City) :- born_in(x, y)
        "#,
    )
    .expect("parse")
    .build();

    let mut engine = SingleNodeEngine::new();
    let config = GroundingConfig {
        apply_constraints: false,
        ..GroundingConfig::default()
    };
    let out = ground(&kb, &mut engine, &config).expect("grounding");
    let lineage = Lineage::from_phi(&out.factors);

    // Render facts by id.
    use probkb::core::relmodel::tpi;
    let mut names = std::collections::HashMap::new();
    for row in out.facts.rows() {
        let id = row[tpi::I].as_int().unwrap();
        let rel = kb
            .relations
            .resolve(row[tpi::R].as_int().unwrap() as u32)
            .unwrap_or("?");
        let x = kb
            .entities
            .resolve(row[tpi::X].as_int().unwrap() as u32)
            .unwrap_or("?");
        let y = kb
            .entities
            .resolve(row[tpi::Y].as_int().unwrap() as u32)
            .unwrap_or("?");
        names.insert(id, format!("{rel}({x}, {y})"));
    }
    let name = |id: i64| names.get(&id).cloned().unwrap_or_else(|| format!("f{id}"));

    println!("== Lineage explorer (Figure 5(a) scenario) ==\n");
    println!("Expanded KB ({} facts):", out.facts.len());
    for row in out.facts.rows() {
        let id = row[tpi::I].as_int().unwrap();
        let tag = if lineage.is_base(id) { "base    " } else { "inferred" };
        println!("  [{tag}] {}", name(id));
    }

    println!("\nWhy-provenance of each inferred fact:");
    for row in out.facts.rows() {
        let id = row[tpi::I].as_int().unwrap();
        if lineage.is_base(id) {
            continue;
        }
        for d in lineage.derivations(id) {
            let body: Vec<String> = d.body.iter().map(|&b| name(b)).collect();
            println!(
                "  {}  <-[w={:.2}]-  {}",
                name(id),
                d.weight,
                body.join(" AND ")
            );
        }
    }

    // Blast radius: which facts are tainted if born_in(Mandel, Berlin)
    // turns out to be about a different Mandel?
    let bad = out
        .facts
        .rows()
        .iter()
        .map(|r| r[tpi::I].as_int().unwrap())
        .find(|&id| name(id).contains("born_in(Mandel, Berlin)"))
        .expect("the bad fact exists");
    let tainted = lineage.descendants(bad);
    println!(
        "\nIf {} is wrong, {} derived fact(s) are tainted:",
        name(bad),
        tainted.len()
    );
    let mut tainted: Vec<i64> = tainted.into_iter().collect();
    tainted.sort();
    for id in tainted {
        println!("  tainted: {}", name(id));
    }

    let ancestors = lineage.ancestors(
        out.facts
            .rows()
            .iter()
            .map(|r| r[tpi::I].as_int().unwrap())
            .find(|&id| !lineage.is_base(id))
            .expect("some inferred fact"),
    );
    println!("\n(ancestor sets and full proof trees available via Lineage::{{ancestors, proof_tree}}; e.g. {} ancestors found for the first inferred fact)", ancestors.len());
}
