//! Quickstart: the paper's Table 1 running example, end to end.
//!
//! Builds the Ruth Gruber knowledge base, grounds it with the batch
//! algorithm, runs Gibbs sampling on the ground factor graph, and prints
//! the expanded KB with estimated marginals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use probkb::pipeline::{run_pipeline, PipelineOptions};
use probkb::prelude::*;

fn main() {
    let kb = table1_kb();
    println!("== ProbKB quickstart: the Table 1 knowledge base ==\n");
    println!("Input KB: {:?}\n", kb.stats());
    for fact in &kb.facts {
        println!("  extracted: {}", kb.fact_to_string(fact));
    }

    let result = run_pipeline(&kb, &PipelineOptions::default()).expect("pipeline");

    let report = &result.expansion.outcome.report;
    println!(
        "\nGrounding ({}) converged={} iterations={} facts={} factors={}",
        report.engine,
        report.converged,
        report.iterations.len(),
        report.total_facts,
        report.total_factors,
    );
    for iter in &report.iterations {
        println!(
            "  iteration {}: +{} facts ({} queries)",
            iter.iteration, iter.new_facts, iter.queries
        );
    }

    println!("\nInferred facts with estimated marginals:");
    for (i, fact) in result.expansion.new_facts.iter().enumerate() {
        let p = result.marginal_of_new_fact(i).unwrap_or(f64::NAN);
        println!("  P = {:.3}  {}", p, kb.fact_to_string(fact));
    }

    println!("\nGround factor graph (exported for external engines):");
    let json = to_json(&result.graph);
    let preview: String = json.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("{preview}\n  ...");

    // Sanity check the run so the example doubles as a smoke test.
    assert_eq!(result.expansion.outcome.facts.len(), 7);
    assert_eq!(result.expansion.outcome.factors.len(), 8);
    println!("\nOK: 7 facts and 8 factors, matching Figure 3 of the paper.");
}
