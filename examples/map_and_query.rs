//! Beyond marginals: MAP inference, belief propagation, and the
//! query-time interface over an expanded KB.
//!
//! Expands a small KB, then answers the questions a downstream
//! application asks: what is the most likely world (MAP)? what do the
//! deterministic (BP) and sampling (Gibbs) estimates say? which inferred
//! facts are confident enough to publish?
//!
//! ```sh
//! cargo run --release --example map_and_query
//! ```

use probkb::pipeline::{run_pipeline, PipelineOptions, Sampler};
use probkb::prelude::*;
use probkb::query::ExpandedKb;

fn main() {
    let kb = parse(
        r#"
        fact 1.8 born_in(Kale_Author:Writer, Gainesville:City)
        fact 1.2 works_at(Kale_Author:Writer, UF:University)
        fact 0.4 born_in(Mystery:Writer, Gainesville:City)
        rule 1.6 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.9 grew_up_in(x:Writer, y:City) :- born_in(x, y)
        rule 1.1 colleagues_city(x:Writer, y:City) :- works_at(x, z:University), located_at(z, y)
        fact 1.5 located_at(UF:University, Gainesville:City)
        "#,
    )
    .expect("parse")
    .build();

    println!("== MAP, BP, and query-time access ==\n");

    // Gibbs pipeline (the default).
    let gibbs = run_pipeline(&kb, &PipelineOptions::default()).expect("gibbs pipeline");
    // Deterministic BP over the same grounding.
    let bp = run_pipeline(
        &kb,
        &PipelineOptions {
            sampler: Sampler::BeliefPropagation(BpConfig::default()),
            ..PipelineOptions::default()
        },
    )
    .expect("bp pipeline");

    println!("Marginals (Gibbs vs belief propagation):");
    for (i, fact) in gibbs.expansion.new_facts.iter().enumerate() {
        let pg = gibbs.marginal_of_new_fact(i).unwrap_or(f64::NAN);
        let pb = bp.marginal_of_new_fact(i).unwrap_or(f64::NAN);
        println!("  Gibbs={pg:.2}  BP={pb:.2}  {}", kb.fact_to_string(fact));
    }
    let disagreement = gibbs.marginals.max_diff(&bp.marginals);
    println!("  max disagreement: {disagreement:.3}\n");

    // MAP: the single most likely world.
    let (map_icm, sweeps) = icm(&gibbs.graph.graph);
    let map = anneal(&gibbs.graph.graph, &AnnealConfig::default());
    println!(
        "MAP: ICM log-score {:.2} in {sweeps} sweeps; annealing log-score {:.2}",
        map_icm.log_score, map.log_score
    );
    let true_count = map.assignment.iter().filter(|&&b| b).count();
    println!(
        "  most likely world sets {true_count}/{} facts true\n",
        map.assignment.len()
    );

    // Query-time access over the stored marginals.
    let view = ExpandedKb::from_pipeline(&gibbs);
    println!("Everything known about Kale_Author:");
    for fact in view.about_name(&kb, "Kale_Author") {
        println!("  {}", view.describe(&kb, fact));
    }
    println!("\nConfident new knowledge (P >= 0.6):");
    for fact in view.confident_inferences(0.6) {
        println!("  {}", view.describe(&kb, fact));
    }

    assert!(disagreement < 0.2, "BP and Gibbs should roughly agree");
    assert!(map.log_score >= map_icm.log_score - 1e-9);
}
