//! Knowledge expansion with quality control on a noisy, machine-built KB.
//!
//! Generates a ReVerb-Sherlock-style synthetic KB, injects the paper's
//! error families (incorrect extractions, incorrect rules, ambiguous
//! entities), and compares inference precision with and without ProbKB's
//! quality-control defenses — a miniature of §6.2.
//!
//! ```sh
//! cargo run --release --example knowledge_expansion
//! ```

use probkb::prelude::*;

fn run(
    name: &str,
    kb: &ProbKb,
    truth: &GroundTruth,
    apply_constraints: bool,
) -> (usize, usize, f64) {
    let config = GroundingConfig {
        max_iterations: 6,
        preclean: apply_constraints,
        apply_constraints,
        max_total_facts: Some(100_000),
        threads: None,
        optimize: None,
    };
    let mut engine = SingleNodeEngine::new();
    let out = ground(kb, &mut engine, &config).expect("grounding");
    let eval = evaluate(&out, truth);
    println!(
        "  {name:<28} inferred={:<6} correct={:<6} precision={:.2}",
        eval.inferred, eval.correct, eval.precision
    );
    (eval.inferred, eval.correct, eval.precision)
}

fn main() {
    println!("== Knowledge expansion over a noisy machine-built KB ==\n");

    // A clean synthetic KB in the shape of ReVerb-Sherlock, then errors.
    let clean = generate(&ReverbConfig {
        entities: 600,
        classes: 10,
        relations: 60,
        facts: 1200,
        rules: 120,
        functional_frac: 0.4,
        pseudo_frac: 0.2,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 11,
    });
    println!("clean KB: {:?}", clean.stats());

    let corrupted = inject(
        &clean,
        &ErrorConfig {
            wrong_rules: 30,
            ambiguous_merges: 25,
            error_facts: 60,
            synonym_pairs: 8,
            seed: 5,
            closure_iterations: 5,
            closure_cap: 100_000,
        },
    );
    println!(
        "injected: {} wrong rules, {} ambiguous entities, {} bad extractions\n",
        corrupted.truth.wrong_rule_ids.len(),
        corrupted.truth.ambiguous_entities.len(),
        corrupted.truth.error_fact_keys.len(),
    );

    println!("Quality-control configurations (cf. Figure 7(a)):");
    let (_, _, p_raw) = run("raw (no QC)", &corrupted.kb, &corrupted.truth, false);

    let cleaned20 = clean_rules(&corrupted.kb, 0.2);
    let (_, _, _p_rc) = run("rule cleaning top 20%", &cleaned20, &corrupted.truth, false);

    let (_, _, p_sc) = run("semantic constraints", &corrupted.kb, &corrupted.truth, true);

    let cleaned50 = clean_rules(&corrupted.kb, 0.5);
    let (_, _, p_both) = run(
        "SC + rule cleaning top 50%",
        &cleaned50,
        &corrupted.truth,
        true,
    );

    println!("\nAmbiguous entities detected via constraint violations:");
    let violators = detect_violating_entities(&corrupted.kb).expect("detection");
    for line in describe_violators(&corrupted.kb, &violators).iter().take(8) {
        println!("  violating: {line}");
    }
    if violators.len() > 8 {
        println!("  ... ({} total)", violators.len());
    }

    println!(
        "\nSummary: precision raw={p_raw:.2} → with QC={:.2}",
        p_both.max(p_sc)
    );
    assert!(
        p_both >= p_raw,
        "quality control should never lower precision here"
    );
}
