//! Kill-and-resume demo for the durable grounding driver.
//!
//! Runs Algorithm 1 over a transitive-closure KB with WAL + snapshot
//! checkpointing, then estimates marginals with a fixed-seed Gibbs
//! sampler and writes a deterministic `export.pkb` next to the
//! checkpoint state. Because every iteration is logged, the export is
//! byte-identical no matter how many times the run was interrupted.
//!
//! Try it:
//!
//! ```text
//! cargo run --example checkpoint_resume                     # uninterrupted
//! PROBKB_CRASH_AFTER_ITER=4 cargo run --example checkpoint_resume   # "kill -9" after iter 4 (exit 86)
//! cargo run --example checkpoint_resume                     # resumes at iter 5, same export
//! ```
//!
//! `PROBKB_CKPT_DIR` overrides the checkpoint directory
//! (default `target/ckpt-demo`).

use std::path::PathBuf;

use probkb::core::checkpoint::{ground_checkpointed, CheckpointConfig};
use probkb::core::prelude::{GroundingConfig, SemiNaiveEngine};
use probkb::factorgraph::prelude::from_phi;
use probkb::inference::prelude::{gibbs_marginals, GibbsConfig};
use probkb::kb::prelude::parse;
use probkb::storage::format::{encode_table, ByteWriter};
use probkb::storage::snapshot::SnapshotBuilder;

fn main() {
    // A 12-node chain plus transitive reachability: ~12 grounding
    // iterations, so there is real progress to lose — and recover.
    let mut text = String::new();
    for i in 0..12 {
        text.push_str(&format!("fact 0.9 next(n{}:Node, n{}:Node)\n", i, i + 1));
    }
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- next(x, y)\n");
    text.push_str("rule 1.0 reach(x:Node, y:Node) :- reach(x, z:Node), next(z, y)\n");
    let kb = parse(&text).expect("chain KB parses").build();

    let dir = std::env::var("PROBKB_CKPT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/ckpt-demo"));
    let ckpt = CheckpointConfig {
        snapshot_every: 3,
        ..CheckpointConfig::new(&dir)
    }
    .with_crash_from_env();
    if let Some(n) = ckpt.crash_after_iteration {
        println!("crash hook armed: will exit after iteration {n}");
    }

    let config = GroundingConfig::default();
    let mut engine = SemiNaiveEngine::new();
    let run = ground_checkpointed(&kb, &mut engine, &config, &ckpt)
        .expect("checkpointed grounding succeeds");

    match run.resume.snapshot_iteration {
        Some(snap) => println!(
            "resumed from snapshot at iteration {snap} (+{} replayed from WAL{})",
            run.resume.replayed_iterations,
            if run.resume.completed_on_disk {
                ", already complete"
            } else {
                ""
            }
        ),
        None => println!("started fresh in {}", dir.display()),
    }
    let report = &run.outcome.report;
    println!(
        "grounded {} facts / {} factors in {} iterations (converged: {})",
        report.total_facts,
        report.total_factors,
        report.iterations.len(),
        report.converged
    );

    // Fixed-seed marginal inference over the recovered factor graph:
    // deterministic given identical factors, so it belongs in the export.
    let graph = from_phi(&run.outcome.factors);
    let marginals = gibbs_marginals(&graph.graph, &GibbsConfig::default());
    let mut enc = ByteWriter::new();
    enc.put_u64(marginals.p.len() as u64);
    for &p in &marginals.p {
        enc.put_f64(p);
    }

    let export = dir.join("export.pkb");
    let mut builder = SnapshotBuilder::new();
    builder
        .section("facts", encode_table(&run.outcome.facts))
        .section("factors", encode_table(&run.outcome.factors))
        .section("marginals", enc.into_bytes());
    builder.write_to(&export).expect("export written");
    println!("wrote deterministic export to {}", export.display());
}
