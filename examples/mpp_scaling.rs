//! MPP grounding: segments, motions, and redistributed materialized views.
//!
//! Grounds the same KB on the single-node engine and on MPP clusters with
//! and without redistributed materialized views, printing motion telemetry
//! and the Figure-4-style EXPLAIN plans.
//!
//! ```sh
//! cargo run --release --example mpp_scaling
//! ```

use probkb::mpp::prelude::*;
use probkb::prelude::*;

fn main() {
    println!("== ProbKB on a shared-nothing MPP cluster ==\n");

    let base = generate(&ReverbConfig {
        entities: 800,
        classes: 10,
        relations: 80,
        facts: 4000,
        rules: 150,
        functional_frac: 0.2,
        pseudo_frac: 0.2,
        zipf_s: 1.05,
        rule_zipf_s: 0.6,
        seed: 3,
    });
    let kb = s2_with_facts(&base, 20_000, 17);
    println!("KB: {:?}\n", kb.stats());

    // Performance configuration (§6.1.2): synthetic data, no constraint
    // passes, so all engines do identical logical work.
    let config = GroundingConfig {
        max_iterations: 2,
        preclean: false,
        apply_constraints: false,
        max_total_facts: Some(400_000),
        threads: None,
        optimize: None,
    };

    // Single node reference.
    let mut single = SingleNodeEngine::new();
    let s = ground(&kb, &mut single, &config).expect("single-node grounding");
    println!(
        "{:<12} total={:?} facts={} factors={}",
        "ProbKB",
        s.report.total_time(),
        s.report.total_facts,
        s.report.total_factors
    );

    // MPP with and without views, 8 segments.
    for mode in [MppMode::NoViews, MppMode::Optimized] {
        let mut engine = MppEngine::new(8, NetworkModel::gigabit(), mode);
        let out = ground(&kb, &mut engine, &config).expect("mpp grounding");
        let motions = engine.cluster().motions();
        println!(
            "{:<12} total={:?} facts={} | motions: {} redistributed rows, {} broadcast rows, simulated net {:?}",
            out.report.engine,
            out.report.total_time(),
            out.report.total_facts,
            motions.rows_by_kind(MotionKind::Redistribute),
            motions.rows_by_kind(MotionKind::Broadcast),
            motions.total_simulated(),
        );
        assert_eq!(out.report.total_facts, s.report.total_facts, "{mode:?}");
    }

    // Figure 4: the two plans for grounding partition M3.
    let rel = load(&kb);
    let pattern = rel
        .mln
        .iter()
        .map(|(p, _)| *p)
        .find(|p| p.arity() == 3)
        .unwrap_or(RulePattern::P1);

    let mut pn = MppEngine::new(8, NetworkModel::gigabit(), MppMode::NoViews);
    pn.load(&rel).expect("load");
    println!("\nPlan WITHOUT redistributed views (broadcast-heavy, Figure 4 right):");
    println!(
        "{}",
        explain_dplan(&pn.ground_atoms_dplan(pattern).expect("plan"))
    );

    let mut opt = MppEngine::new(8, NetworkModel::gigabit(), MppMode::Optimized);
    opt.load(&rel).expect("load");
    println!("Plan WITH redistributed views (collocated, Figure 4 left):");
    println!(
        "{}",
        explain_dplan(&opt.ground_atoms_dplan(pattern).expect("plan"))
    );
}
