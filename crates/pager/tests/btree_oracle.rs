//! Property tests: the disk-resident B-tree must agree with
//! `std::collections::BTreeMap` on random insert / point / range
//! workloads — at a comfortable pool size and at a tiny one that
//! forces eviction mid-operation.

use std::collections::BTreeMap;
use std::path::PathBuf;

use probkb_pager::buffer::BufferManager;
use probkb_pager::BTree;
use probkb_support::check::prelude::*;
use probkb_support::rng::{Rng, SeedableRng, StdRng};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probkb-btree-oracle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Random variable-length keys: short, clustered prefixes so range
/// scans and splits both get exercised.
fn random_key(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.random_range(1usize..20);
    let mut k = Vec::with_capacity(len);
    for _ in 0..len {
        // Narrow alphabet → plenty of shared prefixes and duplicates.
        k.push(b'a' + (rng.random_range(0u32..6) as u8));
    }
    k
}

fn run_workload(seed: u64, ops: usize, pool_pages: usize, name: &str) {
    let tree = BTree::create(BufferManager::new(pool_pages), &tmp(name), true).unwrap();
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for op in 0..ops {
        match rng.random_range(0u32..10) {
            // 60% inserts (with overwrites, thanks to the narrow alphabet)
            0..=5 => {
                let k = random_key(&mut rng);
                let v = rng.random_range(0u64..1_000_000);
                tree.insert(&k, v).unwrap();
                oracle.insert(k, v);
            }
            // 20% point lookups
            6 | 7 => {
                let k = random_key(&mut rng);
                assert_eq!(
                    tree.get(&k).unwrap(),
                    oracle.get(&k).copied(),
                    "seed {seed} op {op}: point lookup of {k:?}"
                );
            }
            // 20% range scans
            _ => {
                let mut a = random_key(&mut rng);
                let mut b = random_key(&mut rng);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                let got = tree.range(&a, Some(&b)).unwrap();
                let want: Vec<(Vec<u8>, u64)> = oracle
                    .range(a.clone()..b.clone())
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                assert_eq!(got, want, "seed {seed} op {op}: range {a:?}..{b:?}");
            }
        }
    }
    // Final full-scan equivalence.
    let all = tree.range(&[], None).unwrap();
    let want: Vec<(Vec<u8>, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(all, want, "seed {seed}: full scan");
    assert_eq!(tree.len(), oracle.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_workload_matches_btreemap(seed in 0u64..1_000_000) {
        run_workload(seed, 800, 64, &format!("wl{seed}.bt"));
    }

    #[test]
    fn random_workload_matches_btreemap_tiny_pool(seed in 0u64..1_000_000) {
        // 8 frames: every descent evicts; exercises write-back ordering.
        run_workload(seed, 400, 8, &format!("tiny{seed}.bt"));
    }
}

#[test]
fn sequential_and_reverse_inserts_match() {
    for (name, rev) in [("seq.bt", false), ("rev.bt", true)] {
        let tree = BTree::create(BufferManager::new(32), &tmp(name), true).unwrap();
        let mut oracle = BTreeMap::new();
        let keys: Vec<u64> = if rev {
            (0..5000).rev().collect()
        } else {
            (0..5000).collect()
        };
        for k in keys {
            tree.insert(&k.to_be_bytes(), k).unwrap();
            oracle.insert(k.to_be_bytes().to_vec(), k);
        }
        let all = tree.range(&[], None).unwrap();
        let want: Vec<(Vec<u8>, u64)> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(all, want, "{name}");
    }
}
