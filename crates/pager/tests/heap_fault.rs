//! Fault injection: truncate a heap file at every byte boundary and
//! reopen it. The invariant (same discipline as `storage`'s WAL
//! truncate-at-every-byte suite): a damaged page is *detected* — a
//! read returns `Error::Corrupt`/`Error::Io` — and torn bytes are
//! never served as record data. Intact pages keep serving their
//! records byte-for-byte.

use std::path::PathBuf;

use probkb_pager::buffer::BufferManager;
use probkb_pager::{HeapFile, PAGE_SIZE};

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probkb-heap-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a flushed heap of `recs`, returning its path.
fn build_heap(name: &str, recs: &[Vec<u8>]) -> PathBuf {
    let path = tmpdir().join(name);
    let _ = std::fs::remove_file(&path);
    let mgr = BufferManager::new(64);
    let heap = HeapFile::create(mgr, &path, false).unwrap();
    for r in recs {
        heap.append(r).unwrap();
    }
    heap.flush().unwrap();
    path
}

/// Check one truncation point: open + scan must either reproduce a
/// strict prefix of `recs` followed by an error/end, or fail to open.
/// Any record that *is* yielded must be byte-identical to the
/// original at its position — truncation may cut records off the end,
/// never corrupt one in place.
fn check_truncated(bytes: &[u8], cut: usize, recs: &[Vec<u8>], scratch: &PathBuf) {
    std::fs::write(scratch, &bytes[..cut]).unwrap();
    let mgr = BufferManager::new(64);
    let heap = match HeapFile::open(mgr, scratch) {
        Ok(h) => h,
        Err(_) => return, // detected at open: fine
    };
    let mut served = 0usize;
    for item in heap.scan() {
        match item {
            Ok((_rid, rec)) => {
                assert!(
                    served < recs.len() && rec == recs[served],
                    "cut at {cut}: served corrupt record at position {served}"
                );
                served += 1;
            }
            Err(_) => return, // detected mid-scan: fine
        }
    }
    // Scan completed without error: every record must be intact. A cut
    // inside the *last* flushed page can only drop whole trailing
    // records if the page CRC still matched — impossible unless the cut
    // is at a page boundary, in which case trailing pages vanish whole.
    assert!(
        served <= recs.len(),
        "cut at {cut}: more records than written"
    );
    if cut == bytes.len() {
        assert_eq!(served, recs.len(), "full file must serve everything");
    } else {
        assert_eq!(
            cut % PAGE_SIZE,
            0,
            "cut at {cut}: clean scan despite a torn page (CRC failed to detect)"
        );
    }
}

#[test]
fn truncate_at_every_byte_small_heap() {
    // ~3 pages: meta + two data pages.
    let recs: Vec<Vec<u8>> = (0..24u8).map(|i| vec![i; 600]).collect();
    let path = build_heap("small.heap", &recs);
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 2 * PAGE_SIZE, "want a multi-page heap");
    let scratch = tmpdir().join("small.cut.heap");
    for cut in 0..=bytes.len() {
        check_truncated(&bytes, cut, &recs, &scratch);
    }
    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(&scratch);
}

#[test]
fn truncate_near_page_boundaries_large_heap() {
    // A larger heap with fragmented (multi-page) records; probe every
    // page boundary ±2 bytes plus the file tail.
    let recs: Vec<Vec<u8>> = (0..40usize)
        .map(|i| {
            (0..(200 + (i % 5) * 4000))
                .map(|j| ((i * 13 + j * 7) % 251) as u8)
                .collect()
        })
        .collect();
    let path = build_heap("large.heap", &recs);
    let bytes = std::fs::read(&path).unwrap();
    let pages = bytes.len() / PAGE_SIZE;
    assert!(pages >= 8, "want many pages, got {pages}");
    let scratch = tmpdir().join("large.cut.heap");
    let mut cuts: Vec<usize> = Vec::new();
    for p in 0..=pages {
        for d in -2i64..=2 {
            let c = p as i64 * PAGE_SIZE as i64 + d;
            if (0..=bytes.len() as i64).contains(&c) {
                cuts.push(c as usize);
            }
        }
    }
    cuts.extend([bytes.len() - 1, bytes.len()]);
    for cut in cuts {
        check_truncated(&bytes, cut, &recs, &scratch);
    }
    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(&scratch);
}

#[test]
fn bitflip_every_page_is_detected() {
    // Flip one byte in each page in turn; any scan serving records must
    // never yield a corrupted record body.
    let recs: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i ^ 0x3c; 700]).collect();
    let path = build_heap("flip.heap", &recs);
    let bytes = std::fs::read(&path).unwrap();
    let scratch = tmpdir().join("flip.cut.heap");
    let pages = bytes.len() / PAGE_SIZE;
    for p in 0..pages {
        let mut copy = bytes.clone();
        copy[p * PAGE_SIZE + PAGE_SIZE / 2] ^= 0x01;
        std::fs::write(&scratch, &copy).unwrap();
        let mgr = BufferManager::new(64);
        let heap = match HeapFile::open(mgr, &scratch) {
            Ok(h) => h,
            Err(_) => continue,
        };
        let mut saw_error = false;
        let mut served = 0usize;
        for item in heap.scan() {
            match item {
                Ok((_, rec)) => {
                    assert_eq!(rec, recs[served], "flipped page {p}: corrupt record served");
                    served += 1;
                }
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(
            saw_error || served == recs.len(),
            "flipped page {p}: scan ended early without an error"
        );
        // A flip in a data page must surface as an error somewhere.
        if p > 0 {
            assert!(saw_error, "flipped data page {p} went undetected");
        }
    }
    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(&scratch);
}
