//! Buffer-manager model test: random page traffic over a pool much
//! smaller than the working set, checked against an in-memory shadow
//! of every page's expected contents. Exercises hit/miss/evict paths,
//! dirty write-back, pin accounting, and multi-file sharing.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use probkb_pager::buffer::BufferManager;
use probkb_pager::disk::DiskManager;
use probkb_pager::{FileId, PageNo};
use probkb_support::rng::{Rng, SeedableRng, StdRng};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("probkb-bufpool-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn random_traffic_matches_shadow_model() {
    let mgr = BufferManager::new(8);
    let mut files: Vec<FileId> = Vec::new();
    for i in 0..2 {
        let disk = Arc::new(DiskManager::create(&tmp(&format!("model{i}.pg"))).unwrap());
        disk.set_ephemeral(true);
        files.push(mgr.register_file(disk));
    }
    // shadow[(fid, pno)] = the byte the whole page should carry.
    let mut shadow: HashMap<(FileId, PageNo), u8> = HashMap::new();
    let mut pages: Vec<(FileId, PageNo)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xB0FFE);
    for step in 0..4000u32 {
        let action = rng.random_range(0u32..10);
        if pages.len() < 4 || action == 0 {
            // Create a page (32 pages max per file keeps it bounded).
            let fid = files[rng.random_range(0u32..2) as usize];
            if pages.iter().filter(|(f, _)| *f == fid).count() < 32 {
                let (pno, g) = mgr.create_page(fid).unwrap();
                let tag = (step % 251) as u8;
                g.write(|buf| buf[8..].fill(tag));
                shadow.insert((fid, pno), tag);
                pages.push((fid, pno));
            }
        } else if action <= 6 {
            // Read a random page and check every data byte.
            let &(fid, pno) = &pages[rng.random_range(0..pages.len() as u32) as usize];
            let want = shadow[&(fid, pno)];
            let g = mgr.fetch(fid, pno).unwrap();
            g.read(|buf| {
                assert!(
                    buf[8..].iter().all(|&b| b == want),
                    "step {step}: page ({fid},{pno}) lost its contents"
                );
            });
        } else {
            // Rewrite a random page.
            let &(fid, pno) = &pages[rng.random_range(0..pages.len() as u32) as usize];
            let tag = (step % 251) as u8;
            let g = mgr.fetch(fid, pno).unwrap();
            g.write(|buf| buf[8..].fill(tag));
            shadow.insert((fid, pno), tag);
        }
    }
    let s = mgr.stats();
    assert!(s.evictions > 0, "64-page working set in 8 frames never evicted");
    assert!(s.bytes_spilled > 0, "dirty pages never written back");
    assert!(s.hits + s.misses == s.pins, "pin accounting leak: {s:?}");
    // Final sweep: every page still matches the shadow.
    for (&(fid, pno), &want) in &shadow {
        let g = mgr.fetch(fid, pno).unwrap();
        g.read(|buf| assert!(buf[8..].iter().all(|&b| b == want)));
    }
}

#[test]
fn concurrent_readers_share_frames() {
    let mgr = BufferManager::new(16);
    let disk = Arc::new(DiskManager::create(&tmp("conc.pg")).unwrap());
    disk.set_ephemeral(true);
    let fid = mgr.register_file(disk);
    let mut pnos = Vec::new();
    for i in 0..32u8 {
        let (pno, g) = mgr.create_page(fid).unwrap();
        g.write(|buf| buf[8..].fill(i));
        pnos.push(pno);
    }
    let mgr = &mgr;
    let pnos = &pnos;
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..2000 {
                    let i = rng.random_range(0..pnos.len() as u32) as usize;
                    let g = mgr.fetch(fid, pnos[i]).unwrap();
                    g.read(|buf| assert!(buf[8..].iter().all(|&b| b == i as u8)));
                }
            });
        }
    });
    let s = mgr.stats();
    assert_eq!(s.hits + s.misses, s.pins);
}
