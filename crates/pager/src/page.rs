//! Slotted-page layout for heap pages.
//!
//! ```text
//! byte 0                                                   PAGE_SIZE
//! [crc:4][nslots:2][free_off:2][ ... record data ... → | ← slot dir ]
//! ```
//!
//! Record data grows up from [`HEADER_LEN`]; the slot directory grows
//! down from the end of the page, one `[off:u16][len:u16]` entry per
//! slot, slot 0 occupying the *highest* 4 bytes. `free_off` is the
//! first free data byte. The leading CRC-32 covers bytes
//! `[4..PAGE_SIZE]` and is sealed/verified by [`crate::disk`], not
//! here — this module only does in-memory layout arithmetic.
//!
//! All integers are little-endian, matching `crates/storage`'s codecs.

use crate::{PAGE_SIZE, Error, Result};

/// Bytes reserved at the start of every heap page.
pub const HEADER_LEN: usize = 8;
/// Bytes per slot-directory entry.
pub const SLOT_LEN: usize = 4;

/// Initialize an empty slotted page in `buf`.
pub fn init(buf: &mut [u8]) {
    debug_assert_eq!(buf.len(), PAGE_SIZE);
    buf[..HEADER_LEN].fill(0);
    set_slot_count(buf, 0);
    set_free_off(buf, HEADER_LEN as u16);
}

/// Number of slots on the page.
pub fn slot_count(buf: &[u8]) -> u16 {
    u16::from_le_bytes([buf[4], buf[5]])
}

fn set_slot_count(buf: &mut [u8], n: u16) {
    buf[4..6].copy_from_slice(&n.to_le_bytes());
}

/// First free data byte.
pub fn free_off(buf: &[u8]) -> u16 {
    u16::from_le_bytes([buf[6], buf[7]])
}

fn set_free_off(buf: &mut [u8], off: u16) {
    buf[6..8].copy_from_slice(&off.to_le_bytes());
}

fn slot_pos(slot: u16) -> usize {
    PAGE_SIZE - SLOT_LEN * (slot as usize + 1)
}

/// The `(offset, len)` recorded for `slot`, unvalidated.
fn slot_entry(buf: &[u8], slot: u16) -> (usize, usize) {
    let p = slot_pos(slot);
    let off = u16::from_le_bytes([buf[p], buf[p + 1]]) as usize;
    let len = u16::from_le_bytes([buf[p + 2], buf[p + 3]]) as usize;
    (off, len)
}

/// Free bytes available for one more record (including its slot entry).
pub fn free_space(buf: &[u8]) -> usize {
    let dir_start = PAGE_SIZE - SLOT_LEN * slot_count(buf) as usize;
    dir_start
        .saturating_sub(free_off(buf) as usize)
        .saturating_sub(SLOT_LEN)
}

/// Insert `data` as a new slot; returns its slot number, or `None` if
/// the page lacks room.
pub fn insert(buf: &mut [u8], data: &[u8]) -> Option<u16> {
    if free_space(buf) < data.len() {
        return None;
    }
    let slot = slot_count(buf);
    let off = free_off(buf) as usize;
    buf[off..off + data.len()].copy_from_slice(data);
    let p = slot_pos(slot);
    buf[p..p + 2].copy_from_slice(&(off as u16).to_le_bytes());
    buf[p + 2..p + 4].copy_from_slice(&(data.len() as u16).to_le_bytes());
    set_slot_count(buf, slot + 1);
    set_free_off(buf, (off + data.len()) as u16);
    Some(slot)
}

/// Read the bytes of `slot`, validating the slot entry against the
/// page bounds (a CRC-valid page can still be probed with a stale RID).
pub fn read(buf: &[u8], slot: u16) -> Result<&[u8]> {
    if slot >= slot_count(buf) {
        return Err(Error::Corrupt(format!(
            "slot {slot} out of range ({} on page)",
            slot_count(buf)
        )));
    }
    let (off, len) = slot_entry(buf, slot);
    let dir_start = PAGE_SIZE - SLOT_LEN * slot_count(buf) as usize;
    if off < HEADER_LEN || off + len > dir_start {
        return Err(Error::Corrupt(format!(
            "slot {slot} points outside data area ({off}+{len})"
        )));
    }
    Ok(&buf[off..off + len])
}

/// Overwrite `bytes` at `rec_off` within the record stored in `slot`.
/// Used to patch a fragment's next-pointer after its successor is
/// placed. The write must stay inside the record.
pub fn write_in_place(buf: &mut [u8], slot: u16, rec_off: usize, bytes: &[u8]) -> Result<()> {
    if slot >= slot_count(buf) {
        return Err(Error::Corrupt(format!("patch of missing slot {slot}")));
    }
    let (off, len) = slot_entry(buf, slot);
    if rec_off + bytes.len() > len {
        return Err(Error::Corrupt(format!(
            "patch at {rec_off}+{} exceeds record of {len} bytes",
            bytes.len()
        )));
    }
    buf[off + rec_off..off + rec_off + bytes.len()].copy_from_slice(bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_read_roundtrip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf);
        let a = insert(&mut buf, b"hello").unwrap();
        let b = insert(&mut buf, b"world!").unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(read(&buf, 0).unwrap(), b"hello");
        assert_eq!(read(&buf, 1).unwrap(), b"world!");
        assert!(read(&buf, 2).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf);
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while insert(&mut buf, &rec).is_some() {
            n += 1;
        }
        // 8192 - 8 header = 8184; each record costs 1000 + 4 slot bytes.
        assert_eq!(n, 8);
        assert!(free_space(&buf) < 1000);
        // Small records still fit in the remainder.
        assert!(insert(&mut buf, &[1u8; 8]).is_some());
    }

    #[test]
    fn empty_record_allowed() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf);
        let s = insert(&mut buf, b"").unwrap();
        assert_eq!(read(&buf, s).unwrap(), b"");
    }

    #[test]
    fn write_in_place_patches() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf);
        let s = insert(&mut buf, b"abcdef").unwrap();
        write_in_place(&mut buf, s, 2, b"XY").unwrap();
        assert_eq!(read(&buf, s).unwrap(), b"abXYef");
        assert!(write_in_place(&mut buf, s, 5, b"ZZ").is_err());
    }
}
