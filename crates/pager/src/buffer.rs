//! The buffer pool: a fixed set of page frames shared by every
//! registered file, with pin/unpin accounting and clock eviction.
//!
//! Page data lives in per-frame `RwLock`s *outside* the manager's
//! bookkeeping mutex, so concurrent readers of resident pages never
//! serialize on the pool. The bookkeeping mutex (page table, pin
//! counts, dirty bits, clock hand) is held only for map/evict
//! decisions and for the disk I/O of a miss — lock order is always
//! bookkeeping → frame, and guards only ever take a frame lock, so
//! the pair cannot deadlock.
//!
//! Capacity: [`BufferManager::from_env`] reads `PROBKB_BUFFER_PAGES`
//! (default [`DEFAULT_POOL_PAGES`], min 8 so B-tree descents always
//! fit). Every fetch pins its page via a [`PageGuard`]; eviction only
//! considers `pins == 0` frames, writing dirty victims back first.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use probkb_support::sync::{Mutex, RwLock};

use crate::clock::{ClockReplacer, FrameMeta};
use crate::disk::DiskManager;
use crate::page;
use crate::{Error, FileId, PageNo, Result, PAGE_SIZE};

/// Default pool size when `PROBKB_BUFFER_PAGES` is unset: 1024 pages
/// = 8 MiB.
pub const DEFAULT_POOL_PAGES: usize = 1024;
/// Smallest usable pool (a B-tree descent plus heap append must fit).
pub const MIN_POOL_PAGES: usize = 8;

/// Monotonic counters describing pool activity. Snapshots subtract to
/// give per-query deltas for EXPLAIN ANALYZE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Total page pins (every fetch/create).
    pub pins: u64,
    /// Fetches satisfied from a resident frame.
    pub hits: u64,
    /// Fetches that had to read from disk.
    pub misses: u64,
    /// Frames reclaimed from another page.
    pub evictions: u64,
    /// Bytes of dirty pages written back to disk.
    pub bytes_spilled: u64,
}

impl BufferStats {
    /// The component-wise difference `self - earlier` (deltas).
    pub fn since(&self, earlier: &BufferStats) -> BufferStats {
        BufferStats {
            pins: self.pins - earlier.pins,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            bytes_spilled: self.bytes_spilled - earlier.bytes_spilled,
        }
    }
}

#[derive(Default)]
struct StatCells {
    pins: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes_spilled: AtomicU64,
}

struct Inner {
    meta: Vec<FrameMeta>,
    keys: Vec<Option<(FileId, PageNo)>>,
    dirty: Vec<bool>,
    table: HashMap<(FileId, PageNo), usize>,
    files: HashMap<FileId, Arc<DiskManager>>,
    next_file: FileId,
    clock: ClockReplacer,
}

/// The pool. Shared via `Arc`; guards hold a clone.
pub struct BufferManager {
    frames: Vec<Arc<RwLock<Box<[u8]>>>>,
    inner: Mutex<Inner>,
    stats: StatCells,
}

impl std::fmt::Debug for BufferManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferManager")
            .field("capacity", &self.frames.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Pool capacity from `PROBKB_BUFFER_PAGES`, read once per process.
pub fn env_pool_pages() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("PROBKB_BUFFER_PAGES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_POOL_PAGES)
            .max(MIN_POOL_PAGES)
    })
}

impl BufferManager {
    /// A pool of `capacity` frames (clamped to [`MIN_POOL_PAGES`]).
    pub fn new(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(MIN_POOL_PAGES);
        let frames = (0..capacity)
            .map(|_| Arc::new(RwLock::new(vec![0u8; PAGE_SIZE].into_boxed_slice())))
            .collect();
        Arc::new(BufferManager {
            frames,
            inner: Mutex::new(Inner {
                meta: vec![FrameMeta::default(); capacity],
                keys: vec![None; capacity],
                dirty: vec![false; capacity],
                table: HashMap::new(),
                files: HashMap::new(),
                next_file: 0,
                clock: ClockReplacer::new(),
            }),
            stats: StatCells::default(),
        })
    }

    /// A pool sized by `PROBKB_BUFFER_PAGES`.
    pub fn from_env() -> Arc<Self> {
        BufferManager::new(env_pool_pages())
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            pins: self.stats.pins.load(Ordering::Relaxed),
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes_spilled: self.stats.bytes_spilled.load(Ordering::Relaxed),
        }
    }

    /// Register a file with the pool, returning its handle.
    pub fn register_file(&self, disk: Arc<DiskManager>) -> FileId {
        let mut inner = self.inner.lock();
        let fid = inner.next_file;
        inner.next_file += 1;
        inner.files.insert(fid, disk);
        fid
    }

    /// Drop a file's pool state *without* write-back (the caller flushes
    /// first if the file outlives the pool; spill files are deleted
    /// anyway). Frames still pinned stay resident until unpinned but
    /// are forgotten by the table.
    pub fn unregister_file(&self, fid: FileId) {
        let mut inner = self.inner.lock();
        inner.files.remove(&fid);
        let drop_keys: Vec<(FileId, PageNo)> = inner
            .table
            .keys()
            .filter(|(f, _)| *f == fid)
            .copied()
            .collect();
        for key in drop_keys {
            if let Some(idx) = inner.table.remove(&key) {
                // Forget the page either way; a still-pinned frame keeps
                // its data for existing guards but is never written back
                // and becomes reclaimable once unpinned.
                inner.keys[idx] = None;
                inner.dirty[idx] = false;
                if inner.meta[idx].pins == 0 {
                    inner.meta[idx] = FrameMeta::default();
                }
            }
        }
    }

    /// Pin an existing page, reading it from disk on a miss.
    pub fn fetch(self: &Arc<Self>, fid: FileId, pno: PageNo) -> Result<PageGuard> {
        let mut inner = self.inner.lock();
        self.stats.pins.fetch_add(1, Ordering::Relaxed);
        if let Some(&idx) = inner.table.get(&(fid, pno)) {
            inner.meta[idx].pins += 1;
            inner.meta[idx].referenced = true;
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.guard(fid, pno, idx));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.claim_frame(&mut inner)?;
        let disk = inner
            .files
            .get(&fid)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("fetch on unregistered file {fid}")))?;
        {
            let mut data = self.frames[idx].write();
            if let Err(e) = disk.read_page(pno, &mut data) {
                // Leave the frame free; don't serve damaged bytes.
                inner.meta[idx] = FrameMeta::default();
                inner.keys[idx] = None;
                return Err(e);
            }
        }
        self.install(&mut inner, idx, fid, pno);
        Ok(self.guard(fid, pno, idx))
    }

    /// Allocate a fresh page in `fid` and pin it, zero-initialized and
    /// marked dirty so it reaches disk even if never touched again.
    pub fn create_page(self: &Arc<Self>, fid: FileId) -> Result<(PageNo, PageGuard)> {
        let mut inner = self.inner.lock();
        self.stats.pins.fetch_add(1, Ordering::Relaxed);
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let disk = inner
            .files
            .get(&fid)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("create_page on unregistered file {fid}")))?;
        let idx = self.claim_frame(&mut inner)?;
        let pno = disk.allocate();
        {
            let mut data = self.frames[idx].write();
            data.fill(0);
            page::init(&mut data);
        }
        self.install(&mut inner, idx, fid, pno);
        inner.dirty[idx] = true;
        Ok((pno, self.guard(fid, pno, idx)))
    }

    /// Write back every dirty resident page of `fid` and sync it.
    pub fn flush_file(&self, fid: FileId) -> Result<()> {
        let mut inner = self.inner.lock();
        let disk = inner
            .files
            .get(&fid)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("flush of unregistered file {fid}")))?;
        for idx in 0..self.frames.len() {
            if inner.dirty[idx] && inner.keys[idx].map(|(f, _)| f) == Some(fid) {
                let (_, pno) = inner.keys[idx].unwrap();
                let mut data = self.frames[idx].write();
                disk.write_page(pno, &mut data)?;
                self.stats
                    .bytes_spilled
                    .fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
                inner.dirty[idx] = false;
            }
        }
        disk.sync()
    }

    fn guard(self: &Arc<Self>, fid: FileId, pno: PageNo, idx: usize) -> PageGuard {
        PageGuard {
            mgr: Arc::clone(self),
            fid,
            pno,
            frame: idx,
        }
    }

    fn install(&self, inner: &mut Inner, idx: usize, fid: FileId, pno: PageNo) {
        inner.meta[idx] = FrameMeta {
            pins: 1,
            referenced: true,
            occupied: true,
        };
        inner.keys[idx] = Some((fid, pno));
        inner.dirty[idx] = false;
        inner.table.insert((fid, pno), idx);
    }

    /// Find a frame for a new page, evicting (with dirty write-back) if
    /// needed. Called with the bookkeeping lock held.
    fn claim_frame(&self, inner: &mut Inner) -> Result<usize> {
        let idx = inner.clock.victim(&mut inner.meta).ok_or(Error::PoolExhausted)?;
        if let Some((old_fid, old_pno)) = inner.keys[idx] {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if inner.dirty[idx] {
                let disk = inner.files.get(&old_fid).cloned().ok_or_else(|| {
                    Error::Corrupt(format!("dirty page for unregistered file {old_fid}"))
                })?;
                let mut data = self.frames[idx].write();
                disk.write_page(old_pno, &mut data)?;
                self.stats
                    .bytes_spilled
                    .fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
            }
            inner.table.remove(&(old_fid, old_pno));
        }
        inner.meta[idx] = FrameMeta::default();
        inner.keys[idx] = None;
        inner.dirty[idx] = false;
        Ok(idx)
    }

    fn unpin(&self, frame: usize) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.meta[frame].pins > 0, "unpin of unpinned frame");
        inner.meta[frame].pins = inner.meta[frame].pins.saturating_sub(1);
    }

    fn mark_dirty(&self, frame: usize) {
        let mut inner = self.inner.lock();
        inner.dirty[frame] = true;
    }
}

/// RAII pin on one resident page. Access goes through closures so the
/// frame's lock scope is explicit and never outlives the guard.
pub struct PageGuard {
    mgr: Arc<BufferManager>,
    fid: FileId,
    pno: PageNo,
    frame: usize,
}

impl PageGuard {
    /// The page number this guard pins.
    pub fn page_no(&self) -> PageNo {
        self.pno
    }

    /// The file this guard's page belongs to.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// Read the page bytes.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.mgr.frames[self.frame].read();
        f(&data)
    }

    /// Mutate the page bytes; marks the frame dirty.
    pub fn write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let out = {
            let mut data = self.mgr.frames[self.frame].write();
            f(&mut data)
        };
        self.mgr.mark_dirty(self.frame);
        out
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.mgr.unpin(self.frame);
    }
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("file", &self.fid)
            .field("page", &self.pno)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("probkb-buffer-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn pool_with_file(name: &str, cap: usize) -> (Arc<BufferManager>, FileId, PathBuf) {
        let path = tmp(name);
        let disk = Arc::new(DiskManager::create(&path).unwrap());
        disk.set_ephemeral(true);
        let mgr = BufferManager::new(cap);
        let fid = mgr.register_file(disk);
        (mgr, fid, path)
    }

    #[test]
    fn create_fetch_hit() {
        let (mgr, fid, _p) = pool_with_file("hit.pg", 8);
        let (pno, g) = mgr.create_page(fid).unwrap();
        g.write(|buf| buf[100] = 7);
        drop(g);
        let g = mgr.fetch(fid, pno).unwrap();
        assert_eq!(g.read(|buf| buf[100]), 7);
        let s = mgr.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.pins, 2);
    }

    #[test]
    fn eviction_writes_back_and_reloads() {
        let (mgr, fid, _p) = pool_with_file("evict.pg", 8);
        // 8 frames; create 20 pages, each marked with its number.
        let mut pages = Vec::new();
        for i in 0..20u8 {
            let (pno, g) = mgr.create_page(fid).unwrap();
            g.write(|buf| buf[64] = i);
            pages.push(pno);
        }
        assert!(mgr.stats().evictions > 0);
        assert!(mgr.stats().bytes_spilled > 0);
        for (i, &pno) in pages.iter().enumerate() {
            let g = mgr.fetch(fid, pno).unwrap();
            assert_eq!(g.read(|buf| buf[64]), i as u8, "page {pno}");
        }
    }

    #[test]
    fn all_pinned_is_pool_exhausted() {
        let (mgr, fid, _p) = pool_with_file("pinned.pg", 8);
        let guards: Vec<_> = (0..8).map(|_| mgr.create_page(fid).unwrap().1).collect();
        let err = mgr.create_page(fid).unwrap_err();
        assert!(matches!(err, Error::PoolExhausted));
        drop(guards);
        assert!(mgr.create_page(fid).is_ok());
    }

    #[test]
    fn flush_persists_without_eviction() {
        let path = tmp("flush.pg");
        let disk = Arc::new(DiskManager::create(&path).unwrap());
        let mgr = BufferManager::new(8);
        let fid = mgr.register_file(Arc::clone(&disk));
        let (pno, g) = mgr.create_page(fid).unwrap();
        g.write(|buf| buf[9] = 99);
        drop(g);
        mgr.flush_file(fid).unwrap();
        // Fresh pool reads it straight from disk.
        let mgr2 = BufferManager::new(8);
        let disk2 = Arc::new(DiskManager::open(&path).unwrap());
        let fid2 = mgr2.register_file(disk2);
        let g = mgr2.fetch(fid2, pno).unwrap();
        assert_eq!(g.read(|buf| buf[9]), 99);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_since_subtracts() {
        let a = BufferStats {
            pins: 10,
            hits: 6,
            misses: 4,
            evictions: 2,
            bytes_spilled: 8192,
        };
        let b = BufferStats {
            pins: 4,
            hits: 3,
            misses: 1,
            evictions: 0,
            bytes_spilled: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.pins, 6);
        assert_eq!(d.hits, 3);
        assert_eq!(d.misses, 3);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.bytes_spilled, 8192);
    }
}
