//! Append-only heap files of variable-length records on slotted pages.
//!
//! Page 0 is a meta page (`PKBHEAP1` magic + record count); data pages
//! start at 1. A record is stored as one or more *fragments*, each a
//! slotted-page entry with a 7-byte header:
//!
//! ```text
//! [flags:1][next_page:4][next_slot:2][payload...]
//! ```
//!
//! `flags` bit 0 marks the record's first fragment; bit 1 says a
//! continuation follows at `(next_page, next_slot)`. Fragments are
//! written in forward order — the predecessor's next-pointer is patched
//! once its successor is placed — so a record's head always precedes
//! its tail in page order and [`HeapFile::scan`] (first-fragment slots
//! in `(page, slot)` order) yields exactly insertion order. That is the
//! invariant that lets a spilled `Table` upstairs reproduce its
//! in-memory row order byte-for-byte.
//!
//! Appends go to a single tail page until it cannot make progress, so
//! pages are dense. All multi-byte integers are little-endian.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use probkb_support::sync::Mutex;

use crate::buffer::BufferManager;
use crate::disk::DiskManager;
use crate::page;
use crate::{Error, FileId, PageNo, Result, PAGE_SIZE};

const MAGIC: &[u8; 8] = b"PKBHEAP1";
const FRAG_HDR: usize = 7;
const FLAG_FIRST: u8 = 0b01;
const FLAG_HAS_NEXT: u8 = 0b10;
/// Largest fragment payload an empty page can hold.
const MAX_FRAG_PAYLOAD: usize = PAGE_SIZE - page::HEADER_LEN - page::SLOT_LEN - FRAG_HDR;
/// Don't bother starting a fragment on a page with less than this much
/// payload room; open a fresh page instead.
const MIN_FRAG_PAYLOAD: usize = 16;

/// A record id: the page and slot of the record's first fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the first fragment.
    pub page: PageNo,
    /// Slot of the first fragment.
    pub slot: u16,
}

struct AppendState {
    tail: Option<PageNo>,
    records: u64,
}

/// An append-only record store over buffer-managed slotted pages.
pub struct HeapFile {
    buffer: Arc<BufferManager>,
    disk: Arc<DiskManager>,
    fid: FileId,
    append: Mutex<AppendState>,
    records: AtomicU64,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("path", &self.disk.path())
            .field("records", &self.record_count())
            .finish()
    }
}

impl HeapFile {
    /// Create a fresh heap file at `path`. `ephemeral` files are
    /// deleted when the heap drops (spill files).
    pub fn create(buffer: Arc<BufferManager>, path: &Path, ephemeral: bool) -> Result<Arc<Self>> {
        let disk = Arc::new(DiskManager::create(path)?);
        disk.set_ephemeral(ephemeral);
        let meta = disk.allocate();
        debug_assert_eq!(meta, 0);
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[4..12].copy_from_slice(MAGIC);
        disk.write_page(0, &mut buf)?;
        let fid = buffer.register_file(Arc::clone(&disk));
        Ok(Arc::new(HeapFile {
            buffer,
            disk,
            fid,
            append: Mutex::new(AppendState {
                tail: None,
                records: 0,
            }),
            records: AtomicU64::new(0),
        }))
    }

    /// Open an existing heap file, verifying its meta page.
    pub fn open(buffer: Arc<BufferManager>, path: &Path) -> Result<Arc<Self>> {
        let disk = Arc::new(DiskManager::open(path)?);
        if disk.page_count() == 0 {
            return Err(Error::Corrupt(format!(
                "heap file {} has no meta page",
                path.display()
            )));
        }
        let fid = buffer.register_file(Arc::clone(&disk));
        let heap = HeapFile {
            buffer,
            disk,
            fid,
            append: Mutex::new(AppendState {
                tail: None,
                records: 0,
            }),
            records: AtomicU64::new(0),
        };
        let records = {
            let g = heap.buffer.fetch(fid, 0)?;
            g.read(|buf| {
                if &buf[4..12] != MAGIC {
                    return Err(Error::Corrupt(format!(
                        "bad heap magic in {}",
                        path.display()
                    )));
                }
                Ok(u64::from_le_bytes(buf[12..20].try_into().unwrap()))
            })?
        };
        heap.records.store(records, Ordering::Relaxed);
        heap.append.lock().records = records;
        Ok(Arc::new(heap))
    }

    /// Number of records appended (persisted at [`HeapFile::flush`]).
    pub fn record_count(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Number of pages, including the meta page.
    pub fn page_count(&self) -> u32 {
        self.disk.page_count()
    }

    /// The buffer pool this heap lives in.
    pub fn buffer(&self) -> &Arc<BufferManager> {
        &self.buffer
    }

    /// Append a record, returning its [`Rid`].
    pub fn append(&self, rec: &[u8]) -> Result<Rid> {
        let mut st = self.append.lock();
        let mut remaining = rec;
        let mut head: Option<Rid> = None;
        // Predecessor fragment to patch once we place the next one.
        let mut prev: Option<Rid> = None;
        let mut first = true;
        loop {
            // Pick a page with usable room.
            let (pno, guard) = match st.tail {
                Some(t) => {
                    let g = self.buffer.fetch(self.fid, t)?;
                    let avail = g
                        .read(|buf| page::free_space(buf))
                        .saturating_sub(FRAG_HDR);
                    // Enough for the rest of the record, or at least
                    // MIN_FRAG_PAYLOAD of forward progress.
                    let needed = remaining.len().clamp(1, MIN_FRAG_PAYLOAD);
                    if avail >= needed {
                        (t, g)
                    } else {
                        drop(g);
                        let (p, g) = self.buffer.create_page(self.fid)?;
                        st.tail = Some(p);
                        (p, g)
                    }
                }
                None => {
                    let (p, g) = self.buffer.create_page(self.fid)?;
                    st.tail = Some(p);
                    (p, g)
                }
            };
            let avail = guard
                .read(|buf| page::free_space(buf))
                .saturating_sub(FRAG_HDR);
            let take = remaining.len().min(avail).min(MAX_FRAG_PAYLOAD);
            let has_next = take < remaining.len();
            let mut frag = Vec::with_capacity(FRAG_HDR + take);
            let mut flags = 0u8;
            if first {
                flags |= FLAG_FIRST;
            }
            if has_next {
                flags |= FLAG_HAS_NEXT;
            }
            frag.push(flags);
            frag.extend_from_slice(&0u32.to_le_bytes());
            frag.extend_from_slice(&0u16.to_le_bytes());
            frag.extend_from_slice(&remaining[..take]);
            let slot = guard
                .write(|buf| page::insert(buf, &frag))
                .ok_or_else(|| Error::Corrupt("tail page rejected sized fragment".into()))?;
            let here = Rid { page: pno, slot };
            drop(guard);
            if head.is_none() {
                head = Some(here);
            }
            if let Some(p) = prev {
                // Patch the predecessor's next-pointer (bytes 1..7 of
                // its fragment) now that we know where we landed.
                let pg = self.buffer.fetch(self.fid, p.page)?;
                pg.write(|buf| {
                    let mut ptr = [0u8; 6];
                    ptr[..4].copy_from_slice(&here.page.to_le_bytes());
                    ptr[4..].copy_from_slice(&here.slot.to_le_bytes());
                    page::write_in_place(buf, p.slot, 1, &ptr)
                })?;
            }
            remaining = &remaining[take..];
            if !has_next {
                break;
            }
            prev = Some(here);
            first = false;
        }
        st.records += 1;
        self.records.store(st.records, Ordering::Relaxed);
        Ok(head.expect("append places at least one fragment"))
    }

    /// Read back the record at `rid`, following its fragment chain.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur = rid;
        let mut first = true;
        // A chain can't have more fragments than the file has slots.
        let mut budget = self.disk.page_count() as u64 * (PAGE_SIZE / (FRAG_HDR + page::SLOT_LEN)) as u64 + 1;
        loop {
            if budget == 0 {
                return Err(Error::Corrupt(format!(
                    "fragment chain from page {} slot {} does not terminate",
                    rid.page, rid.slot
                )));
            }
            budget -= 1;
            if cur.page == 0 || cur.page >= self.disk.page_count() {
                return Err(Error::Corrupt(format!(
                    "fragment pointer to invalid page {}",
                    cur.page
                )));
            }
            let g = self.buffer.fetch(self.fid, cur.page)?;
            let next = g.read(|buf| -> Result<Option<Rid>> {
                let frag = page::read(buf, cur.slot)?;
                if frag.len() < FRAG_HDR {
                    return Err(Error::Corrupt(format!(
                        "fragment at page {} slot {} shorter than header",
                        cur.page, cur.slot
                    )));
                }
                let flags = frag[0];
                if first && flags & FLAG_FIRST == 0 {
                    return Err(Error::Corrupt(format!(
                        "rid page {} slot {} is not a record head",
                        cur.page, cur.slot
                    )));
                }
                if !first && flags & FLAG_FIRST != 0 {
                    return Err(Error::Corrupt(
                        "fragment chain re-entered a record head".into(),
                    ));
                }
                out.extend_from_slice(&frag[FRAG_HDR..]);
                if flags & FLAG_HAS_NEXT != 0 {
                    let page = u32::from_le_bytes(frag[1..5].try_into().unwrap());
                    let slot = u16::from_le_bytes(frag[5..7].try_into().unwrap());
                    Ok(Some(Rid { page, slot }))
                } else {
                    Ok(None)
                }
            })?;
            match next {
                Some(n) => {
                    cur = n;
                    first = false;
                }
                None => return Ok(out),
            }
        }
    }

    /// Iterate all records in insertion order.
    pub fn scan(self: &Arc<Self>) -> HeapScan {
        HeapScan {
            heap: Arc::clone(self),
            page: 1,
            slot: 0,
        }
    }

    /// Persist the record count into the meta page and write back every
    /// dirty page.
    pub fn flush(&self) -> Result<()> {
        {
            let g = self.buffer.fetch(self.fid, 0)?;
            let n = self.record_count();
            g.write(|buf| buf[12..20].copy_from_slice(&n.to_le_bytes()));
        }
        self.buffer.flush_file(self.fid)
    }
}

impl Drop for HeapFile {
    fn drop(&mut self) {
        self.buffer.unregister_file(self.fid);
    }
}

/// Iterator over a heap's records; see [`HeapFile::scan`].
pub struct HeapScan {
    heap: Arc<HeapFile>,
    page: PageNo,
    slot: u16,
}

impl Iterator for HeapScan {
    type Item = Result<(Rid, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.page >= self.heap.disk.page_count() {
                return None;
            }
            let g = match self.heap.buffer.fetch(self.heap.fid, self.page) {
                Ok(g) => g,
                Err(e) => {
                    self.page = u32::MAX; // stop after reporting
                    return Some(Err(e));
                }
            };
            let probe = g.read(|buf| {
                let n = page::slot_count(buf);
                if self.slot >= n {
                    return Ok(None);
                }
                let frag = page::read(buf, self.slot)?;
                if frag.len() < FRAG_HDR {
                    return Err(Error::Corrupt("fragment shorter than header".into()));
                }
                Ok(Some(frag[0] & FLAG_FIRST != 0))
            });
            drop(g);
            match probe {
                Err(e) => {
                    self.page = u32::MAX;
                    return Some(Err(e));
                }
                Ok(None) => {
                    self.page += 1;
                    self.slot = 0;
                }
                Ok(Some(is_first)) => {
                    let rid = Rid {
                        page: self.page,
                        slot: self.slot,
                    };
                    self.slot += 1;
                    if is_first {
                        return Some(self.heap.get(rid).map(|rec| (rid, rec)));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("probkb-heap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn small_records_roundtrip_in_order() {
        let mgr = BufferManager::new(16);
        let heap = HeapFile::create(mgr, &tmp("small.heap"), true).unwrap();
        let recs: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let rids: Vec<Rid> = recs.iter().map(|r| heap.append(r).unwrap()).collect();
        for (rid, rec) in rids.iter().zip(&recs) {
            assert_eq!(&heap.get(*rid).unwrap(), rec);
        }
        let scanned: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(scanned, recs);
        assert_eq!(heap.record_count(), 100);
    }

    #[test]
    fn large_records_fragment_and_roundtrip() {
        let mgr = BufferManager::new(16);
        let heap = HeapFile::create(mgr, &tmp("large.heap"), true).unwrap();
        // Records spanning 1–4 pages, with distinctive bytes.
        let recs: Vec<Vec<u8>> = (0..8usize)
            .map(|i| {
                (0..(3000 + i * 7000))
                    .map(|j| ((i * 31 + j) % 251) as u8)
                    .collect()
            })
            .collect();
        let rids: Vec<Rid> = recs.iter().map(|r| heap.append(r).unwrap()).collect();
        for (rid, rec) in rids.iter().zip(&recs) {
            assert_eq!(heap.get(*rid).unwrap(), *rec, "rid {rid:?}");
        }
        let scanned: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(scanned.len(), recs.len());
        assert_eq!(scanned, recs);
    }

    #[test]
    fn interleaves_survive_tiny_pool_eviction() {
        let mgr = BufferManager::new(8);
        let heap = HeapFile::create(mgr, &tmp("tinypool.heap"), true).unwrap();
        let recs: Vec<Vec<u8>> = (0..300usize)
            .map(|i| vec![(i % 256) as u8; 64 + (i % 900)])
            .collect();
        for r in &recs {
            heap.append(r).unwrap();
        }
        let scanned: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(scanned, recs);
        assert!(heap.buffer().stats().evictions > 0, "pool never evicted");
    }

    #[test]
    fn flush_and_reopen() {
        let path = tmp("reopen.heap");
        let recs: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 200]).collect();
        {
            let mgr = BufferManager::new(16);
            let heap = HeapFile::create(mgr, &path, false).unwrap();
            for r in &recs {
                heap.append(r).unwrap();
            }
            heap.flush().unwrap();
        }
        let mgr = BufferManager::new(16);
        let heap = HeapFile::open(mgr, &path).unwrap();
        assert_eq!(heap.record_count(), 40);
        let scanned: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(scanned, recs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_rid_rejected_not_served() {
        let mgr = BufferManager::new(16);
        let heap = HeapFile::create(mgr, &tmp("stale.heap"), true).unwrap();
        heap.append(b"only").unwrap();
        assert!(heap.get(Rid { page: 1, slot: 9 }).is_err());
        assert!(heap.get(Rid { page: 7, slot: 0 }).is_err());
        assert!(heap.get(Rid { page: 0, slot: 0 }).is_err());
    }

    #[test]
    fn empty_record_roundtrips() {
        let mgr = BufferManager::new(16);
        let heap = HeapFile::create(mgr, &tmp("empty.heap"), true).unwrap();
        let rid = heap.append(b"").unwrap();
        assert_eq!(heap.get(rid).unwrap(), Vec::<u8>::new());
        assert_eq!(heap.scan().count(), 1);
    }
}
