//! Page-granular file I/O with CRC sealing.
//!
//! Every on-disk page is exactly [`PAGE_SIZE`] bytes whose first 4
//! bytes are a little-endian CRC-32 over the remaining
//! `PAGE_SIZE - 4`. [`DiskManager::write_page`] seals the checksum;
//! [`DiskManager::read_page`] verifies it and reports a short read
//! (truncation) or mismatch (torn write) as [`Error::Corrupt`] — the
//! invariant the heap fault-injection suite leans on: a damaged page
//! is *detected*, never served.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use probkb_support::crc::crc32;

use crate::{Error, PageNo, Result, PAGE_SIZE};

/// Owns one page file: allocation, sealed writes, verified reads.
#[derive(Debug)]
pub struct DiskManager {
    file: File,
    path: PathBuf,
    pages: AtomicU32,
    ephemeral: AtomicBool,
}

impl DiskManager {
    /// Create a fresh (truncated) page file at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            file,
            path: path.to_path_buf(),
            pages: AtomicU32::new(0),
            ephemeral: AtomicBool::new(false),
        })
    }

    /// Open an existing page file. A trailing partial page is counted
    /// so that reading it surfaces the truncation as corruption rather
    /// than silently hiding the tail.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let pages = len.div_ceil(PAGE_SIZE as u64);
        let pages = u32::try_from(pages)
            .map_err(|_| Error::Corrupt(format!("file of {len} bytes exceeds page space")))?;
        Ok(DiskManager {
            file,
            path: path.to_path_buf(),
            pages: AtomicU32::new(pages),
            ephemeral: AtomicBool::new(false),
        })
    }

    /// Mark the file for deletion when this manager drops (spill files).
    pub fn set_ephemeral(&self, yes: bool) {
        self.ephemeral.store(yes, Ordering::Relaxed);
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pages.load(Ordering::Acquire)
    }

    /// Reserve the next page number. The page has no disk bytes until
    /// its first write-back.
    pub fn allocate(&self) -> PageNo {
        self.pages.fetch_add(1, Ordering::AcqRel)
    }

    /// Read page `no` into `buf`, verifying length and CRC.
    pub fn read_page(&self, no: PageNo, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if no >= self.page_count() {
            return Err(Error::Corrupt(format!(
                "read of unallocated page {no} (file has {})",
                self.page_count()
            )));
        }
        let off = no as u64 * PAGE_SIZE as u64;
        self.file.read_exact_at(buf, off).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                Error::Corrupt(format!("page {no} truncated in {}", self.path.display()))
            } else {
                Error::Io(e)
            }
        })?;
        let stored = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let actual = crc32(&buf[4..]);
        if stored != actual {
            return Err(Error::Corrupt(format!(
                "page {no} CRC mismatch in {} (stored {stored:#010x}, computed {actual:#010x})",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Seal the CRC into `buf` and write it as page `no`.
    pub fn write_page(&self, no: PageNo, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let crc = crc32(&buf[4..]);
        buf[..4].copy_from_slice(&crc.to_le_bytes());
        let off = no as u64 * PAGE_SIZE as u64;
        self.file.write_all_at(buf, off)?;
        Ok(())
    }

    /// Flush file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if self.ephemeral.load(Ordering::Relaxed) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("probkb-pager-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmp("disk_roundtrip.pg");
        let dm = DiskManager::create(&path).unwrap();
        let p = dm.allocate();
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[100] = 42;
        dm.write_page(p, &mut buf).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        dm.read_page(p, &mut back).unwrap();
        assert_eq!(back[100], 42);
        assert_eq!(&back[..4], &buf[..4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let path = tmp("disk_corrupt.pg");
        let dm = DiskManager::create(&path).unwrap();
        let p = dm.allocate();
        let mut buf = vec![7u8; PAGE_SIZE];
        dm.write_page(p, &mut buf).unwrap();
        drop(dm);
        // Flip one payload byte on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[500] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let dm = DiskManager::open(&path).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        let err = dm.read_page(p, &mut back).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let path = tmp("disk_trunc.pg");
        let dm = DiskManager::create(&path).unwrap();
        let p = dm.allocate();
        let mut buf = vec![9u8; PAGE_SIZE];
        dm.write_page(p, &mut buf).unwrap();
        drop(dm);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..PAGE_SIZE / 2]).unwrap();
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1); // partial page still counted
        let mut back = vec![0u8; PAGE_SIZE];
        let err = dm.read_page(p, &mut back).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ephemeral_deletes_on_drop() {
        let path = tmp("disk_ephemeral.pg");
        let dm = DiskManager::create(&path).unwrap();
        dm.set_ephemeral(true);
        assert!(path.exists());
        drop(dm);
        assert!(!path.exists());
    }

    #[test]
    fn unallocated_read_rejected() {
        let path = tmp("disk_unalloc.pg");
        let dm = DiskManager::create(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(dm.read_page(0, &mut buf).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
