//! A disk-resident B-tree over memcomparable byte keys.
//!
//! Values are `u64` (row positions upstairs). Keys are arbitrary byte
//! strings compared lexicographically — callers encode typed keys into
//! order-preserving bytes (see `relational`'s `keyenc`). Keys are
//! unique; inserting an existing key overwrites its value (callers that
//! need duplicates append a disambiguating suffix).
//!
//! Node layout (one page per node, CRC handled by [`crate::disk`]):
//!
//! ```text
//! [crc:4][kind:1][pad:1][nkeys:2][free_off:2][next_leaf:4][leftmost:4][pad:2]
//! entries grow up from byte 20; slot dir of u16 entry offsets grows
//! down from PAGE_SIZE, kept sorted by key (slot i at dir_start + 2i).
//! leaf entry:     [klen:2][key][val:8]
//! internal entry: [klen:2][key][child:4]   (key = min key of child)
//! ```
//!
//! Splits move the upper half right and promote a separator; leaves are
//! sibling-chained (`next_leaf`) for range scans. Concurrency is a
//! single tree-wide mutex — coarse, but index probes upstairs batch
//! their work per query, and correctness (not parallel index writes)
//! is what the differential suite pins.

use std::path::Path;
use std::sync::Arc;

use probkb_support::sync::Mutex;

use crate::buffer::{BufferManager, PageGuard};
use crate::disk::DiskManager;
use crate::{Error, FileId, PageNo, Result, PAGE_SIZE};

const HDR: usize = 20;
const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;
const LEAF_PAYLOAD: usize = 8;
const INTERNAL_PAYLOAD: usize = 4;
/// Largest key we accept; keeps every node able to hold several
/// entries so splits always make progress.
pub const MAX_KEY_LEN: usize = 1024;

// ---- node-level helpers (pure byte-slice arithmetic) ----

fn node_init(buf: &mut [u8], kind: u8) {
    buf[..HDR].fill(0);
    buf[4] = kind;
    set_nkeys(buf, 0);
    set_free_off(buf, HDR as u16);
}

fn kind(buf: &[u8]) -> u8 {
    buf[4]
}

fn nkeys(buf: &[u8]) -> usize {
    u16::from_le_bytes([buf[6], buf[7]]) as usize
}

fn set_nkeys(buf: &mut [u8], n: u16) {
    buf[6..8].copy_from_slice(&n.to_le_bytes());
}

fn free_off(buf: &[u8]) -> usize {
    u16::from_le_bytes([buf[8], buf[9]]) as usize
}

fn set_free_off(buf: &mut [u8], off: u16) {
    buf[8..10].copy_from_slice(&off.to_le_bytes());
}

fn next_leaf(buf: &[u8]) -> PageNo {
    u32::from_le_bytes(buf[10..14].try_into().unwrap())
}

fn set_next_leaf(buf: &mut [u8], p: PageNo) {
    buf[10..14].copy_from_slice(&p.to_le_bytes());
}

fn leftmost(buf: &[u8]) -> PageNo {
    u32::from_le_bytes(buf[14..18].try_into().unwrap())
}

fn set_leftmost(buf: &mut [u8], p: PageNo) {
    buf[14..18].copy_from_slice(&p.to_le_bytes());
}

fn dir_start(buf: &[u8]) -> usize {
    PAGE_SIZE - 2 * nkeys(buf)
}

fn entry_off(buf: &[u8], i: usize) -> usize {
    let p = dir_start(buf) + 2 * i;
    u16::from_le_bytes([buf[p], buf[p + 1]]) as usize
}

fn entry_key(buf: &[u8], i: usize) -> &[u8] {
    let off = entry_off(buf, i);
    let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
    &buf[off + 2..off + 2 + klen]
}

fn entry_payload(buf: &[u8], i: usize) -> &[u8] {
    let off = entry_off(buf, i);
    let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
    let plen = if kind(buf) == KIND_LEAF {
        LEAF_PAYLOAD
    } else {
        INTERNAL_PAYLOAD
    };
    &buf[off + 2 + klen..off + 2 + klen + plen]
}

fn leaf_val(buf: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(entry_payload(buf, i).try_into().unwrap())
}

fn set_leaf_val(buf: &mut [u8], i: usize, val: u64) {
    let off = entry_off(buf, i);
    let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
    buf[off + 2 + klen..off + 2 + klen + 8].copy_from_slice(&val.to_le_bytes());
}

fn child(buf: &[u8], i: usize) -> PageNo {
    u32::from_le_bytes(entry_payload(buf, i).try_into().unwrap())
}

fn free_space(buf: &[u8]) -> usize {
    dir_start(buf).saturating_sub(free_off(buf))
}

/// Binary search the slot directory. `Ok(i)` = exact match at slot i,
/// `Err(i)` = insertion position.
fn search(buf: &[u8], key: &[u8]) -> std::result::Result<usize, usize> {
    let n = nkeys(buf);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match entry_key(buf, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Insert `(key, payload)` as the entry at sorted position `pos`.
/// Returns false when the node lacks room (caller splits).
fn insert_entry(buf: &mut [u8], pos: usize, key: &[u8], payload: &[u8]) -> bool {
    let need = 2 + key.len() + payload.len() + 2; // entry + dir slot
    if free_space(buf) < need {
        return false;
    }
    let off = free_off(buf);
    buf[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    buf[off + 2..off + 2 + key.len()].copy_from_slice(key);
    buf[off + 2 + key.len()..off + 2 + key.len() + payload.len()].copy_from_slice(payload);
    // Grow the directory down, shifting slots [0, pos) left by one cell.
    let n = nkeys(buf);
    let ds = dir_start(buf);
    let new_ds = ds - 2;
    buf.copy_within(ds..ds + 2 * pos, new_ds);
    let p = new_ds + 2 * pos;
    buf[p..p + 2].copy_from_slice(&(off as u16).to_le_bytes());
    set_nkeys(buf, (n + 1) as u16);
    set_free_off(buf, (off + 2 + key.len() + payload.len()) as u16);
    true
}

/// Read every entry out of a node (for splits/rebuilds).
fn gather(buf: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..nkeys(buf))
        .map(|i| (entry_key(buf, i).to_vec(), entry_payload(buf, i).to_vec()))
        .collect()
}

/// Rebuild a node from sorted entries.
fn rebuild(buf: &mut [u8], node_kind: u8, entries: &[(Vec<u8>, Vec<u8>)]) {
    node_init(buf, node_kind);
    for (i, (k, p)) in entries.iter().enumerate() {
        let ok = insert_entry(buf, i, k, p);
        debug_assert!(ok, "rebuild overflow: node cannot hold its half");
    }
}

enum Ins {
    Done,
    Split { sep: Vec<u8>, right: PageNo },
}

struct State {
    root: PageNo,
    entries: u64,
}

/// A disk-resident B-tree index; see the module docs for layout.
pub struct BTree {
    buffer: Arc<BufferManager>,
    disk: Arc<DiskManager>,
    fid: FileId,
    state: Mutex<State>,
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree")
            .field("path", &self.disk.path())
            .field("entries", &self.len())
            .finish()
    }
}

impl BTree {
    /// Create a fresh tree backed by a new page file at `path`.
    /// `ephemeral` files are deleted when the tree drops.
    pub fn create(buffer: Arc<BufferManager>, path: &Path, ephemeral: bool) -> Result<Self> {
        let disk = Arc::new(DiskManager::create(path)?);
        disk.set_ephemeral(ephemeral);
        let fid = buffer.register_file(Arc::clone(&disk));
        let (root, g) = buffer.create_page(fid)?;
        g.write(|buf| node_init(buf, KIND_LEAF));
        drop(g);
        Ok(BTree {
            buffer,
            disk,
            fid,
            state: Mutex::new(State { root, entries: 0 }),
        })
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.state.lock().entries
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages backing the tree.
    pub fn page_count(&self) -> u32 {
        self.disk.page_count()
    }

    fn pin(&self, pno: PageNo) -> Result<PageGuard> {
        self.buffer.fetch(self.fid, pno)
    }

    /// Bulk-load `entries` — strictly ascending unique keys — into an
    /// empty tree, bottom-up: leaves are packed left-to-right and
    /// sibling-chained, then internal levels are built over them until
    /// one root remains. Produces a tree `get`/`for_each_range` cannot
    /// distinguish from repeated [`BTree::insert`], but every page is
    /// written exactly once: no per-key descent, no splits — roughly an
    /// order of magnitude faster for index builds.
    pub fn load_sorted(&self, entries: &[(Vec<u8>, u64)]) -> Result<()> {
        let mut st = self.state.lock();
        if st.entries != 0 {
            return Err(Error::Corrupt(
                "load_sorted requires an empty tree".into(),
            ));
        }
        if entries.is_empty() {
            return Ok(());
        }
        for pair in entries.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(Error::Corrupt(
                    "load_sorted requires strictly ascending keys".into(),
                ));
            }
        }

        // Leaf level: pack entries until a page refuses one.
        let mut level: Vec<(Vec<u8>, PageNo)> = Vec::new();
        let mut prev_leaf: Option<PageNo> = None;
        let mut i = 0usize;
        while i < entries.len() {
            let (pno, g) = self.buffer.create_page(self.fid)?;
            let start = i;
            let taken = g.write(|buf| {
                node_init(buf, KIND_LEAF);
                let mut slot = 0usize;
                while start + slot < entries.len() {
                    let (key, val) = &entries[start + slot];
                    if key.len() > MAX_KEY_LEN
                        || !insert_entry(buf, slot, key, &val.to_le_bytes())
                    {
                        break;
                    }
                    slot += 1;
                }
                slot
            });
            drop(g);
            if taken == 0 {
                return Err(Error::RecordTooLarge(entries[start].0.len()));
            }
            if let Some(prev) = prev_leaf {
                self.pin(prev)?.write(|buf| set_next_leaf(buf, pno));
            }
            prev_leaf = Some(pno);
            level.push((entries[start].0.clone(), pno));
            i = start + taken;
        }

        // Internal levels: each node takes a leftmost child plus as
        // many (min key, child) separators as fit.
        while level.len() > 1 {
            let mut next: Vec<(Vec<u8>, PageNo)> = Vec::new();
            let mut j = 0usize;
            while j < level.len() {
                let (pno, g) = self.buffer.create_page(self.fid)?;
                let start = j;
                let taken = g.write(|buf| {
                    node_init(buf, KIND_INTERNAL);
                    set_leftmost(buf, level[start].1);
                    let mut slot = 0usize;
                    while start + 1 + slot < level.len() {
                        let (key, chd) = &level[start + 1 + slot];
                        if !insert_entry(buf, slot, key, &chd.to_le_bytes()) {
                            break;
                        }
                        slot += 1;
                    }
                    slot
                });
                drop(g);
                next.push((level[start].0.clone(), pno));
                j = start + 1 + taken;
            }
            level = next;
        }

        st.root = level[0].1;
        st.entries = entries.len() as u64;
        Ok(())
    }

    /// Insert `key -> val`, overwriting any existing binding.
    pub fn insert(&self, key: &[u8], val: u64) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(Error::RecordTooLarge(key.len()));
        }
        let mut st = self.state.lock();
        let root = st.root;
        let (res, overwrote) = self.insert_rec(root, key, val)?;
        if let Ins::Split { sep, right } = res {
            let (new_root, g) = self.buffer.create_page(self.fid)?;
            g.write(|buf| {
                node_init(buf, KIND_INTERNAL);
                set_leftmost(buf, root);
                let ok = insert_entry(buf, 0, &sep, &right.to_le_bytes());
                debug_assert!(ok);
            });
            st.root = new_root;
        }
        if !overwrote {
            st.entries += 1;
        }
        Ok(())
    }

    /// Returns `(result, overwrote_existing)`.
    fn insert_rec(&self, pno: PageNo, key: &[u8], val: u64) -> Result<(Ins, bool)> {
        let g = self.pin(pno)?;
        let node_kind = g.read(|buf| kind(buf));
        if node_kind == KIND_LEAF {
            let done = g.write(|buf| match search(buf, key) {
                Ok(i) => {
                    set_leaf_val(buf, i, val);
                    Some(true)
                }
                Err(pos) => {
                    if insert_entry(buf, pos, key, &val.to_le_bytes()) {
                        Some(false)
                    } else {
                        None
                    }
                }
            });
            if let Some(overwrote) = done {
                return Ok((Ins::Done, overwrote));
            }
            // Split the leaf: gather + new entry, halve, rebuild.
            let mut entries = g.read(gather);
            let old_next = g.read(|buf| next_leaf(buf));
            let pos = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Ok(_) => unreachable!("exact match handled above"),
                Err(p) => p,
            };
            entries.insert(pos, (key.to_vec(), val.to_le_bytes().to_vec()));
            let mid = entries.len() / 2;
            let right_entries = entries.split_off(mid);
            let sep = right_entries[0].0.clone();
            let (right_pno, rg) = self.buffer.create_page(self.fid)?;
            rg.write(|buf| {
                rebuild(buf, KIND_LEAF, &right_entries);
                set_next_leaf(buf, old_next);
            });
            drop(rg);
            g.write(|buf| {
                rebuild(buf, KIND_LEAF, &entries);
                set_next_leaf(buf, right_pno);
            });
            return Ok((
                Ins::Split {
                    sep,
                    right: right_pno,
                },
                false,
            ));
        }
        // Internal node: descend, then absorb any child split.
        let (child_pno, _slot) = g.read(|buf| self.route(buf, key));
        drop(g);
        let (res, overwrote) = self.insert_rec(child_pno, key, val)?;
        let Ins::Split { sep, right } = res else {
            return Ok((Ins::Done, overwrote));
        };
        let g = self.pin(pno)?;
        let inserted = g.write(|buf| {
            let pos = match search(buf, &sep) {
                Ok(i) => i,
                Err(i) => i,
            };
            insert_entry(buf, pos, &sep, &right.to_le_bytes())
        });
        if inserted {
            return Ok((Ins::Done, overwrote));
        }
        // Split this internal node; the median separator moves up.
        let mut entries = g.read(gather);
        let old_leftmost = g.read(|buf| leftmost(buf));
        let pos = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(sep.as_slice())) {
            Ok(p) | Err(p) => p,
        };
        entries.insert(pos, (sep, right.to_le_bytes().to_vec()));
        let mid = entries.len() / 2;
        let right_entries = entries.split_off(mid + 1);
        let (sep_up, mid_child) = entries.pop().expect("mid entry exists");
        let mid_child = u32::from_le_bytes(mid_child.as_slice().try_into().unwrap());
        let (right_pno, rg) = self.buffer.create_page(self.fid)?;
        rg.write(|buf| {
            rebuild(buf, KIND_INTERNAL, &right_entries);
            set_leftmost(buf, mid_child);
        });
        drop(rg);
        g.write(|buf| {
            rebuild(buf, KIND_INTERNAL, &entries);
            set_leftmost(buf, old_leftmost);
        });
        Ok((
            Ins::Split {
                sep: sep_up,
                right: right_pno,
            },
            overwrote,
        ))
    }

    /// The child covering `key` in an internal node, plus its slot
    /// index (`usize::MAX` for the leftmost pointer).
    fn route(&self, buf: &[u8], key: &[u8]) -> (PageNo, usize) {
        let idx = match search(buf, key) {
            Ok(i) => i + 1,  // equal keys live in the right subtree
            Err(i) => i,     // i entries are < key
        };
        if idx == 0 {
            (leftmost(buf), usize::MAX)
        } else {
            (child(buf, idx - 1), idx - 1)
        }
    }

    /// Point lookup. Holds the tree mutex for the descent, so probes
    /// serialize with inserts rather than racing a split.
    pub fn get(&self, key: &[u8]) -> Result<Option<u64>> {
        let st = self.state.lock();
        let mut pno = st.root;
        loop {
            let g = self.pin(pno)?;
            enum Step {
                Descend(PageNo),
                Found(u64),
                Absent,
            }
            let step = g.read(|buf| {
                if kind(buf) == KIND_LEAF {
                    match search(buf, key) {
                        Ok(i) => Step::Found(leaf_val(buf, i)),
                        Err(_) => Step::Absent,
                    }
                } else {
                    Step::Descend(self.route(buf, key).0)
                }
            });
            match step {
                Step::Descend(p) => pno = p,
                Step::Found(v) => return Ok(Some(v)),
                Step::Absent => return Ok(None),
            }
        }
    }

    /// Visit entries with `lo <= key < hi` in key order (`hi = None`
    /// means unbounded). `f` returns `false` to stop early. The tree
    /// mutex is held for the whole walk (no splits mid-scan); `f` must
    /// not call back into this tree.
    pub fn for_each_range(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], u64) -> bool,
    ) -> Result<()> {
        let st = self.state.lock();
        let mut pno = st.root;
        // Descend to the leaf that would hold `lo`.
        loop {
            let g = self.pin(pno)?;
            let next = g.read(|buf| {
                if kind(buf) == KIND_LEAF {
                    None
                } else {
                    Some(self.route(buf, lo).0)
                }
            });
            match next {
                Some(p) => pno = p,
                None => break,
            }
        }
        // Walk the leaf chain.
        loop {
            let g = self.pin(pno)?;
            let (stop, next) = g.read(|buf| {
                let start = match search(buf, lo) {
                    Ok(i) => i,
                    Err(i) => i,
                };
                for i in start..nkeys(buf) {
                    let k = entry_key(buf, i);
                    if let Some(hi) = hi {
                        if k >= hi {
                            return (true, 0);
                        }
                    }
                    if !f(k, leaf_val(buf, i)) {
                        return (true, 0);
                    }
                }
                (false, next_leaf(buf))
            });
            if stop || next == 0 {
                return Ok(());
            }
            pno = next;
        }
    }

    /// Collect `lo <= key < hi` into a vector (tests/small probes).
    pub fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<Vec<(Vec<u8>, u64)>> {
        let mut out = Vec::new();
        self.for_each_range(lo, hi, &mut |k, v| {
            out.push((k.to_vec(), v));
            true
        })?;
        Ok(out)
    }
}

impl Drop for BTree {
    fn drop(&mut self) {
        self.buffer.unregister_file(self.fid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("probkb-btree-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tree(name: &str, cap: usize) -> BTree {
        BTree::create(BufferManager::new(cap), &tmp(name), true).unwrap()
    }

    #[test]
    fn insert_get_small() {
        let t = tree("small.bt", 16);
        for i in 0..100u64 {
            t.insert(format!("key{i:04}").as_bytes(), i).unwrap();
        }
        assert_eq!(t.len(), 100);
        for i in 0..100u64 {
            assert_eq!(t.get(format!("key{i:04}").as_bytes()).unwrap(), Some(i));
        }
        assert_eq!(t.get(b"key9999").unwrap(), None);
    }

    #[test]
    fn overwrite_keeps_len() {
        let t = tree("overwrite.bt", 16);
        t.insert(b"k", 1).unwrap();
        t.insert(b"k", 2).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k").unwrap(), Some(2));
    }

    #[test]
    fn splits_deep_and_stays_sorted() {
        let t = tree("deep.bt", 64);
        // Enough entries for multiple internal levels; insert shuffled.
        let n = 20_000u64;
        let mut order: Vec<u64> = (0..n).collect();
        // Deterministic shuffle (LCG).
        let mut s = 12345u64;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.page_count() > 10, "tree never split");
        // Full scan is sorted and complete.
        let all = t.range(&[], None).unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k.as_slice(), &(i as u64).to_be_bytes());
            assert_eq!(*v, i as u64);
        }
        // Point lookups.
        for &i in order.iter().take(500) {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap(), Some(i));
        }
    }

    #[test]
    fn range_bounds_are_half_open() {
        let t = tree("range.bt", 16);
        for i in 0..50u64 {
            t.insert(&(i * 2).to_be_bytes(), i).unwrap();
        }
        let lo = 10u64.to_be_bytes();
        let hi = 20u64.to_be_bytes();
        let got = t.range(&lo, Some(&hi)).unwrap();
        let keys: Vec<u64> = got
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18]);
    }

    #[test]
    fn survives_tiny_pool() {
        let t = tree("tinypool.bt", 8);
        for i in 0..5000u64 {
            t.insert(&(i ^ 0x5a5a).to_be_bytes(), i).unwrap();
        }
        for i in (0..5000u64).step_by(17) {
            assert_eq!(t.get(&(i ^ 0x5a5a).to_be_bytes()).unwrap(), Some(i));
        }
    }

    #[test]
    fn oversized_key_rejected() {
        let t = tree("bigkey.bt", 16);
        let k = vec![0u8; MAX_KEY_LEN + 1];
        assert!(t.insert(&k, 1).is_err());
    }

    #[test]
    fn load_sorted_matches_insert_built_tree() {
        // Big enough for several internal levels; small pool so the
        // bulk load also exercises eviction.
        let n = 20_000u64;
        let entries: Vec<(Vec<u8>, u64)> =
            (0..n).map(|i| ((i * 3).to_be_bytes().to_vec(), i)).collect();

        let bulk = tree("bulk.bt", 32);
        bulk.load_sorted(&entries).unwrap();
        let slow = tree("bulk-oracle.bt", 32);
        for (k, v) in &entries {
            slow.insert(k, *v).unwrap();
        }

        assert_eq!(bulk.len(), n);
        assert_eq!(bulk.range(&[], None).unwrap(), slow.range(&[], None).unwrap());
        for i in (0..n).step_by(23) {
            let key = (i * 3).to_be_bytes();
            assert_eq!(bulk.get(&key).unwrap(), Some(i));
            assert_eq!(bulk.get(&(i * 3 + 1).to_be_bytes()).unwrap(), None);
        }
        // Bounded range scans agree too (crosses leaf boundaries).
        let lo = 999u64.to_be_bytes();
        let hi = 2001u64.to_be_bytes();
        assert_eq!(
            bulk.range(&lo, Some(&hi)).unwrap(),
            slow.range(&lo, Some(&hi)).unwrap()
        );

        // The loaded tree keeps working as a normal tree: inserts land
        // in the right leaves, including ones that force splits.
        bulk.insert(&(1u64).to_be_bytes(), 777).unwrap();
        assert_eq!(bulk.get(&(1u64).to_be_bytes()).unwrap(), Some(777));
        assert_eq!(bulk.len(), n + 1);

        // Preconditions are enforced.
        assert!(bulk.load_sorted(&entries).is_err(), "non-empty tree");
        let fresh = tree("bulk-unsorted.bt", 16);
        let bad = vec![(vec![2u8], 0u64), (vec![1u8], 1u64)];
        assert!(fresh.load_sorted(&bad).is_err(), "unsorted input");
        fresh.load_sorted(&[]).unwrap(); // empty load is a no-op
        assert!(fresh.is_empty());
    }
}
