//! # probkb-pager
//!
//! The out-of-core storage subsystem under the relational engine: a
//! paged heap file with fixed-size slotted pages, a buffer manager with
//! clock (second-chance) eviction and pin/unpin accounting, and a
//! disk-resident B-tree for secondary indexes. Std-only, like the rest
//! of the workspace (`crates/support` discipline).
//!
//! Layering (see DESIGN.md, "Out-of-core storage"):
//!
//! * [`disk`] — [`disk::DiskManager`]: page-granular file I/O. Every
//!   page carries a leading CRC-32 over its payload (the same IEEE
//!   polynomial as `storage`'s snapshot/WAL framing, via
//!   `probkb_support::crc`), sealed on write and verified on read, so a
//!   torn or truncated page write is *detected*, never served.
//! * [`buffer`] — [`buffer::BufferManager`]: a fixed pool of
//!   [`PAGE_SIZE`] frames shared by every file. Pages are pinned via
//!   RAII [`buffer::PageGuard`]s; unpinned frames are reclaimed by a
//!   clock sweep ([`clock::ClockReplacer`]); dirty victims are written
//!   back on eviction. Capacity comes from `PROBKB_BUFFER_PAGES`
//!   (default 1024 pages = 8 MiB).
//! * [`heap`] — [`heap::HeapFile`]: an append-only record store on
//!   slotted pages ([`page`]), with records larger than a page split
//!   into forward-chained fragments. Scan order == insertion order,
//!   which is what keeps spilled tables byte-identical to in-memory
//!   ones upstairs.
//! * [`btree`] — [`btree::BTree`]: a disk-resident B-tree over
//!   memcomparable byte keys with point lookups and ordered range
//!   scans (leaf pages are sibling-chained).

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod clock;
pub mod disk;
pub mod heap;
pub mod page;

use std::fmt;

/// Fixed page size, in bytes, for every file managed by this crate.
pub const PAGE_SIZE: usize = 8192;

/// A page number within one file (0-based).
pub type PageNo = u32;

/// A buffer-manager handle for one registered file.
pub type FileId = u32;

/// Errors raised by the pager.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// On-disk bytes failed validation (bad CRC, short page, bad magic,
    /// or a structurally impossible pointer). The payload says what and
    /// where.
    Corrupt(String),
    /// Every frame in the buffer pool is pinned; nothing can be evicted.
    PoolExhausted,
    /// A record exceeds what the heap file can store.
    RecordTooLarge(usize),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "pager io error: {e}"),
            Error::Corrupt(detail) => write!(f, "pager corruption: {detail}"),
            Error::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            Error::RecordTooLarge(n) => write!(f, "record of {n} bytes too large for heap"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

pub use buffer::{BufferManager, BufferStats, PageGuard};
pub use btree::BTree;
pub use disk::DiskManager;
pub use heap::{HeapFile, Rid};
