//! Clock (second-chance) replacement over buffer frames.
//!
//! The classic approximation of LRU: frames sit on a circular list; a
//! hand sweeps, clearing reference bits, and evicts the first unpinned
//! frame whose bit is already clear. A frame gets its bit set on every
//! pin, so recently-touched pages survive one full sweep.

/// Per-frame state the replacer consults. Owned by the buffer manager.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameMeta {
    /// Pin count; only `pins == 0` frames are evictable.
    pub pins: u32,
    /// Second-chance bit, set on pin, cleared by the sweeping hand.
    pub referenced: bool,
    /// True when the frame holds a page at all.
    pub occupied: bool,
}

/// The sweeping hand.
#[derive(Debug, Default)]
pub struct ClockReplacer {
    hand: usize,
}

impl ClockReplacer {
    /// A replacer for a pool of any size.
    pub fn new() -> Self {
        ClockReplacer::default()
    }

    /// Pick a victim frame index, clearing reference bits along the
    /// way. Prefers unoccupied frames. Returns `None` when every frame
    /// is pinned (two full sweeps found nothing).
    pub fn victim(&mut self, frames: &mut [FrameMeta]) -> Option<usize> {
        let n = frames.len();
        if n == 0 {
            return None;
        }
        // Free frames first — no sweep state to disturb.
        if let Some(i) = frames.iter().position(|f| !f.occupied) {
            return Some(i);
        }
        for _ in 0..2 * n {
            let i = self.hand;
            self.hand = (self.hand + 1) % n;
            let f = &mut frames[i];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(i);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<FrameMeta> {
        vec![
            FrameMeta {
                pins: 0,
                referenced: false,
                occupied: true,
            };
            n
        ]
    }

    #[test]
    fn prefers_free_frames() {
        let mut frames = pool(3);
        frames[1].occupied = false;
        let mut c = ClockReplacer::new();
        assert_eq!(c.victim(&mut frames), Some(1));
    }

    #[test]
    fn second_chance_spares_referenced() {
        let mut frames = pool(3);
        frames[0].referenced = true;
        let mut c = ClockReplacer::new();
        // Hand starts at 0: clears 0's bit, evicts 1.
        assert_eq!(c.victim(&mut frames), Some(1));
        // Next sweep: 2 is unreferenced and next in line.
        assert_eq!(c.victim(&mut frames), Some(2));
        // Then 0, whose bit was cleared on the first sweep.
        assert_eq!(c.victim(&mut frames), Some(0));
    }

    #[test]
    fn all_pinned_yields_none() {
        let mut frames = pool(2);
        frames[0].pins = 1;
        frames[1].pins = 2;
        let mut c = ClockReplacer::new();
        assert_eq!(c.victim(&mut frames), None);
    }

    #[test]
    fn pinned_skipped_even_if_unreferenced() {
        let mut frames = pool(2);
        frames[0].pins = 1;
        let mut c = ClockReplacer::new();
        assert_eq!(c.victim(&mut frames), Some(1));
    }
}
