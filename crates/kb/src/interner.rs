//! String interners: the dictionary tables `DX` of §4.2 that map surface
//! forms to integer ids so joins never compare strings.

use std::collections::HashMap;
use std::sync::Arc;


/// A bidirectional string ↔ dense-id dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern a string, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let arc: Arc<str> = Arc::from(name);
        self.names.push(arc.clone());
        self.ids.insert(arc, id);
        id
    }

    /// Look up an existing string's id.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Resolve an id back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_ref())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut d = Dictionary::new();
        let id = d.intern("kale");
        assert_eq!(d.resolve(id), Some("kale"));
        assert_eq!(d.get("kale"), Some(id));
        assert_eq!(d.resolve(999), None);
        assert_eq!(d.get("nope"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(d.intern(name), i as u32);
        }
        let collected: Vec<(u32, String)> =
            d.iter().map(|(i, s)| (i, s.to_string())).collect();
        assert_eq!(
            collected,
            vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]
        );
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
