//! Newtype identifiers for knowledge base elements.
//!
//! Everything in the relational model is dictionary-encoded (the paper's
//! `DX` tables, §4.2): strings are interned once and all joins compare
//! integers. The newtypes keep entity/class/relation id spaces from being
//! mixed up at compile time.

use std::fmt;


macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw integer id.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The id as an `i64` for relational storage.
            pub fn as_i64(self) -> i64 {
                self.0 as i64
            }

            /// Rebuild from an `i64` read out of a relational table.
            pub fn from_i64(v: i64) -> Self {
                $name(u32::try_from(v).expect("id out of u32 range"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// An entity id (`e ∈ E`).
    EntityId,
    "e"
);
id_type!(
    /// A class id (`C ∈ C`).
    ClassId,
    "c"
);
id_type!(
    /// A relation id (`R ∈ R`). Identifies a relation *name*; its typed
    /// signatures live in the relation signature set.
    RelationId,
    "r"
);
id_type!(
    /// A rule id into the MLN rule list `L`.
    RuleId,
    "l"
);

/// A fact id (`I` column of `TΠ`). Facts can outnumber `u32` during
/// unconstrained grounding blow-ups, so this one is 64-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub u64);

impl FactId {
    /// The raw integer id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The id as an `i64` for relational storage.
    pub fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Rebuild from an `i64` read out of a relational table.
    pub fn from_i64(v: i64) -> Self {
        FactId(u64::try_from(v).expect("fact id negative"))
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_i64() {
        let e = EntityId(42);
        assert_eq!(EntityId::from_i64(e.as_i64()), e);
        let f = FactId(1 << 40);
        assert_eq!(FactId::from_i64(f.as_i64()), f);
    }

    #[test]
    fn display_prefixes_distinguish_spaces() {
        assert_eq!(EntityId(1).to_string(), "e1");
        assert_eq!(ClassId(1).to_string(), "c1");
        assert_eq!(RelationId(1).to_string(), "r1");
        assert_eq!(RuleId(1).to_string(), "l1");
        assert_eq!(FactId(1).to_string(), "f1");
    }

    #[test]
    #[should_panic(expected = "id out of u32 range")]
    fn out_of_range_panics() {
        let _ = EntityId::from_i64(i64::MAX);
    }
}
