//! Serialization: write a KB back out in the text format [`crate::parser`]
//! reads, and JSON snapshots via serde. `parse(to_text(kb))` reconstructs
//! an equivalent KB (same statistics, same facts/rules/constraints up to
//! id renumbering), which the tests verify.

use std::fmt::Write as _;

use crate::kb::ProbKb;
use crate::model::{Functionality, Var};

/// Render a KB in the line-oriented text format.
pub fn to_text(kb: &ProbKb) -> String {
    let mut out = String::new();
    let entity = |id: crate::ids::EntityId| kb.entities.resolve(id.raw()).unwrap_or("?");
    let class = |id: crate::ids::ClassId| kb.classes.resolve(id.raw()).unwrap_or("?");
    let relation = |id: crate::ids::RelationId| kb.relations.resolve(id.raw()).unwrap_or("?");

    out.push_str("# facts\n");
    for fact in &kb.facts {
        let w = fact.weight.unwrap_or(0.0);
        let _ = writeln!(
            out,
            "fact {w} {}({}:{}, {}:{})",
            relation(fact.rel),
            entity(fact.x),
            class(fact.c1),
            entity(fact.y),
            class(fact.c2),
        );
    }

    out.push_str("\n# rules\n");
    for rule in &kb.rules {
        let var = |v: Var, annotated: &mut [bool; 3]| -> String {
            let (slot, cls) = match v {
                Var::X => (0, rule.cx),
                Var::Y => (1, rule.cy),
                Var::Z => (2, rule.cz.expect("z used implies z class")),
            };
            if annotated[slot] {
                v.to_string()
            } else {
                annotated[slot] = true;
                format!("{v}:{}", class(cls))
            }
        };
        let mut annotated = [false; 3];
        let head = format!(
            "{}({}, {})",
            relation(rule.head.rel),
            var(rule.head.a, &mut annotated),
            var(rule.head.b, &mut annotated)
        );
        let body: Vec<String> = rule
            .body
            .iter()
            .map(|atom| {
                format!(
                    "{}({}, {})",
                    relation(atom.rel),
                    var(atom.a, &mut annotated),
                    var(atom.b, &mut annotated)
                )
            })
            .collect();
        let _ = writeln!(out, "rule {} {} :- {}", rule.weight, head, body.join(", "));
    }

    out.push_str("\n# constraints\n");
    for fc in &kb.constraints {
        let alpha = match fc.functionality {
            Functionality::TypeI => 1,
            Functionality::TypeII => 2,
        };
        match fc.classes {
            Some((c1, c2)) => {
                let _ = writeln!(
                    out,
                    "functional {} {alpha} {} {} {}",
                    relation(fc.rel),
                    fc.degree,
                    class(c1),
                    class(c2)
                );
            }
            None => {
                let _ = writeln!(out, "functional {} {alpha} {}", relation(fc.rel), fc.degree);
            }
        }
    }

    out.push_str("\n# hierarchy\n");
    for (sub, sup) in &kb.subclass_edges {
        let _ = writeln!(out, "subclass {} {}", class(*sub), class(*sup));
    }
    out
}

/// Load ReVerb-style extraction triples: one
/// `subject <TAB> relation <TAB> object [<TAB> confidence]` per line
/// (whitespace-separated also accepted when arguments have no spaces).
/// Entities without type information land in `default_class` — OpenIE
/// extractions are untyped until a typing stage runs (Remark 1). Returns
/// the number of facts loaded.
pub fn load_triples_into(
    builder: &mut crate::kb::KbBuilder,
    text: &str,
    default_class: &str,
) -> Result<usize, crate::parser::ParseError> {
    let mut loaded = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = if line.contains('\t') {
            line.split('\t').map(str::trim).collect()
        } else {
            line.split_whitespace().collect()
        };
        if parts.len() != 3 && parts.len() != 4 {
            return Err(crate::parser::ParseError {
                line: i + 1,
                message: format!(
                    "triple needs 3 or 4 fields (subject, relation, object[, confidence]); got {}",
                    parts.len()
                ),
            });
        }
        let confidence: f64 = match parts.get(3) {
            Some(c) => c.parse().map_err(|_| crate::parser::ParseError {
                line: i + 1,
                message: format!("bad confidence '{c}'", c = parts[3]),
            })?,
            None => 1.0,
        };
        builder.fact(
            confidence,
            parts[1],
            (parts[0], default_class),
            (parts[2], default_class),
        );
        loaded += 1;
    }
    Ok(loaded)
}

/// Serialize a KB to JSON (exact snapshot, including dictionaries/ids).
pub fn to_json(kb: &ProbKb) -> String {
    serde_json::to_string(kb).expect("KBs serialize cleanly")
}

/// Restore a KB from a JSON snapshot.
pub fn from_json(json: &str) -> Result<ProbKb, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sample() -> ProbKb {
        parse(
            r#"
            fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
            fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
            rule 1.4 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            functional born_in 1 1
            functional located_in 1 2 Place City
            subclass City Place
            "#,
        )
        .unwrap()
        .build()
    }

    #[test]
    fn text_roundtrip_preserves_statistics() {
        let kb = sample();
        let text = to_text(&kb);
        let back = parse(&text).unwrap().build();
        assert_eq!(back.stats(), kb.stats());
        assert!(back.validate().is_empty(), "{:?}", back.validate());
    }

    #[test]
    fn text_roundtrip_preserves_content() {
        let kb = sample();
        let back = parse(&to_text(&kb)).unwrap().build();
        // Same fact strings (ids may renumber, names must survive).
        let strings = |k: &ProbKb| {
            let mut v: Vec<String> = k.facts.iter().map(|f| k.fact_to_string(f)).collect();
            v.sort();
            v
        };
        assert_eq!(strings(&back), strings(&kb));
        // The class-restricted constraint survives with its classes.
        let restricted = back.constraints.iter().find(|c| c.classes.is_some());
        assert!(restricted.is_some());
        assert_eq!(restricted.unwrap().degree, 2);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let kb = sample();
        let back = from_json(&to_json(&kb)).unwrap();
        assert_eq!(back.stats(), kb.stats());
        assert_eq!(back.facts, kb.facts);
        assert_eq!(back.rules, kb.rules);
        assert_eq!(back.constraints, kb.constraints);
        assert_eq!(back.subclass_edges, kb.subclass_edges);
    }

    #[test]
    fn triples_load_with_and_without_confidence() {
        let mut b = crate::kb::KbBuilder::default();
        let n = load_triples_into(
            &mut b,
            "# header comment\nKale\tis_rich_in\tcalcium\t0.91\ncalcium prevents osteoporosis\n",
            "Thing",
        )
        .unwrap();
        assert_eq!(n, 2);
        let kb = b.build();
        assert_eq!(kb.facts.len(), 2);
        assert_eq!(kb.facts[0].weight, Some(0.91));
        assert_eq!(kb.facts[1].weight, Some(1.0));
        assert_eq!(
            kb.fact_to_string(&kb.facts[0]),
            "0.91 is_rich_in(Kale, calcium)"
        );
        assert!(kb.validate().is_empty());
    }

    #[test]
    fn malformed_triples_report_line() {
        let mut b = crate::kb::KbBuilder::default();
        let e = load_triples_into(&mut b, "good rel thing\nonly two", "T").unwrap_err();
        assert_eq!(e.line, 2);
        let e = load_triples_into(&mut b, "a rel b nonsense", "T").unwrap_err();
        assert!(e.message.contains("bad confidence"));
    }

    #[test]
    fn text_is_humanly_structured() {
        let text = to_text(&sample());
        assert!(text.contains("# facts"));
        assert!(text.contains("# rules"));
        assert!(text.contains("rule 1.4 live_in(x:Writer, y:Place) :- born_in(x, y)"));
        assert!(text.contains("functional located_in 1 2 Place City"));
        assert!(text.contains("subclass City Place"));
    }
}
