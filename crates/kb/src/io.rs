//! Serialization: write a KB back out in the text format [`crate::parser`]
//! reads, and exact JSON snapshots. `parse(to_text(kb))` reconstructs
//! an equivalent KB (same statistics, same facts/rules/constraints up to
//! id renumbering), which the tests verify; `from_json(to_json(kb))` is
//! id-exact. JSON output is deterministic: sets are emitted in sorted
//! order, so equal KBs produce byte-identical snapshots.

use std::fmt::Write as _;

use probkb_support::json::{Json, JsonError};

use crate::ids::{ClassId, EntityId, RelationId};
use crate::interner::Dictionary;
use crate::kb::ProbKb;
use crate::model::{Atom, Fact, FunctionalConstraint, Functionality, HornRule, Var};

/// Render a KB in the line-oriented text format.
pub fn to_text(kb: &ProbKb) -> String {
    let mut out = String::new();
    let entity = |id: crate::ids::EntityId| kb.entities.resolve(id.raw()).unwrap_or("?");
    let class = |id: crate::ids::ClassId| kb.classes.resolve(id.raw()).unwrap_or("?");
    let relation = |id: crate::ids::RelationId| kb.relations.resolve(id.raw()).unwrap_or("?");

    out.push_str("# facts\n");
    for fact in &kb.facts {
        let w = fact.weight.unwrap_or(0.0);
        let _ = writeln!(
            out,
            "fact {w} {}({}:{}, {}:{})",
            relation(fact.rel),
            entity(fact.x),
            class(fact.c1),
            entity(fact.y),
            class(fact.c2),
        );
    }

    out.push_str("\n# rules\n");
    for rule in &kb.rules {
        let var = |v: Var, annotated: &mut [bool; 3]| -> String {
            let (slot, cls) = match v {
                Var::X => (0, rule.cx),
                Var::Y => (1, rule.cy),
                Var::Z => (2, rule.cz.expect("z used implies z class")),
            };
            if annotated[slot] {
                v.to_string()
            } else {
                annotated[slot] = true;
                format!("{v}:{}", class(cls))
            }
        };
        let mut annotated = [false; 3];
        let head = format!(
            "{}({}, {})",
            relation(rule.head.rel),
            var(rule.head.a, &mut annotated),
            var(rule.head.b, &mut annotated)
        );
        let body: Vec<String> = rule
            .body
            .iter()
            .map(|atom| {
                format!(
                    "{}({}, {})",
                    relation(atom.rel),
                    var(atom.a, &mut annotated),
                    var(atom.b, &mut annotated)
                )
            })
            .collect();
        let _ = writeln!(out, "rule {} {} :- {}", rule.weight, head, body.join(", "));
    }

    out.push_str("\n# constraints\n");
    for fc in &kb.constraints {
        let alpha = match fc.functionality {
            Functionality::TypeI => 1,
            Functionality::TypeII => 2,
        };
        match fc.classes {
            Some((c1, c2)) => {
                let _ = writeln!(
                    out,
                    "functional {} {alpha} {} {} {}",
                    relation(fc.rel),
                    fc.degree,
                    class(c1),
                    class(c2)
                );
            }
            None => {
                let _ = writeln!(out, "functional {} {alpha} {}", relation(fc.rel), fc.degree);
            }
        }
    }

    out.push_str("\n# hierarchy\n");
    for (sub, sup) in &kb.subclass_edges {
        let _ = writeln!(out, "subclass {} {}", class(*sub), class(*sup));
    }
    out
}

/// Load ReVerb-style extraction triples: one
/// `subject <TAB> relation <TAB> object [<TAB> confidence]` per line
/// (whitespace-separated also accepted when arguments have no spaces).
/// Entities without type information land in `default_class` — OpenIE
/// extractions are untyped until a typing stage runs (Remark 1). Returns
/// the number of facts loaded.
pub fn load_triples_into(
    builder: &mut crate::kb::KbBuilder,
    text: &str,
    default_class: &str,
) -> Result<usize, crate::parser::ParseError> {
    let mut loaded = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = if line.contains('\t') {
            line.split('\t').map(str::trim).collect()
        } else {
            line.split_whitespace().collect()
        };
        if parts.len() != 3 && parts.len() != 4 {
            return Err(crate::parser::ParseError {
                line: i + 1,
                message: format!(
                    "triple needs 3 or 4 fields (subject, relation, object[, confidence]); got {}",
                    parts.len()
                ),
            });
        }
        let confidence: f64 = match parts.get(3) {
            Some(c) => c.parse().map_err(|_| crate::parser::ParseError {
                line: i + 1,
                message: format!("bad confidence '{c}'", c = parts[3]),
            })?,
            None => 1.0,
        };
        builder.fact(
            confidence,
            parts[1],
            (parts[0], default_class),
            (parts[2], default_class),
        );
        loaded += 1;
    }
    Ok(loaded)
}

/// Serialize a KB to JSON (exact snapshot, including dictionaries/ids).
/// Output is deterministic: members and signatures are sorted before
/// emission, so two equal KBs serialize byte-identically.
pub fn to_json(kb: &ProbKb) -> String {
    let names = |d: &Dictionary| Json::Arr(d.iter().map(|(_, name)| Json::from(name)).collect());
    let members = Json::Arr(
        kb.members
            .iter()
            .map(|set| {
                let mut ids: Vec<u32> = set.iter().map(|e| e.raw()).collect();
                ids.sort_unstable();
                Json::Arr(ids.into_iter().map(Json::from).collect())
            })
            .collect(),
    );
    let subclass_edges = Json::Arr(
        kb.subclass_edges
            .iter()
            .map(|(sub, sup)| Json::Arr(vec![Json::from(sub.raw()), Json::from(sup.raw())]))
            .collect(),
    );
    let mut signatures: Vec<_> = kb.signatures.iter().copied().collect();
    signatures.sort_unstable_by_key(|(r, c1, c2)| (r.raw(), c1.raw(), c2.raw()));
    let signatures = Json::Arr(
        signatures
            .into_iter()
            .map(|(r, c1, c2)| {
                Json::Arr(vec![
                    Json::from(r.raw()),
                    Json::from(c1.raw()),
                    Json::from(c2.raw()),
                ])
            })
            .collect(),
    );
    let facts = Json::Arr(
        kb.facts
            .iter()
            .map(|f| {
                Json::Arr(vec![
                    Json::from(f.rel.raw()),
                    Json::from(f.x.raw()),
                    Json::from(f.c1.raw()),
                    Json::from(f.y.raw()),
                    Json::from(f.c2.raw()),
                    f.weight.map(Json::from).unwrap_or(Json::Null),
                ])
            })
            .collect(),
    );
    let atom = |a: &Atom| {
        Json::Arr(vec![
            Json::from(a.rel.raw()),
            Json::from(a.a.to_string()),
            Json::from(a.b.to_string()),
        ])
    };
    let rules = Json::Arr(
        kb.rules
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("head".into(), atom(&r.head)),
                    ("body".into(), Json::Arr(r.body.iter().map(atom).collect())),
                    ("cx".into(), Json::from(r.cx.raw())),
                    ("cy".into(), Json::from(r.cy.raw())),
                    (
                        "cz".into(),
                        r.cz.map(|c| Json::from(c.raw())).unwrap_or(Json::Null),
                    ),
                    ("weight".into(), Json::from(r.weight)),
                    ("significance".into(), Json::from(r.significance)),
                ])
            })
            .collect(),
    );
    let constraints = Json::Arr(
        kb.constraints
            .iter()
            .map(|fc| {
                Json::Obj(vec![
                    ("rel".into(), Json::from(fc.rel.raw())),
                    (
                        "classes".into(),
                        fc.classes
                            .map(|(c1, c2)| {
                                Json::Arr(vec![Json::from(c1.raw()), Json::from(c2.raw())])
                            })
                            .unwrap_or(Json::Null),
                    ),
                    ("alpha".into(), Json::from(fc.functionality.alpha())),
                    ("degree".into(), Json::from(fc.degree)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("entities".into(), names(&kb.entities)),
        ("classes".into(), names(&kb.classes)),
        ("relations".into(), names(&kb.relations)),
        ("members".into(), members),
        ("subclass_edges".into(), subclass_edges),
        ("signatures".into(), signatures),
        ("facts".into(), facts),
        ("rules".into(), rules),
        ("constraints".into(), constraints),
    ])
    .to_string()
}

fn schema_err(message: impl Into<String>) -> JsonError {
    JsonError {
        message: message.into(),
        offset: 0,
    }
}

/// Restore a KB from a JSON snapshot (id-exact inverse of [`to_json`]).
pub fn from_json(json: &str) -> Result<ProbKb, JsonError> {
    let doc = Json::parse(json)?;
    let field = |name: &str| {
        doc.get(name)
            .ok_or_else(|| schema_err(format!("missing field '{name}'")))
    };
    let dictionary = |name: &str| -> Result<Dictionary, JsonError> {
        let mut d = Dictionary::new();
        for entry in field(name)?
            .as_arr()
            .ok_or_else(|| schema_err(format!("'{name}' must be an array")))?
        {
            let s = entry
                .as_str()
                .ok_or_else(|| schema_err(format!("'{name}' entries must be strings")))?;
            d.intern(s);
        }
        Ok(d)
    };
    let arr = |value: &Json, what: &str| -> Result<Vec<Json>, JsonError> {
        value
            .as_arr()
            .map(<[Json]>::to_vec)
            .ok_or_else(|| schema_err(format!("{what} must be an array")))
    };
    let num = |value: Option<&Json>, what: &str| -> Result<u32, JsonError> {
        value
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| schema_err(format!("{what} must be a u32")))
    };

    let entities = dictionary("entities")?;
    let classes = dictionary("classes")?;
    let relations = dictionary("relations")?;

    let mut members = Vec::new();
    for set in arr(field("members")?, "'members'")? {
        members.push(
            arr(&set, "a member set")?
                .iter()
                .map(|id| num(Some(id), "an entity id").map(EntityId))
                .collect::<Result<_, _>>()?,
        );
    }

    let mut subclass_edges = Vec::new();
    for edge in arr(field("subclass_edges")?, "'subclass_edges'")? {
        subclass_edges.push((
            ClassId(num(edge.at(0), "a subclass edge")?),
            ClassId(num(edge.at(1), "a subclass edge")?),
        ));
    }

    let mut signatures = std::collections::HashSet::new();
    for sig in arr(field("signatures")?, "'signatures'")? {
        signatures.insert((
            RelationId(num(sig.at(0), "a signature")?),
            ClassId(num(sig.at(1), "a signature")?),
            ClassId(num(sig.at(2), "a signature")?),
        ));
    }

    let mut facts = Vec::new();
    for f in arr(field("facts")?, "'facts'")? {
        let weight = match f.at(5) {
            Some(Json::Null) | None => None,
            Some(w) => Some(w.as_f64().ok_or_else(|| schema_err("bad fact weight"))?),
        };
        facts.push(Fact {
            rel: RelationId(num(f.at(0), "a fact relation")?),
            x: EntityId(num(f.at(1), "a fact subject")?),
            c1: ClassId(num(f.at(2), "a fact class")?),
            y: EntityId(num(f.at(3), "a fact object")?),
            c2: ClassId(num(f.at(4), "a fact class")?),
            weight,
        });
    }

    let var = |value: Option<&Json>| -> Result<Var, JsonError> {
        match value.and_then(Json::as_str) {
            Some("x") => Ok(Var::X),
            Some("y") => Ok(Var::Y),
            Some("z") => Ok(Var::Z),
            other => Err(schema_err(format!("bad rule variable {other:?}"))),
        }
    };
    let atom = |value: &Json| -> Result<Atom, JsonError> {
        Ok(Atom {
            rel: RelationId(num(value.at(0), "an atom relation")?),
            a: var(value.at(1))?,
            b: var(value.at(2))?,
        })
    };
    let float = |value: Option<&Json>, what: &str| -> Result<f64, JsonError> {
        value
            .and_then(Json::as_f64)
            .ok_or_else(|| schema_err(format!("{what} must be a number")))
    };

    let mut rules = Vec::new();
    for r in arr(field("rules")?, "'rules'")? {
        let head = atom(r.get("head").ok_or_else(|| schema_err("rule missing head"))?)?;
        let body = arr(
            r.get("body").ok_or_else(|| schema_err("rule missing body"))?,
            "a rule body",
        )?
        .iter()
        .map(atom)
        .collect::<Result<_, _>>()?;
        let cz = match r.get("cz") {
            Some(Json::Null) | None => None,
            Some(c) => Some(ClassId(num(Some(c), "a rule z class")?)),
        };
        rules.push(HornRule {
            head,
            body,
            cx: ClassId(num(r.get("cx"), "a rule x class")?),
            cy: ClassId(num(r.get("cy"), "a rule y class")?),
            cz,
            weight: float(r.get("weight"), "a rule weight")?,
            significance: float(r.get("significance"), "a rule significance")?,
        });
    }

    let mut constraints = Vec::new();
    for fc in arr(field("constraints")?, "'constraints'")? {
        let classes = match fc.get("classes") {
            Some(Json::Null) | None => None,
            Some(pair) => Some((
                ClassId(num(pair.at(0), "a constraint class")?),
                ClassId(num(pair.at(1), "a constraint class")?),
            )),
        };
        let alpha = fc
            .get("alpha")
            .and_then(Json::as_i64)
            .ok_or_else(|| schema_err("constraint missing alpha"))?;
        constraints.push(FunctionalConstraint {
            rel: RelationId(num(fc.get("rel"), "a constraint relation")?),
            classes,
            functionality: Functionality::from_alpha(alpha)
                .ok_or_else(|| schema_err(format!("bad alpha {alpha}")))?,
            degree: num(fc.get("degree"), "a constraint degree")?,
        });
    }

    Ok(ProbKb {
        entities,
        classes,
        relations,
        members,
        subclass_edges,
        signatures,
        facts,
        rules,
        constraints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sample() -> ProbKb {
        parse(
            r#"
            fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
            fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
            rule 1.4 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            functional born_in 1 1
            functional located_in 1 2 Place City
            subclass City Place
            "#,
        )
        .unwrap()
        .build()
    }

    #[test]
    fn text_roundtrip_preserves_statistics() {
        let kb = sample();
        let text = to_text(&kb);
        let back = parse(&text).unwrap().build();
        assert_eq!(back.stats(), kb.stats());
        assert!(back.validate().is_empty(), "{:?}", back.validate());
    }

    #[test]
    fn text_roundtrip_preserves_content() {
        let kb = sample();
        let back = parse(&to_text(&kb)).unwrap().build();
        // Same fact strings (ids may renumber, names must survive).
        let strings = |k: &ProbKb| {
            let mut v: Vec<String> = k.facts.iter().map(|f| k.fact_to_string(f)).collect();
            v.sort();
            v
        };
        assert_eq!(strings(&back), strings(&kb));
        // The class-restricted constraint survives with its classes.
        let restricted = back.constraints.iter().find(|c| c.classes.is_some());
        assert!(restricted.is_some());
        assert_eq!(restricted.unwrap().degree, 2);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let kb = sample();
        let back = from_json(&to_json(&kb)).unwrap();
        assert_eq!(back.stats(), kb.stats());
        assert_eq!(back.facts, kb.facts);
        assert_eq!(back.rules, kb.rules);
        assert_eq!(back.constraints, kb.constraints);
        assert_eq!(back.subclass_edges, kb.subclass_edges);
    }

    #[test]
    fn triples_load_with_and_without_confidence() {
        let mut b = crate::kb::KbBuilder::default();
        let n = load_triples_into(
            &mut b,
            "# header comment\nKale\tis_rich_in\tcalcium\t0.91\ncalcium prevents osteoporosis\n",
            "Thing",
        )
        .unwrap();
        assert_eq!(n, 2);
        let kb = b.build();
        assert_eq!(kb.facts.len(), 2);
        assert_eq!(kb.facts[0].weight, Some(0.91));
        assert_eq!(kb.facts[1].weight, Some(1.0));
        assert_eq!(
            kb.fact_to_string(&kb.facts[0]),
            "0.91 is_rich_in(Kale, calcium)"
        );
        assert!(kb.validate().is_empty());
    }

    #[test]
    fn malformed_triples_report_line() {
        let mut b = crate::kb::KbBuilder::default();
        let e = load_triples_into(&mut b, "good rel thing\nonly two", "T").unwrap_err();
        assert_eq!(e.line, 2);
        let e = load_triples_into(&mut b, "a rel b nonsense", "T").unwrap_err();
        assert!(e.message.contains("bad confidence"));
    }

    #[test]
    fn text_is_humanly_structured() {
        let text = to_text(&sample());
        assert!(text.contains("# facts"));
        assert!(text.contains("# rules"));
        assert!(text.contains("rule 1.4 live_in(x:Writer, y:Place) :- born_in(x, y)"));
        assert!(text.contains("functional located_in 1 2 Place City"));
        assert!(text.contains("subclass City Place"));
    }
}
