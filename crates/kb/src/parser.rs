//! A small text format for probabilistic knowledge bases, used by the
//! examples and tests. One statement per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
//! rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
//! rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
//! functional born_in 1 1          # relation, type (1|2), degree
//! subclass City Place
//! ```
//!
//! Rule variables are `x`, `y` (head) and `z` (join variable); each
//! variable's class is annotated at its first occurrence.

use std::fmt;

use crate::kb::KbBuilder;
use crate::model::{Atom, Functionality, HornRule, Var};

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a KB text document into a builder (may already hold content).
pub fn parse_into(builder: &mut KbBuilder, text: &str) -> Result<(), ParseError> {
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(lineno, "statement needs arguments"))?;
        match keyword {
            "fact" => parse_fact(builder, rest.trim(), lineno)?,
            "rule" => parse_rule(builder, rest.trim(), lineno)?,
            "functional" => parse_functional(builder, rest.trim(), lineno)?,
            "subclass" => parse_subclass(builder, rest.trim(), lineno)?,
            other => return Err(err(lineno, format!("unknown statement '{other}'"))),
        }
    }
    Ok(())
}

/// Parse a whole document into a fresh builder.
pub fn parse(text: &str) -> Result<KbBuilder, ParseError> {
    let mut builder = KbBuilder::default();
    parse_into(&mut builder, text)?;
    Ok(builder)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// `0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)`
fn parse_fact(builder: &mut KbBuilder, rest: &str, line: usize) -> Result<(), ParseError> {
    let (weight, atom_text) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| err(line, "fact needs a weight and an atom"))?;
    let weight: f64 = weight
        .parse()
        .map_err(|_| err(line, format!("bad weight '{weight}'")))?;
    let (rel, a, b) = parse_atom_text(atom_text.trim(), line)?;
    let (x, cx) = require_typed(a, line, "fact subject")?;
    let (y, cy) = require_typed(b, line, "fact object")?;
    builder.fact(weight, &rel, (&x, &cx), (&y, &cy));
    Ok(())
}

/// `1.40 live_in(x:Writer, y:Place) :- born_in(x, y)[, second_atom]`
fn parse_rule(builder: &mut KbBuilder, rest: &str, line: usize) -> Result<(), ParseError> {
    let (weight, clause) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| err(line, "rule needs a weight and a clause"))?;
    let weight: f64 = weight
        .parse()
        .map_err(|_| err(line, format!("bad weight '{weight}'")))?;
    let (head_text, body_text) = clause
        .split_once(":-")
        .ok_or_else(|| err(line, "rule needs ':-' between head and body"))?;

    let mut classes: [Option<String>; 3] = [None, None, None];
    let head = parse_rule_atom(head_text.trim(), &mut classes, line)?;
    if head.1 != Var::X || head.2 != Var::Y {
        return Err(err(line, "rule head must be head(x, y)"));
    }
    let body_atoms: Vec<&str> = split_atoms(body_text.trim());
    if body_atoms.is_empty() || body_atoms.len() > 2 {
        return Err(err(
            line,
            format!("rule body must have 1 or 2 atoms, got {}", body_atoms.len()),
        ));
    }
    let mut body = Vec::new();
    for atom_text in &body_atoms {
        body.push(parse_rule_atom(atom_text.trim(), &mut classes, line)?);
    }

    let cx = classes[0]
        .clone()
        .ok_or_else(|| err(line, "variable x has no class annotation"))?;
    let cy = classes[1]
        .clone()
        .ok_or_else(|| err(line, "variable y has no class annotation"))?;
    let uses_z = body.iter().any(|a| a.1 == Var::Z || a.2 == Var::Z);
    let cz = if uses_z {
        Some(
            classes[2]
                .clone()
                .ok_or_else(|| err(line, "variable z has no class annotation"))?,
        )
    } else {
        None
    };

    // Intern classes and relations, register the head signature.
    let cx_id = builder.class(&cx);
    let cy_id = builder.class(&cy);
    let cz_id = cz.as_deref().map(|c| builder.class(c));
    builder.signature(&head.0, &cx, &cy);
    let head_atom = Atom::new(builder.relation(&head.0), head.1, head.2);
    let body_atom_ids: Vec<Atom> = body
        .iter()
        .map(|(rel, a, b)| Atom::new(builder.relation(rel), *a, *b))
        .collect();

    let rule = match body_atom_ids.len() {
        1 => HornRule::length2(head_atom, body_atom_ids[0], cx_id, cy_id, weight),
        2 => HornRule::length3(
            head_atom,
            body_atom_ids[0],
            body_atom_ids[1],
            cx_id,
            cy_id,
            cz_id.ok_or_else(|| err(line, "length-3 rule requires z class"))?,
            weight,
        ),
        _ => unreachable!("validated above"),
    };
    builder.push_rule(rule);
    Ok(())
}

/// `born_in 1 1` or `born_in 1 1 Writer City` → relation, functionality
/// type, degree, and an optional class-pair restriction.
fn parse_functional(builder: &mut KbBuilder, rest: &str, line: usize) -> Result<(), ParseError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() != 3 && parts.len() != 5 {
        return Err(err(
            line,
            "functional needs: <relation> <1|2> <degree> [<C1> <C2>]",
        ));
    }
    let functionality = match parts[1] {
        "1" => Functionality::TypeI,
        "2" => Functionality::TypeII,
        other => return Err(err(line, format!("bad functionality type '{other}'"))),
    };
    let degree: u32 = parts[2]
        .parse()
        .map_err(|_| err(line, format!("bad degree '{}'", parts[2])))?;
    if parts.len() == 5 {
        builder.functional_on(parts[0], parts[3], parts[4], functionality, degree);
    } else {
        builder.functional(parts[0], functionality, degree);
    }
    Ok(())
}

/// `City Place` → City ⊆ Place.
fn parse_subclass(builder: &mut KbBuilder, rest: &str, line: usize) -> Result<(), ParseError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.len() != 2 {
        return Err(err(line, "subclass needs: <Sub> <Super>"));
    }
    builder.subclass(parts[0], parts[1]);
    Ok(())
}

/// Split `a(b, c), d(e, f)` into atom substrings at top-level commas.
fn split_atoms(text: &str) -> Vec<&str> {
    let mut atoms = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                atoms.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !text[start..].trim().is_empty() {
        atoms.push(&text[start..]);
    }
    atoms
}

/// An argument: its name plus an optional `:Class` annotation.
type ParsedArg = (String, Option<String>);

/// Parse `rel(arg1, arg2)` into `(relation, arg1, arg2)` strings where
/// args may be `name` or `name:Class`.
fn parse_atom_text(
    text: &str,
    line: usize,
) -> Result<(String, ParsedArg, ParsedArg), ParseError> {
    let open = text
        .find('(')
        .ok_or_else(|| err(line, format!("atom missing '(': {text}")))?;
    if !text.trim_end().ends_with(')') {
        return Err(err(line, format!("atom missing ')': {text}")));
    }
    let rel = text[..open].trim().to_string();
    if rel.is_empty() {
        return Err(err(line, "atom has empty relation name"));
    }
    let inner = &text[open + 1..text.trim_end().len() - 1];
    let args: Vec<&str> = inner.split(',').map(str::trim).collect();
    if args.len() != 2 {
        return Err(err(line, format!("atom needs 2 arguments: {text}")));
    }
    let parse_arg = |arg: &str| -> ParsedArg {
        match arg.split_once(':') {
            Some((name, class)) => (name.trim().to_string(), Some(class.trim().to_string())),
            None => (arg.to_string(), None),
        }
    };
    Ok((rel, parse_arg(args[0]), parse_arg(args[1])))
}

fn require_typed(
    arg: ParsedArg,
    line: usize,
    what: &str,
) -> Result<(String, String), ParseError> {
    match arg.1 {
        Some(class) => Ok((arg.0, class)),
        None => Err(err(line, format!("{what} needs a ':Class' annotation"))),
    }
}

/// Parse a rule atom: args must be variables x/y/z, classes recorded at
/// first annotation. Returns `(relation, var1, var2)`.
fn parse_rule_atom(
    text: &str,
    classes: &mut [Option<String>; 3],
    line: usize,
) -> Result<(String, Var, Var), ParseError> {
    let (rel, a, b) = parse_atom_text(text, line)?;
    let mut to_var = |arg: ParsedArg| -> Result<Var, ParseError> {
        let var = match arg.0.as_str() {
            "x" => Var::X,
            "y" => Var::Y,
            "z" => Var::Z,
            other => {
                return Err(err(
                    line,
                    format!("rule argument must be x, y, or z; got '{other}'"),
                ))
            }
        };
        if let Some(class) = arg.1 {
            let slot = match var {
                Var::X => 0,
                Var::Y => 1,
                Var::Z => 2,
            };
            match &classes[slot] {
                Some(existing) if *existing != class => {
                    return Err(err(
                        line,
                        format!("variable {var} annotated with both '{existing}' and '{class}'"),
                    ))
                }
                _ => classes[slot] = Some(class),
            }
        }
        Ok(var)
    };
    Ok((rel, to_var(a)?, to_var(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{classify, RulePattern};

    const DOC: &str = r#"
# The Table 1 running example, abbreviated.
fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
functional born_in 1 1
subclass City Place
"#;

    #[test]
    fn parses_full_document() {
        let kb = parse(DOC).unwrap().build();
        let stats = kb.stats();
        assert_eq!(stats.facts, 2);
        assert_eq!(stats.rules, 2);
        assert_eq!(stats.constraints, 1);
        assert!(kb.validate().is_empty(), "{:?}", kb.validate());
    }

    #[test]
    fn rule_patterns_classify() {
        let kb = parse(DOC).unwrap().build();
        assert_eq!(classify(&kb.rules[0]).unwrap().pattern, RulePattern::P1);
        assert_eq!(classify(&kb.rules[1]).unwrap().pattern, RulePattern::P3);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let kb = parse("# nothing\n\n   \n").unwrap().build();
        assert_eq!(kb.stats().facts, 0);
    }

    #[test]
    fn error_reports_line_number() {
        let bad = "fact 0.9 born_in(a:A, b:B)\nrule oops live_in(x:A, y:B) :- born_in(x, y)";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad weight"));
    }

    #[test]
    fn untyped_fact_rejected() {
        let e = parse("fact 0.9 born_in(a, b:B)").unwrap_err();
        assert!(e.message.contains(":Class"));
    }

    #[test]
    fn head_must_be_xy() {
        let e = parse("rule 1.0 p(y:A, x:B) :- q(x, y)").unwrap_err();
        assert!(e.message.contains("head must be"));
    }

    #[test]
    fn missing_z_class_rejected() {
        let e = parse("rule 1.0 p(x:A, y:B) :- q(z, x), r(z, y)").unwrap_err();
        assert!(e.message.contains("z has no class"));
    }

    #[test]
    fn conflicting_class_annotations_rejected() {
        let e = parse("rule 1.0 p(x:A, y:B) :- q(x:C, y)").unwrap_err();
        assert!(e.message.contains("annotated with both"));
    }

    #[test]
    fn unknown_statement_rejected() {
        let e = parse("frobnicate a b").unwrap_err();
        assert!(e.message.contains("unknown statement"));
    }

    #[test]
    fn functional_variants() {
        let kb = parse("functional capital_of 2 1\nfunctional live_in 1 3").unwrap().build();
        assert_eq!(kb.constraints.len(), 2);
        assert_eq!(kb.constraints[0].functionality, Functionality::TypeII);
        assert_eq!(kb.constraints[1].degree, 3);
    }

    #[test]
    fn class_restricted_functional_parses() {
        let kb = parse("functional born_in 1 1 Writer City").unwrap().build();
        let fc = &kb.constraints[0];
        assert!(fc.classes.is_some());
        let (c1, c2) = fc.classes.unwrap();
        assert_eq!(kb.classes.resolve(c1.raw()), Some("Writer"));
        assert_eq!(kb.classes.resolve(c2.raw()), Some("City"));
        // Wrong arity is rejected.
        assert!(parse("functional born_in 1 1 Writer").is_err());
    }

    #[test]
    fn split_atoms_respects_parens() {
        let atoms = split_atoms("a(x, z), b(z, y)");
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].trim(), "a(x, z)");
        assert_eq!(atoms[1].trim(), "b(z, y)");
    }
}
