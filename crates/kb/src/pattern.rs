//! Structural-equivalence partitioning of Horn clauses (Definitions 5–6).
//!
//! Two clauses are structurally equivalent when they differ only in the
//! entity/class/relation symbols. The Sherlock rule set falls into exactly
//! six equivalence classes; partitioning the MLN this way is what lets
//! grounding apply *all* rules of a partition with one join query, turning
//! `O(n)` per-rule queries into `O(k)` per-partition queries (§4.3.1).

use std::collections::HashMap;
use std::fmt;


use crate::ids::RuleId;
use crate::model::{Atom, HornRule, Var};

/// The six structural classes of §4.2.2, with the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RulePattern {
    /// `p(x,y) ← q(x,y)`
    P1,
    /// `p(x,y) ← q(y,x)`
    P2,
    /// `p(x,y) ← q(z,x), r(z,y)`
    P3,
    /// `p(x,y) ← q(x,z), r(z,y)`
    P4,
    /// `p(x,y) ← q(z,x), r(y,z)`
    P5,
    /// `p(x,y) ← q(x,z), r(y,z)`
    P6,
}

impl RulePattern {
    /// All patterns in paper order.
    pub const ALL: [RulePattern; 6] = [
        RulePattern::P1,
        RulePattern::P2,
        RulePattern::P3,
        RulePattern::P4,
        RulePattern::P5,
        RulePattern::P6,
    ];

    /// The paper's 1-based partition index.
    pub fn index(&self) -> usize {
        match self {
            RulePattern::P1 => 1,
            RulePattern::P2 => 2,
            RulePattern::P3 => 3,
            RulePattern::P4 => 4,
            RulePattern::P5 => 5,
            RulePattern::P6 => 6,
        }
    }

    /// Number of atoms in clauses of this pattern (2 or 3).
    pub fn arity(&self) -> usize {
        match self {
            RulePattern::P1 | RulePattern::P2 => 2,
            _ => 3,
        }
    }

    /// The body-variable layout of this pattern: `(first atom args,
    /// second atom args)`; length-2 patterns have no second atom.
    pub fn body_layout(&self) -> ((Var, Var), Option<(Var, Var)>) {
        match self {
            RulePattern::P1 => ((Var::X, Var::Y), None),
            RulePattern::P2 => ((Var::Y, Var::X), None),
            RulePattern::P3 => ((Var::Z, Var::X), Some((Var::Z, Var::Y))),
            RulePattern::P4 => ((Var::X, Var::Z), Some((Var::Z, Var::Y))),
            RulePattern::P5 => ((Var::Z, Var::X), Some((Var::Y, Var::Z))),
            RulePattern::P6 => ((Var::X, Var::Z), Some((Var::Y, Var::Z))),
        }
    }
}

impl fmt::Display for RulePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            RulePattern::P1 => "p(x,y) <- q(x,y)",
            RulePattern::P2 => "p(x,y) <- q(y,x)",
            RulePattern::P3 => "p(x,y) <- q(z,x), r(z,y)",
            RulePattern::P4 => "p(x,y) <- q(x,z), r(z,y)",
            RulePattern::P5 => "p(x,y) <- q(z,x), r(y,z)",
            RulePattern::P6 => "p(x,y) <- q(x,z), r(y,z)",
        };
        write!(f, "M{} [{}]", self.index(), text)
    }
}

/// Why a clause failed to classify into the six patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The head must be exactly `p(x, y)`.
    HeadNotXY,
    /// Body has an unsupported number of atoms.
    BadBodyLen(usize),
    /// The body's variable layout matches none of the six patterns (even
    /// after trying the swapped atom order).
    UnknownLayout,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::HeadNotXY => write!(f, "rule head must be p(x, y)"),
            PatternError::BadBodyLen(n) => write!(f, "unsupported body length {n}"),
            PatternError::UnknownLayout => {
                write!(f, "body variable layout matches none of the 6 patterns")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// The result of classifying a rule: its pattern plus the body atoms in
/// the pattern's canonical order (they may have been swapped).
#[derive(Debug, Clone, PartialEq)]
pub struct Classified {
    /// The structural class.
    pub pattern: RulePattern,
    /// Body atoms in canonical `(q, r)` order.
    pub body: Vec<Atom>,
}

/// Classify a Horn rule into one of the six structural patterns,
/// canonicalizing body-atom order when needed.
pub fn classify(rule: &HornRule) -> Result<Classified, PatternError> {
    if rule.head.a != Var::X || rule.head.b != Var::Y {
        return Err(PatternError::HeadNotXY);
    }
    match rule.body.len() {
        1 => {
            let b = rule.body[0];
            let pattern = match (b.a, b.b) {
                (Var::X, Var::Y) => RulePattern::P1,
                (Var::Y, Var::X) => RulePattern::P2,
                _ => return Err(PatternError::UnknownLayout),
            };
            Ok(Classified {
                pattern,
                body: vec![b],
            })
        }
        2 => {
            for (q, r) in [
                (rule.body[0], rule.body[1]),
                (rule.body[1], rule.body[0]),
            ] {
                let layout = ((q.a, q.b), (r.a, r.b));
                let pattern = match layout {
                    ((Var::Z, Var::X), (Var::Z, Var::Y)) => Some(RulePattern::P3),
                    ((Var::X, Var::Z), (Var::Z, Var::Y)) => Some(RulePattern::P4),
                    ((Var::Z, Var::X), (Var::Y, Var::Z)) => Some(RulePattern::P5),
                    ((Var::X, Var::Z), (Var::Y, Var::Z)) => Some(RulePattern::P6),
                    _ => None,
                };
                if let Some(pattern) = pattern {
                    return Ok(Classified {
                        pattern,
                        body: vec![q, r],
                    });
                }
            }
            Err(PatternError::UnknownLayout)
        }
        n => Err(PatternError::BadBodyLen(n)),
    }
}

/// A partitioning of an MLN's rules by structural class: the in-memory
/// counterpart of the `M1..M6` tables.
#[derive(Debug, Clone, Default)]
pub struct Partitioning {
    by_pattern: HashMap<RulePattern, Vec<(RuleId, Classified)>>,
    rejected: Vec<(RuleId, PatternError)>,
}

impl Partitioning {
    /// Partition a rule list. Rules that do not fit the six patterns are
    /// collected in [`Partitioning::rejected`] rather than silently
    /// dropped.
    pub fn build(rules: &[HornRule]) -> Self {
        let mut part = Partitioning::default();
        for (i, rule) in rules.iter().enumerate() {
            let id = RuleId(i as u32);
            match classify(rule) {
                Ok(c) => part.by_pattern.entry(c.pattern).or_default().push((id, c)),
                Err(e) => part.rejected.push((id, e)),
            }
        }
        part
    }

    /// Rules in a given partition.
    pub fn rules_in(&self, pattern: RulePattern) -> &[(RuleId, Classified)] {
        self.by_pattern
            .get(&pattern)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Patterns that actually contain rules, in paper order.
    pub fn non_empty_patterns(&self) -> Vec<RulePattern> {
        RulePattern::ALL
            .iter()
            .copied()
            .filter(|p| !self.rules_in(*p).is_empty())
            .collect()
    }

    /// Number of non-empty partitions (`k` in the O(k)-queries claim).
    pub fn k(&self) -> usize {
        self.non_empty_patterns().len()
    }

    /// Total classified rules.
    pub fn total_rules(&self) -> usize {
        self.by_pattern.values().map(Vec::len).sum()
    }

    /// Rules that failed classification.
    pub fn rejected(&self) -> &[(RuleId, PatternError)] {
        &self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, RelationId};

    fn r(i: u32) -> RelationId {
        RelationId(i)
    }
    fn c(i: u32) -> ClassId {
        ClassId(i)
    }
    fn head() -> Atom {
        Atom::new(r(0), Var::X, Var::Y)
    }

    fn l3(b1: Atom, b2: Atom) -> HornRule {
        HornRule::length3(head(), b1, b2, c(1), c(2), c(3), 0.5)
    }

    #[test]
    fn classifies_all_six_patterns() {
        let cases = vec![
            (
                HornRule::length2(head(), Atom::new(r(1), Var::X, Var::Y), c(1), c(2), 1.0),
                RulePattern::P1,
            ),
            (
                HornRule::length2(head(), Atom::new(r(1), Var::Y, Var::X), c(1), c(2), 1.0),
                RulePattern::P2,
            ),
            (
                l3(Atom::new(r(1), Var::Z, Var::X), Atom::new(r(2), Var::Z, Var::Y)),
                RulePattern::P3,
            ),
            (
                l3(Atom::new(r(1), Var::X, Var::Z), Atom::new(r(2), Var::Z, Var::Y)),
                RulePattern::P4,
            ),
            (
                l3(Atom::new(r(1), Var::Z, Var::X), Atom::new(r(2), Var::Y, Var::Z)),
                RulePattern::P5,
            ),
            (
                l3(Atom::new(r(1), Var::X, Var::Z), Atom::new(r(2), Var::Y, Var::Z)),
                RulePattern::P6,
            ),
        ];
        for (rule, expected) in cases {
            assert_eq!(classify(&rule).unwrap().pattern, expected);
        }
    }

    #[test]
    fn swapped_body_atoms_canonicalize() {
        // P3 with atoms given in reverse order: q(z,y), r(z,x) — swapping
        // yields r(z,x), q(z,y) which is P3 with the relations swapped.
        let rule = l3(
            Atom::new(r(9), Var::Z, Var::Y),
            Atom::new(r(8), Var::Z, Var::X),
        );
        let c = classify(&rule).unwrap();
        assert_eq!(c.pattern, RulePattern::P3);
        assert_eq!(c.body[0].rel, r(8)); // canonical q mentions x
        assert_eq!(c.body[1].rel, r(9));
    }

    #[test]
    fn rejects_bad_head_and_layout() {
        let bad_head = HornRule::length2(
            Atom::new(r(0), Var::Y, Var::X),
            Atom::new(r(1), Var::X, Var::Y),
            c(1),
            c(2),
            1.0,
        );
        assert_eq!(classify(&bad_head), Err(PatternError::HeadNotXY));

        // Body atom reusing x twice matches no pattern.
        let weird = l3(
            Atom::new(r(1), Var::X, Var::X),
            Atom::new(r(2), Var::Z, Var::Y),
        );
        assert_eq!(classify(&weird), Err(PatternError::UnknownLayout));
    }

    #[test]
    fn partitioning_counts_and_rejects() {
        let rules = vec![
            HornRule::length2(head(), Atom::new(r(1), Var::X, Var::Y), c(1), c(2), 1.0),
            HornRule::length2(head(), Atom::new(r(2), Var::X, Var::Y), c(1), c(2), 1.0),
            l3(Atom::new(r(1), Var::Z, Var::X), Atom::new(r(2), Var::Z, Var::Y)),
            l3(Atom::new(r(1), Var::X, Var::X), Atom::new(r(2), Var::Z, Var::Y)),
        ];
        let part = Partitioning::build(&rules);
        assert_eq!(part.rules_in(RulePattern::P1).len(), 2);
        assert_eq!(part.rules_in(RulePattern::P3).len(), 1);
        assert_eq!(part.k(), 2);
        assert_eq!(part.total_rules(), 3);
        assert_eq!(part.rejected().len(), 1);
        assert_eq!(
            part.non_empty_patterns(),
            vec![RulePattern::P1, RulePattern::P3]
        );
    }

    #[test]
    fn pattern_metadata() {
        assert_eq!(RulePattern::P1.arity(), 2);
        assert_eq!(RulePattern::P5.arity(), 3);
        assert_eq!(RulePattern::P4.index(), 4);
        assert!(RulePattern::P6.to_string().contains("M6"));
        let (first, second) = RulePattern::P5.body_layout();
        assert_eq!(first, (Var::Z, Var::X));
        assert_eq!(second, Some((Var::Y, Var::Z)));
    }
}
