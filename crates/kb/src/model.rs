//! Core model types: typed facts (Π), Horn rules (H), and functional
//! constraints (Ω) — the components of Definition 1.

use std::fmt;


use crate::ids::{ClassId, EntityId, RelationId};

/// A weighted, typed fact `(R(x, y), w)` with explicit argument classes —
/// the in-memory form of one `TΠ` row (Definition 4, minus the `I` column
/// which the relational mapping assigns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fact {
    /// The relation `R`.
    pub rel: RelationId,
    /// Subject entity `x`.
    pub x: EntityId,
    /// Subject class `C1` (with `x ∈ C1`).
    pub c1: ClassId,
    /// Object entity `y`.
    pub y: EntityId,
    /// Object class `C2` (with `y ∈ C2`).
    pub c2: ClassId,
    /// Weight; `None` for facts inferred during grounding whose marginal
    /// is yet to be computed (the paper sets `w` to NULL, §4.3).
    pub weight: Option<f64>,
}

impl Fact {
    /// A weighted (extracted) fact.
    pub fn new(
        rel: RelationId,
        x: EntityId,
        c1: ClassId,
        y: EntityId,
        c2: ClassId,
        weight: f64,
    ) -> Self {
        Fact {
            rel,
            x,
            c1,
            y,
            c2,
            weight: Some(weight),
        }
    }

    /// An inferred fact with no weight yet.
    pub fn inferred(rel: RelationId, x: EntityId, c1: ClassId, y: EntityId, c2: ClassId) -> Self {
        Fact {
            rel,
            x,
            c1,
            y,
            c2,
            weight: None,
        }
    }

    /// The typed key identifying this fact regardless of weight: two facts
    /// are the same statement iff their keys agree.
    pub fn key(&self) -> (RelationId, EntityId, ClassId, EntityId, ClassId) {
        (self.rel, self.x, self.c1, self.y, self.c2)
    }
}

/// A variable position in a Horn clause. The head is always `p(x, y)`;
/// length-3 clauses introduce a join variable `z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// The head's first argument.
    X,
    /// The head's second argument.
    Y,
    /// The body join variable of length-3 clauses.
    Z,
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::X => write!(f, "x"),
            Var::Y => write!(f, "y"),
            Var::Z => write!(f, "z"),
        }
    }
}

/// One atom `R(a, b)` in a Horn clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation.
    pub rel: RelationId,
    /// First argument.
    pub a: Var,
    /// Second argument.
    pub b: Var,
}

impl Atom {
    /// Build an atom.
    pub fn new(rel: RelationId, a: Var, b: Var) -> Self {
        Atom { rel, a, b }
    }

    /// The variables this atom uses.
    pub fn vars(&self) -> [Var; 2] {
        [self.a, self.b]
    }

    /// True if the atom mentions `v`.
    pub fn mentions(&self, v: Var) -> bool {
        self.a == v || self.b == v
    }
}

/// A weighted first-order Horn clause `(F, W)` ∈ H (§4.1):
/// `head ← body₁ [, body₂]`, with every variable typed by a class.
#[derive(Debug, Clone, PartialEq)]
pub struct HornRule {
    /// The head atom, always over variables `(x, y)`.
    pub head: Atom,
    /// One or two body atoms.
    pub body: Vec<Atom>,
    /// Class of `x` (`C1`).
    pub cx: ClassId,
    /// Class of `y` (`C2`).
    pub cy: ClassId,
    /// Class of `z` (`C3`) for length-3 clauses.
    pub cz: Option<ClassId>,
    /// MLN weight `W`.
    pub weight: f64,
    /// Sherlock-style statistical significance score, used by rule
    /// cleaning (§5.3). Higher is more trustworthy.
    pub significance: f64,
}

impl HornRule {
    /// A length-2 clause `head(x,y) ← body(a,b)`.
    pub fn length2(head: Atom, body: Atom, cx: ClassId, cy: ClassId, weight: f64) -> Self {
        HornRule {
            head,
            body: vec![body],
            cx,
            cy,
            cz: None,
            weight,
            significance: weight,
        }
    }

    /// A length-3 clause `head(x,y) ← b1, b2` with join variable `z : cz`.
    pub fn length3(
        head: Atom,
        b1: Atom,
        b2: Atom,
        cx: ClassId,
        cy: ClassId,
        cz: ClassId,
        weight: f64,
    ) -> Self {
        HornRule {
            head,
            body: vec![b1, b2],
            cx,
            cy,
            cz: Some(cz),
            weight,
            significance: weight,
        }
    }

    /// Set the significance score (builder style).
    pub fn with_significance(mut self, s: f64) -> Self {
        self.significance = s;
        self
    }

    /// Total number of atoms (head + body): 2 or 3.
    pub fn len(&self) -> usize {
        1 + self.body.len()
    }

    /// Never empty (a Horn rule always has a head).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The class of a variable in this rule.
    pub fn class_of(&self, v: Var) -> Option<ClassId> {
        match v {
            Var::X => Some(self.cx),
            Var::Y => Some(self.cy),
            Var::Z => self.cz,
        }
    }
}

/// Type-I or Type-II functionality (Definition 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Functionality {
    /// `x` determines `y`: at most δ objects per subject.
    TypeI,
    /// `y` determines `x`: at most δ subjects per object.
    TypeII,
}

impl Functionality {
    /// The `α ∈ {1, 2}` encoding used in `TΩ` (Definition 11).
    pub fn alpha(&self) -> i64 {
        match self {
            Functionality::TypeI => 1,
            Functionality::TypeII => 2,
        }
    }

    /// Decode from the `α` column.
    pub fn from_alpha(alpha: i64) -> Option<Self> {
        match alpha {
            1 => Some(Functionality::TypeI),
            2 => Some(Functionality::TypeII),
            _ => None,
        }
    }
}

/// A functional (or pseudo-functional) constraint — one `TΩ` row
/// (Definition 11): relation `R` admits at most `degree` distinct partners
/// per key entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalConstraint {
    /// The constrained relation.
    pub rel: RelationId,
    /// Optional class restriction `(C1, C2)`; `None` means the
    /// functionality holds for all class pairs (the common case, §5.4).
    pub classes: Option<(ClassId, ClassId)>,
    /// Which argument is the key.
    pub functionality: Functionality,
    /// Degree of (pseudo-)functionality δ; 1 for strictly functional
    /// relations.
    pub degree: u32,
}

impl FunctionalConstraint {
    /// A strict Type-I functional constraint on a relation.
    pub fn type1(rel: RelationId) -> Self {
        FunctionalConstraint {
            rel,
            classes: None,
            functionality: Functionality::TypeI,
            degree: 1,
        }
    }

    /// A strict Type-II functional constraint on a relation.
    pub fn type2(rel: RelationId) -> Self {
        FunctionalConstraint {
            rel,
            classes: None,
            functionality: Functionality::TypeII,
            degree: 1,
        }
    }

    /// Set the pseudo-functionality degree δ (builder style).
    pub fn with_degree(mut self, degree: u32) -> Self {
        self.degree = degree.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelationId {
        RelationId(i)
    }
    fn c(i: u32) -> ClassId {
        ClassId(i)
    }
    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn fact_key_ignores_weight() {
        let a = Fact::new(r(1), e(1), c(1), e(2), c(2), 0.9);
        let b = Fact::inferred(r(1), e(1), c(1), e(2), c(2));
        assert_eq!(a.key(), b.key());
        assert_ne!(a, b);
    }

    #[test]
    fn atom_vars_and_mentions() {
        let a = Atom::new(r(1), Var::Z, Var::X);
        assert_eq!(a.vars(), [Var::Z, Var::X]);
        assert!(a.mentions(Var::X));
        assert!(!a.mentions(Var::Y));
    }

    #[test]
    fn rule_lengths_and_classes() {
        let head = Atom::new(r(1), Var::X, Var::Y);
        let l2 = HornRule::length2(head, Atom::new(r(2), Var::X, Var::Y), c(1), c(2), 1.4);
        assert_eq!(l2.len(), 2);
        assert_eq!(l2.class_of(Var::X), Some(c(1)));
        assert_eq!(l2.class_of(Var::Z), None);
        let l3 = HornRule::length3(
            head,
            Atom::new(r(2), Var::Z, Var::X),
            Atom::new(r(3), Var::Z, Var::Y),
            c(1),
            c(2),
            c(3),
            0.32,
        );
        assert_eq!(l3.len(), 3);
        assert_eq!(l3.class_of(Var::Z), Some(c(3)));
        assert!(!l3.is_empty());
    }

    #[test]
    fn significance_defaults_to_weight_and_overrides() {
        let head = Atom::new(r(1), Var::X, Var::Y);
        let rule = HornRule::length2(head, Atom::new(r(2), Var::X, Var::Y), c(1), c(2), 1.4);
        assert_eq!(rule.significance, 1.4);
        let rule = rule.with_significance(0.7);
        assert_eq!(rule.significance, 0.7);
    }

    #[test]
    fn functionality_alpha_roundtrip() {
        assert_eq!(Functionality::TypeI.alpha(), 1);
        assert_eq!(Functionality::from_alpha(2), Some(Functionality::TypeII));
        assert_eq!(Functionality::from_alpha(3), None);
    }

    #[test]
    fn constraint_builders() {
        let fc = FunctionalConstraint::type1(r(5)).with_degree(3);
        assert_eq!(fc.degree, 3);
        assert_eq!(fc.functionality, Functionality::TypeI);
        // Degree is clamped to at least 1.
        assert_eq!(FunctionalConstraint::type2(r(5)).with_degree(0).degree, 1);
    }

    #[test]
    fn var_display() {
        assert_eq!(Var::X.to_string(), "x");
        assert_eq!(Var::Y.to_string(), "y");
        assert_eq!(Var::Z.to_string(), "z");
    }
}
