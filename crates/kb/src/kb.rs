//! The probabilistic knowledge base `Γ = (E, C, R, Π, H, Ω)` and its
//! builder (Definition 1).

use std::collections::{HashMap, HashSet};


use crate::ids::{ClassId, EntityId, RelationId};
use crate::interner::Dictionary;
use crate::model::{Fact, FunctionalConstraint, Functionality, HornRule};

/// Summary statistics (the shape of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KbStats {
    /// `|E|` — number of entities.
    pub entities: usize,
    /// `|C|` — number of classes.
    pub classes: usize,
    /// `|R|` — number of relation names.
    pub relations: usize,
    /// `|Π|` — number of weighted facts.
    pub facts: usize,
    /// `|H|` — number of inference rules.
    pub rules: usize,
    /// `|Ω|` — number of semantic constraints.
    pub constraints: usize,
}

/// An immutable probabilistic knowledge base.
#[derive(Debug, Clone)]
pub struct ProbKb {
    /// Entity dictionary (`DE`).
    pub entities: Dictionary,
    /// Class dictionary (`DC`).
    pub classes: Dictionary,
    /// Relation dictionary (`DR`).
    pub relations: Dictionary,
    /// Class memberships: `members[c]` is the set of entities in class `c`
    /// (the `TC` relation, Definition 2).
    pub members: Vec<HashSet<EntityId>>,
    /// Subclass edges `(sub, super)` — `Ci ⊆ Cj` (Remark 1's hierarchy).
    pub subclass_edges: Vec<(ClassId, ClassId)>,
    /// Typed relation signatures `R(C1, C2)` (the `TR` relation,
    /// Definition 3). One relation name may have several signatures.
    pub signatures: HashSet<(RelationId, ClassId, ClassId)>,
    /// The weighted facts Π.
    pub facts: Vec<Fact>,
    /// The deductive inference rules H.
    pub rules: Vec<HornRule>,
    /// The semantic constraints Ω.
    pub constraints: Vec<FunctionalConstraint>,
}

impl ProbKb {
    /// Start building a knowledge base.
    pub fn builder() -> KbBuilder {
        KbBuilder::default()
    }

    /// Summary statistics.
    pub fn stats(&self) -> KbStats {
        KbStats {
            entities: self.entities.len(),
            classes: self.classes.len(),
            relations: self.relations.len(),
            facts: self.facts.len(),
            rules: self.rules.len(),
            constraints: self.constraints.len(),
        }
    }

    /// True if entity `e` belongs to class `c`, directly or through the
    /// subclass hierarchy (membership in a subclass implies membership in
    /// its superclasses, since `Ci ⊆ Cj`).
    pub fn is_member(&self, e: EntityId, c: ClassId) -> bool {
        if self
            .members
            .get(c.raw() as usize)
            .is_some_and(|m| m.contains(&e))
        {
            return true;
        }
        // Walk subclasses of c: e ∈ sub ⊆ c ⇒ e ∈ c.
        let mut stack: Vec<ClassId> = self
            .subclass_edges
            .iter()
            .filter(|(_, sup)| *sup == c)
            .map(|(sub, _)| *sub)
            .collect();
        let mut seen: HashSet<ClassId> = stack.iter().copied().collect();
        while let Some(cur) = stack.pop() {
            if self
                .members
                .get(cur.raw() as usize)
                .is_some_and(|m| m.contains(&e))
            {
                return true;
            }
            for (sub, sup) in &self.subclass_edges {
                if *sup == cur && seen.insert(*sub) {
                    stack.push(*sub);
                }
            }
        }
        false
    }

    /// True if `sub` is a (transitive) subclass of `sup`.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen: HashSet<ClassId> = HashSet::new();
        while let Some(cur) = stack.pop() {
            for (s, p) in &self.subclass_edges {
                if *s == cur {
                    if *p == sup {
                        return true;
                    }
                    if seen.insert(*p) {
                        stack.push(*p);
                    }
                }
            }
        }
        false
    }

    /// Validate internal consistency; returns a list of human-readable
    /// problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, fact) in self.facts.iter().enumerate() {
            if self.relations.resolve(fact.rel.raw()).is_none() {
                problems.push(format!("fact {i}: unknown relation {}", fact.rel));
            }
            if self.entities.resolve(fact.x.raw()).is_none() {
                problems.push(format!("fact {i}: unknown subject {}", fact.x));
            }
            if self.entities.resolve(fact.y.raw()).is_none() {
                problems.push(format!("fact {i}: unknown object {}", fact.y));
            }
            if !self.signatures.contains(&(fact.rel, fact.c1, fact.c2)) {
                problems.push(format!(
                    "fact {i}: no signature for relation {} with classes ({}, {})",
                    fact.rel, fact.c1, fact.c2
                ));
            }
            if !self.is_member(fact.x, fact.c1) {
                problems.push(format!("fact {i}: subject {} not in class {}", fact.x, fact.c1));
            }
            if !self.is_member(fact.y, fact.c2) {
                problems.push(format!("fact {i}: object {} not in class {}", fact.y, fact.c2));
            }
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.body.is_empty() || rule.body.len() > 2 {
                problems.push(format!("rule {i}: body length {}", rule.body.len()));
            }
            if rule.body.len() == 2 && rule.cz.is_none() {
                problems.push(format!("rule {i}: length-3 clause missing z class"));
            }
        }
        for (i, fc) in self.constraints.iter().enumerate() {
            if self.relations.resolve(fc.rel.raw()).is_none() {
                problems.push(format!("constraint {i}: unknown relation {}", fc.rel));
            }
            if fc.degree == 0 {
                problems.push(format!("constraint {i}: zero degree"));
            }
        }
        problems
    }

    /// Resolve a fact to a readable string for logs and examples.
    pub fn fact_to_string(&self, fact: &Fact) -> String {
        let rel = self.relations.resolve(fact.rel.raw()).unwrap_or("?");
        let x = self.entities.resolve(fact.x.raw()).unwrap_or("?");
        let y = self.entities.resolve(fact.y.raw()).unwrap_or("?");
        match fact.weight {
            Some(w) => format!("{w:.2} {rel}({x}, {y})"),
            None => format!("{rel}({x}, {y})"),
        }
    }
}

/// Mutable builder with a string-oriented API; interns names on the fly.
#[derive(Debug, Default)]
pub struct KbBuilder {
    entities: Dictionary,
    classes: Dictionary,
    relations: Dictionary,
    members: Vec<HashSet<EntityId>>,
    subclass_edges: Vec<(ClassId, ClassId)>,
    signatures: HashSet<(RelationId, ClassId, ClassId)>,
    facts: Vec<Fact>,
    fact_keys: HashMap<(RelationId, EntityId, ClassId, EntityId, ClassId), usize>,
    rules: Vec<HornRule>,
    constraints: Vec<FunctionalConstraint>,
}

impl KbBuilder {
    /// Resume building from an existing KB: dictionaries, memberships,
    /// signatures, facts, rules, and constraints are all carried over
    /// (with the fact-dedup index rebuilt), so later statements intern
    /// against the same id space. This is how a live [`DeltaSession`]
    /// parses delta text: names already known keep their ids, new names
    /// are appended.
    ///
    /// [`DeltaSession`]: https://docs.rs/probkb-core
    pub fn from_kb(kb: ProbKb) -> KbBuilder {
        // First occurrence wins, matching `push_fact`'s dedup index.
        let mut fact_keys = HashMap::new();
        for (pos, f) in kb.facts.iter().enumerate() {
            fact_keys.entry(f.key()).or_insert(pos);
        }
        KbBuilder {
            entities: kb.entities,
            classes: kb.classes,
            relations: kb.relations,
            members: kb.members,
            subclass_edges: kb.subclass_edges,
            signatures: kb.signatures,
            facts: kb.facts,
            fact_keys,
            rules: kb.rules,
            constraints: kb.constraints,
        }
    }

    /// Intern (or fetch) a class by name.
    pub fn class(&mut self, name: &str) -> ClassId {
        let id = ClassId(self.classes.intern(name));
        while self.members.len() <= id.raw() as usize {
            self.members.push(HashSet::new());
        }
        id
    }

    /// Intern (or fetch) an entity by name.
    pub fn entity(&mut self, name: &str) -> EntityId {
        EntityId(self.entities.intern(name))
    }

    /// Intern (or fetch) a relation name.
    pub fn relation(&mut self, name: &str) -> RelationId {
        RelationId(self.relations.intern(name))
    }

    /// Intern an entity and add it to a class.
    pub fn entity_in(&mut self, entity: &str, class: &str) -> EntityId {
        let e = self.entity(entity);
        let c = self.class(class);
        self.members[c.raw() as usize].insert(e);
        e
    }

    /// Declare `sub ⊆ sup`.
    pub fn subclass(&mut self, sub: &str, sup: &str) {
        let sub = self.class(sub);
        let sup = self.class(sup);
        if !self.subclass_edges.contains(&(sub, sup)) {
            self.subclass_edges.push((sub, sup));
        }
    }

    /// Declare a typed relation signature `rel(c1, c2)`.
    pub fn signature(&mut self, rel: &str, c1: &str, c2: &str) -> RelationId {
        let r = self.relation(rel);
        let c1 = self.class(c1);
        let c2 = self.class(c2);
        self.signatures.insert((r, c1, c2));
        r
    }

    /// Add a weighted fact `w :: rel((x, c1), (y, c2))`, registering
    /// memberships and the signature as a side effect. Duplicate fact keys
    /// keep the first weight. Returns the fact's position.
    pub fn fact(
        &mut self,
        weight: f64,
        rel: &str,
        subject: (&str, &str),
        object: (&str, &str),
    ) -> usize {
        let r = self.signature(rel, subject.1, object.1);
        let x = self.entity_in(subject.0, subject.1);
        let y = self.entity_in(object.0, object.1);
        let c1 = self.class(subject.1);
        let c2 = self.class(object.1);
        let key = (r, x, c1, y, c2);
        if let Some(&pos) = self.fact_keys.get(&key) {
            return pos;
        }
        let pos = self.facts.len();
        self.facts.push(Fact::new(r, x, c1, y, c2, weight));
        self.fact_keys.insert(key, pos);
        pos
    }

    /// Add a pre-built fact (ids must come from this builder).
    pub fn push_fact(&mut self, fact: Fact) -> usize {
        let pos = self.facts.len();
        self.fact_keys.entry(fact.key()).or_insert(pos);
        self.facts.push(fact);
        pos
    }

    /// Add a pre-built rule.
    pub fn push_rule(&mut self, rule: HornRule) -> usize {
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// Add a functional constraint on a relation by name.
    pub fn functional(&mut self, rel: &str, functionality: Functionality, degree: u32) {
        let rel = self.relation(rel);
        self.constraints.push(FunctionalConstraint {
            rel,
            classes: None,
            functionality,
            degree: degree.max(1),
        });
    }

    /// Add a functional constraint restricted to one class pair
    /// (Definition 11's optional `(C1, C2)` component).
    pub fn functional_on(
        &mut self,
        rel: &str,
        c1: &str,
        c2: &str,
        functionality: Functionality,
        degree: u32,
    ) {
        let rel = self.relation(rel);
        let c1 = self.class(c1);
        let c2 = self.class(c2);
        self.constraints.push(FunctionalConstraint {
            rel,
            classes: Some((c1, c2)),
            functionality,
            degree: degree.max(1),
        });
    }

    /// Add a pre-built constraint.
    pub fn push_constraint(&mut self, fc: FunctionalConstraint) {
        self.constraints.push(fc);
    }

    /// Number of facts added so far.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Number of rules added so far.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Finish building.
    pub fn build(self) -> ProbKb {
        ProbKb {
            entities: self.entities,
            classes: self.classes,
            relations: self.relations,
            members: self.members,
            subclass_edges: self.subclass_edges,
            signatures: self.signatures,
            facts: self.facts,
            rules: self.rules,
            constraints: self.constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Atom, Var};

    fn sample() -> ProbKb {
        let mut b = ProbKb::builder();
        b.fact(
            0.96,
            "born_in",
            ("Ruth_Gruber", "Writer"),
            ("New_York_City", "City"),
        );
        b.fact(
            0.93,
            "born_in",
            ("Ruth_Gruber", "Writer"),
            ("Brooklyn", "Place"),
        );
        b.functional("born_in", Functionality::TypeI, 1);
        b.subclass("City", "Place");
        let live_in = b.signature("live_in", "Writer", "City");
        let born_in = b.relation("born_in");
        let w = b.class("Writer");
        let c = b.class("City");
        b.push_rule(HornRule::length2(
            Atom::new(live_in, Var::X, Var::Y),
            Atom::new(born_in, Var::X, Var::Y),
            w,
            c,
            1.53,
        ));
        b.build()
    }

    #[test]
    fn builder_interns_and_counts() {
        let kb = sample();
        let stats = kb.stats();
        assert_eq!(stats.entities, 3);
        assert_eq!(stats.classes, 3);
        assert_eq!(stats.relations, 2);
        assert_eq!(stats.facts, 2);
        assert_eq!(stats.rules, 1);
        assert_eq!(stats.constraints, 1);
    }

    #[test]
    fn duplicate_facts_collapse() {
        let mut b = ProbKb::builder();
        let first = b.fact(0.9, "r", ("a", "A"), ("b", "B"));
        let second = b.fact(0.1, "r", ("a", "A"), ("b", "B"));
        assert_eq!(first, second);
        let kb = b.build();
        assert_eq!(kb.facts.len(), 1);
        assert_eq!(kb.facts[0].weight, Some(0.9)); // first wins
    }

    #[test]
    fn membership_direct_and_via_hierarchy() {
        let kb = sample();
        let rg = EntityId(kb.entities.get("Ruth_Gruber").unwrap());
        let writer = ClassId(kb.classes.get("Writer").unwrap());
        let city = ClassId(kb.classes.get("City").unwrap());
        let place = ClassId(kb.classes.get("Place").unwrap());
        let nyc = EntityId(kb.entities.get("New_York_City").unwrap());
        assert!(kb.is_member(rg, writer));
        assert!(!kb.is_member(rg, city));
        // NYC is a City, and City ⊆ Place, so NYC is a Place.
        assert!(kb.is_member(nyc, city));
        assert!(kb.is_member(nyc, place));
        assert!(kb.is_subclass(city, place));
        assert!(!kb.is_subclass(place, city));
        assert!(kb.is_subclass(city, city));
    }

    #[test]
    fn validate_accepts_wellformed_kb() {
        let kb = sample();
        assert!(kb.validate().is_empty(), "{:?}", kb.validate());
    }

    #[test]
    fn validate_flags_broken_facts() {
        let mut b = ProbKb::builder();
        b.fact(0.9, "r", ("a", "A"), ("b", "B"));
        let mut kb = b.build();
        // Corrupt: fact referencing a class the subject is not in.
        kb.facts[0].c1 = ClassId(1); // class "B"
        let problems = kb.validate();
        assert!(!problems.is_empty());
        assert!(problems.iter().any(|p| p.contains("not in class")
            || p.contains("no signature")));
    }

    #[test]
    fn fact_to_string_resolves_names() {
        let kb = sample();
        let s = kb.fact_to_string(&kb.facts[0]);
        assert_eq!(s, "0.96 born_in(Ruth_Gruber, New_York_City)");
    }

    #[test]
    fn subclass_is_transitive() {
        let mut b = ProbKb::builder();
        b.subclass("Town", "City");
        b.subclass("City", "Place");
        b.entity_in("Gainesville", "Town");
        let kb = b.build();
        let town = ClassId(kb.classes.get("Town").unwrap());
        let place = ClassId(kb.classes.get("Place").unwrap());
        let g = EntityId(kb.entities.get("Gainesville").unwrap());
        assert!(kb.is_subclass(town, place));
        assert!(kb.is_member(g, place));
    }
}
