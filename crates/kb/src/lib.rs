//! # probkb-kb
//!
//! The probabilistic knowledge base model of the ProbKB paper
//! (Definition 1): a KB is a 5-tuple `Γ = (E, C, R, Π, L)` of entities,
//! classes, typed relations, weighted facts, and weighted Horn rules,
//! where the rule set `L = (H, Ω)` splits into deductive rules and
//! semantic constraints.
//!
//! This crate provides:
//!
//! * dictionary-encoded ids ([`ids`], [`interner`]) — the `DX` tables;
//! * the typed model ([`model`]): facts with explicit argument classes,
//!   Horn clauses over variables `x, y, z`, and Type-I/II
//!   (pseudo-)functional constraints;
//! * structural-equivalence partitioning ([`pattern`]) into the paper's
//!   six rule classes `M1..M6` — the enabling step for batch grounding;
//! * a builder and validator ([`kb`]) plus a line-oriented text format
//!   ([`parser`]).
//!
//! ```
//! use probkb_kb::prelude::*;
//!
//! let kb = parse(r#"
//!     fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
//!     rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
//!     functional born_in 1 1
//! "#).unwrap().build();
//! assert_eq!(kb.stats().facts, 1);
//! assert!(kb.validate().is_empty());
//! ```

#![warn(missing_docs)]

pub mod ids;
pub mod interner;
pub mod io;
pub mod kb;
pub mod model;
pub mod parser;
pub mod pattern;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::ids::{ClassId, EntityId, FactId, RelationId, RuleId};
    pub use crate::interner::Dictionary;
    pub use crate::io::{
        from_json as kb_from_json, load_triples_into, to_json as kb_to_json,
        to_text as kb_to_text,
    };
    pub use crate::kb::{KbBuilder, KbStats, ProbKb};
    pub use crate::model::{Atom, Fact, FunctionalConstraint, Functionality, HornRule, Var};
    pub use crate::parser::{parse, parse_into, ParseError};
    pub use crate::pattern::{classify, Classified, PatternError, Partitioning, RulePattern};
}
