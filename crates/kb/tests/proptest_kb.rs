//! Property tests for the KB model: dictionaries, pattern classification,
//! and text/JSON round-trips.

use probkb_support::check::prelude::*;

use probkb_kb::io::{from_json, to_json, to_text};
use probkb_kb::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,10}"
}

proptest! {
    /// Interning any sequence of names yields consistent, dense ids.
    #[test]
    fn dictionary_is_consistent(names in prop::collection::vec(arb_name(), 1..40)) {
        let mut d = Dictionary::new();
        let ids: Vec<u32> = names.iter().map(|n| d.intern(n)).collect();
        // Same name → same id; resolve inverts intern.
        for (name, &id) in names.iter().zip(ids.iter()) {
            prop_assert_eq!(d.get(name), Some(id));
            prop_assert_eq!(d.resolve(id), Some(name.as_str()));
        }
        // Ids are dense 0..len.
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        prop_assert_eq!(d.len(), distinct.len());
        prop_assert!(ids.iter().all(|&i| (i as usize) < d.len()));
    }

    /// Every pattern's body layout classifies back to itself, for any
    /// relation ids.
    #[test]
    fn patterns_roundtrip_classification(
        r1 in 0u32..50,
        r2 in 0u32..50,
        r3 in 0u32..50,
        weight in 0.01f64..5.0,
    ) {
        for pattern in RulePattern::ALL {
            let head = Atom::new(RelationId(r1), Var::X, Var::Y);
            let (l1, l2) = pattern.body_layout();
            let rule = match l2 {
                None => HornRule::length2(
                    head,
                    Atom::new(RelationId(r2), l1.0, l1.1),
                    ClassId(0),
                    ClassId(1),
                    weight,
                ),
                Some(l2) => HornRule::length3(
                    head,
                    Atom::new(RelationId(r2), l1.0, l1.1),
                    Atom::new(RelationId(r3), l2.0, l2.1),
                    ClassId(0),
                    ClassId(1),
                    ClassId(2),
                    weight,
                ),
            };
            let classified = classify(&rule).unwrap();
            prop_assert_eq!(classified.pattern, pattern);
        }
    }

    /// Random fact sets round-trip through the text format.
    #[test]
    fn facts_roundtrip_text(
        facts in prop::collection::vec(
            (arb_name(), arb_name(), arb_name(), arb_name(), arb_name(), 0.01f64..2.0),
            1..25,
        ),
    ) {
        let mut b = ProbKb::builder();
        for (rel, x, cx, y, cy, w) in &facts {
            b.fact(*w, rel, (x, cx), (y, cy));
        }
        let kb = b.build();
        let back = parse(&to_text(&kb)).unwrap().build();
        prop_assert_eq!(back.stats(), kb.stats());
        let strings = |k: &ProbKb| {
            let mut v: Vec<String> = k.facts.iter().map(|f| k.fact_to_string(f)).collect();
            v.sort();
            v
        };
        prop_assert_eq!(strings(&back), strings(&kb));
        prop_assert!(back.validate().is_empty());
    }

    /// JSON snapshots are exact for any built KB.
    #[test]
    fn kb_json_roundtrip(
        facts in prop::collection::vec(
            (arb_name(), arb_name(), arb_name(), 0.01f64..2.0),
            0..15,
        ),
        degree in 1u32..4,
    ) {
        let mut b = ProbKb::builder();
        for (rel, x, y, w) in &facts {
            b.fact(*w, rel, (x, "C1"), (y, "C2"));
        }
        if let Some((rel, _, _, _)) = facts.first() {
            b.functional(rel, Functionality::TypeI, degree);
        }
        let kb = b.build();
        let back = from_json(&to_json(&kb)).unwrap();
        prop_assert_eq!(back.stats(), kb.stats());
        prop_assert_eq!(&back.facts, &kb.facts);
        prop_assert_eq!(&back.constraints, &kb.constraints);
    }

    /// Membership via subclass chains is reflexive-transitive and agrees
    /// with direct membership.
    #[test]
    fn subclass_chains(depth in 1usize..6) {
        let mut b = ProbKb::builder();
        for level in 0..depth {
            b.subclass(&format!("C{level}"), &format!("C{}", level + 1));
        }
        b.entity_in("e", "C0");
        let kb = b.build();
        let e = EntityId(kb.entities.get("e").unwrap());
        for level in 0..=depth {
            let c = ClassId(kb.classes.get(&format!("C{level}")).unwrap());
            prop_assert!(kb.is_member(e, c), "e should be in C{level}");
            prop_assert!(kb.is_subclass(ClassId(kb.classes.get("C0").unwrap()), c));
        }
    }
}
