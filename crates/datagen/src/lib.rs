//! # probkb-datagen
//!
//! Workload generators for the ProbKB experiments. The paper's datasets
//! (ReVerb Wikipedia extractions, Sherlock rules, Leibniz constraints)
//! are proprietary; these generators reproduce their *statistical shape*
//! — skew, typing, rule-pattern mix, constraint coverage — plus exact
//! ground truth, which the originals never had.
//!
//! * [`table1`] — the paper's running example (Ruth Gruber).
//! * [`reverb`] — scaled ReVerb-Sherlock-style KBs (Table 2's shape).
//! * [`synthetic`] — the S1 (rule sweep) and S2 (fact sweep) workloads.
//! * [`errors`] — error injection (E1/E2/E3 + synonyms) with ground truth
//!   for the quality experiments (Figure 7).
//! * [`zipf`] — the skew machinery.

#![warn(missing_docs)]

pub mod errors;
pub mod reverb;
pub mod synthetic;
pub mod table1;
pub mod zipf;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::errors::{inject, CorruptedKb, ErrorConfig};
    pub use crate::reverb::{generate, ReverbConfig};
    pub use crate::synthetic::{s1_with_rules, s2_with_facts};
    pub use crate::table1::{table1_kb, TABLE1_TEXT};
    pub use crate::zipf::Zipf;
}
