//! Error injection with exact ground truth (§5's error sources E1–E3).
//!
//! Starting from a clean KB whose true world is computable (the clean
//! extractions plus their closure under the clean rules), this module
//! injects the paper's error families — incorrect extractions (E1),
//! incorrect rules (E2), ambiguous entities (E3), and synonyms — while
//! recording exactly what was injected and which derived facts each error
//! family produces. Quality experiments then *measure* precision instead
//! of sampling human judgments.

use std::collections::HashSet;

use probkb_support::rng::{Rng, SeedableRng, StdRng};

use probkb_core::prelude::{ground, tpi, GroundingConfig, SingleNodeEngine};
use probkb_kb::prelude::*;
use probkb_quality::prelude::{FactKey, GroundTruth};
use probkb_relational::prelude::Table;

/// Error injection parameters.
#[derive(Debug, Clone)]
pub struct ErrorConfig {
    /// Number of incorrect rules to inject (E2).
    pub wrong_rules: usize,
    /// Number of entity pairs merged under one name (E3).
    pub ambiguous_merges: usize,
    /// Number of incorrect extractions to add (E1).
    pub error_facts: usize,
    /// Number of synonym facts to add (same object, second name).
    pub synonym_pairs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Iteration cap for the closure computations.
    pub closure_iterations: usize,
    /// Fact cap for the closure computations (wrong rules can blow up).
    pub closure_cap: usize,
}

impl ErrorConfig {
    /// Defaults proportioned like the paper's observed error mix.
    pub fn for_kb(kb: &ProbKb) -> Self {
        let f = kb.facts.len();
        let r = kb.rules.len();
        ErrorConfig {
            wrong_rules: (r / 5).max(1),
            ambiguous_merges: (f / 30).max(1),
            error_facts: (f / 20).max(1),
            synonym_pairs: (f / 100).max(1),
            seed: 7,
            closure_iterations: 6,
            closure_cap: f.saturating_mul(30).max(10_000),
        }
    }
}

/// A corrupted KB plus its ground truth.
#[derive(Debug)]
pub struct CorruptedKb {
    /// The KB with injected errors.
    pub kb: ProbKb,
    /// What is actually true, and what was injected.
    pub truth: GroundTruth,
}

fn keys_of_snapshot(facts: &Table) -> (HashSet<FactKey>, HashSet<FactKey>) {
    let mut base = HashSet::new();
    let mut derived = HashSet::new();
    for row in facts.rows() {
        let key: FactKey = [
            row[tpi::R].as_int().expect("R"),
            row[tpi::X].as_int().expect("x"),
            row[tpi::C1].as_int().expect("C1"),
            row[tpi::Y].as_int().expect("y"),
            row[tpi::C2].as_int().expect("C2"),
        ];
        if row[tpi::W].is_null() {
            derived.insert(key);
        } else {
            base.insert(key);
        }
    }
    (base, derived)
}

fn closure_keys(kb: &ProbKb, config: &ErrorConfig) -> (HashSet<FactKey>, HashSet<FactKey>) {
    let mut engine = SingleNodeEngine::new();
    let gc = GroundingConfig {
        max_iterations: config.closure_iterations,
        preclean: false,
        apply_constraints: false,
        max_total_facts: Some(config.closure_cap),
        threads: None,
        optimize: None,
    };
    let out = ground(kb, &mut engine, &gc).expect("closure grounding");
    keys_of_snapshot(&out.facts)
}

/// Inject errors into a clean KB.
pub fn inject(clean: &ProbKb, config: &ErrorConfig) -> CorruptedKb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut truth = GroundTruth::default();

    // The true world: clean extractions are Correct, their closure under
    // the clean rules is Probable (derived but trusted).
    let (true_base, true_derived) = closure_keys(clean, config);
    truth.true_keys = true_base;
    truth.probable_keys = true_derived;

    let mut kb = clean.clone();
    let correct_rule_count = kb.rules.len();

    // E3: merge pairs of entities under one name. All facts of `gone`
    // are rewritten to `kept`, which then denotes two objects.
    let entity_count = kb.entities.len() as u32;
    for _ in 0..config.ambiguous_merges {
        if entity_count < 2 {
            break;
        }
        let kept = EntityId(rng.random_range(0..entity_count));
        let gone = EntityId(rng.random_range(0..entity_count));
        if kept == gone {
            continue;
        }
        // `kept` inherits `gone`'s class memberships so facts stay typed.
        for members in kb.members.iter_mut() {
            if members.contains(&gone) {
                members.insert(kept);
            }
        }
        for fact in kb.facts.iter_mut() {
            if fact.x == gone {
                fact.x = kept;
            }
            if fact.y == gone {
                fact.y = kept;
            }
        }
        truth.ambiguous_entities.insert(kept.as_i64());
    }

    // Synonyms: duplicate an existing fact with the object renamed to a
    // fresh name denoting the same object. The duplicate is acceptable
    // (Probable) but trips functional constraints.
    for s in 0..config.synonym_pairs {
        if kb.facts.is_empty() {
            break;
        }
        let idx = rng.random_range(0..kb.facts.len());
        let fact = kb.facts[idx];
        let original = kb.entities.resolve(fact.y.raw()).unwrap_or("e").to_string();
        let syn = EntityId(kb.entities.intern(&format!("{original}__syn{s}")));
        if let Some(members) = kb.members.get_mut(fact.c2.raw() as usize) {
            members.insert(syn);
        }
        let mut dup = fact;
        dup.y = syn;
        kb.facts.push(dup);
        truth.synonym_entities.insert(syn.as_i64());
        let key: FactKey = [
            dup.rel.as_i64(),
            dup.x.as_i64(),
            dup.c1.as_i64(),
            dup.y.as_i64(),
            dup.c2.as_i64(),
        ];
        truth.probable_keys.insert(key);
    }

    // E1: incorrect extractions — rewire existing facts to random
    // entities of the same classes.
    let mut class_members: Vec<Vec<EntityId>> = kb
        .members
        .iter()
        .map(|m| {
            let mut v: Vec<EntityId> = m.iter().copied().collect();
            v.sort();
            v
        })
        .collect();
    for _ in 0..config.error_facts {
        if kb.facts.is_empty() {
            break;
        }
        let template = kb.facts[rng.random_range(0..kb.facts.len())];
        let xs = &class_members[template.c1.raw() as usize];
        let ys = &class_members[template.c2.raw() as usize];
        if xs.is_empty() || ys.is_empty() {
            continue;
        }
        let mut bad = template;
        bad.x = xs[rng.random_range(0..xs.len())];
        bad.y = ys[rng.random_range(0..ys.len())];
        bad.weight = Some(0.5 + 0.5 * rng.random::<f64>());
        let key: FactKey = [
            bad.rel.as_i64(),
            bad.x.as_i64(),
            bad.c1.as_i64(),
            bad.y.as_i64(),
            bad.c2.as_i64(),
        ];
        if truth.true_keys.contains(&key) || truth.probable_keys.contains(&key) {
            continue; // accidentally true — not an error
        }
        kb.facts.push(bad);
        truth.error_fact_keys.insert(key);
    }
    class_members.clear();

    // E2: incorrect rules — existing rules with a substituted head
    // relation. Scores overlap the clean rules' range so cleaning is a
    // real trade-off (§6.2.3's observation).
    let relation_count = kb.relations.len() as u32;
    for _ in 0..config.wrong_rules {
        if kb.rules.is_empty() || relation_count == 0 {
            break;
        }
        let template = kb.rules[rng.random_range(0..correct_rule_count)].clone();
        let new_head = RelationId(rng.random_range(0..relation_count));
        if new_head == template.head.rel {
            continue;
        }
        let mut wrong = template;
        wrong.head = Atom::new(new_head, Var::X, Var::Y);
        wrong.significance = 0.7 * rng.random::<f64>();
        // Register the fabricated head signature so the KB stays valid.
        kb.signatures.insert((new_head, wrong.cx, wrong.cy));
        truth.wrong_rule_ids.insert(kb.rules.len());
        kb.rules.push(wrong);
    }

    // Attribution closures: what does each error family produce?
    let mut correct_rules_kb = kb.clone();
    correct_rules_kb.rules.truncate(correct_rule_count);
    let (_, derived_correct) = closure_keys(&correct_rules_kb, config);
    let (_, derived_all) = closure_keys(&kb, config);

    truth.ambiguity_products = derived_correct
        .iter()
        .filter(|k| {
            !truth.true_keys.contains(*k)
                && !truth.probable_keys.contains(*k)
                && !truth.error_fact_keys.contains(*k)
        })
        .copied()
        .collect();
    truth.wrong_rule_products = derived_all
        .difference(&derived_correct)
        .filter(|k| !truth.true_keys.contains(*k) && !truth.probable_keys.contains(*k))
        .copied()
        .collect();

    CorruptedKb { kb, truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverb::{generate, ReverbConfig};

    fn corrupted() -> CorruptedKb {
        let clean = generate(&ReverbConfig::tiny());
        let config = ErrorConfig {
            wrong_rules: 8,
            ambiguous_merges: 6,
            error_facts: 15,
            synonym_pairs: 3,
            seed: 3,
            closure_iterations: 4,
            closure_cap: 20_000,
        };
        inject(&clean, &config)
    }

    #[test]
    fn injection_records_what_it_did() {
        let c = corrupted();
        assert!(!c.truth.true_keys.is_empty());
        assert!(!c.truth.wrong_rule_ids.is_empty());
        assert!(!c.truth.ambiguous_entities.is_empty());
        assert!(!c.truth.error_fact_keys.is_empty());
        assert!(!c.truth.synonym_entities.is_empty());
        // Injected wrong rules are appended after the clean rules.
        let clean_rules = generate(&ReverbConfig::tiny()).rules.len();
        assert!(c.truth.wrong_rule_ids.iter().all(|&i| i >= clean_rules));
        assert_eq!(
            c.kb.rules.len(),
            clean_rules + c.truth.wrong_rule_ids.len()
        );
    }

    #[test]
    fn corrupted_kb_still_validates() {
        let c = corrupted();
        assert!(c.kb.validate().is_empty(), "{:?}", c.kb.validate());
    }

    #[test]
    fn error_facts_are_judged_incorrect() {
        let c = corrupted();
        for key in &c.truth.error_fact_keys {
            assert!(!c.truth.is_acceptable(key));
        }
    }

    #[test]
    fn wrong_rule_products_are_disjoint_from_truth() {
        let c = corrupted();
        for key in &c.truth.wrong_rule_products {
            assert!(!c.truth.true_keys.contains(key));
            assert!(!c.truth.probable_keys.contains(key));
        }
        for key in &c.truth.ambiguity_products {
            assert!(!c.truth.true_keys.contains(key));
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let a = corrupted();
        let b = corrupted();
        assert_eq!(a.kb.facts.len(), b.kb.facts.len());
        assert_eq!(a.truth.error_fact_keys, b.truth.error_fact_keys);
        assert_eq!(a.truth.wrong_rule_ids, b.truth.wrong_rule_ids);
    }

    #[test]
    fn corrupted_grounding_has_lower_precision_than_clean() {
        use probkb_quality::prelude::evaluate;
        let c = corrupted();
        let mut engine = SingleNodeEngine::new();
        let gc = GroundingConfig {
            max_iterations: 4,
            apply_constraints: false,
            max_total_facts: Some(30_000),
            ..GroundingConfig::default()
        };
        let out = ground(&c.kb, &mut engine, &gc).unwrap();
        let eval = evaluate(&out, &c.truth);
        assert!(eval.inferred > 0);
        assert!(
            eval.precision < 0.95,
            "errors should hurt precision, got {}",
            eval.precision
        );
    }
}
