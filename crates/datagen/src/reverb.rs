//! A synthetic ReVerb-Sherlock-style knowledge base (§6's primary
//! dataset, Table 2).
//!
//! The generator reproduces the *statistical shape* that drives the
//! paper's performance results rather than the corpus content: Zipf-skewed
//! relation frequencies (a few relations carry most facts), typed entities
//! grouped into classes, Horn rules drawn from exactly the six structural
//! patterns and concentrated on frequent relations (as Sherlock's learned
//! rules are), and Leibniz-style functional constraints on a fraction of
//! relations.

use probkb_support::rng::{Rng, SeedableRng, StdRng};

use probkb_kb::prelude::*;

use crate::zipf::Zipf;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ReverbConfig {
    /// Number of entities (`|E|`).
    pub entities: usize,
    /// Number of classes (`|C|`).
    pub classes: usize,
    /// Number of relation names (`|R|`).
    pub relations: usize,
    /// Target number of facts (`|Π|`).
    pub facts: usize,
    /// Target number of rules (`|H|`).
    pub rules: usize,
    /// Fraction of relations receiving a functional constraint
    /// (Leibniz learned ~10K constraints for 80K relations ≈ 0.125).
    pub functional_frac: f64,
    /// Of the constrained relations, the fraction that are
    /// pseudo-functional (degree δ in 2..=4).
    pub pseudo_frac: f64,
    /// Zipf exponent for relation/entity frequency skew.
    pub zipf_s: f64,
    /// Zipf exponent for *rule body* relation sampling. Sherlock's rules
    /// skew toward frequent relations, but far less than the facts do;
    /// 0.0 (uniform) reproduces the paper's S1 derivation density of a
    /// few inferred facts per rule.
    pub rule_zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ReverbConfig {
    /// A small configuration for tests and examples.
    pub fn tiny() -> Self {
        ReverbConfig {
            entities: 200,
            classes: 8,
            relations: 30,
            facts: 300,
            rules: 40,
            functional_frac: 0.3,
            pseudo_frac: 0.2,
            zipf_s: 1.05,
            rule_zipf_s: 0.6,
            seed: 42,
        }
    }

    /// Table 2's ReVerb-Sherlock statistics scaled by `scale`
    /// (`scale = 1.0` reproduces the paper's sizes: 277,216 entities,
    /// 82,768 relations, 407,247 facts, 30,912 rules).
    pub fn scaled(scale: f64) -> Self {
        let s = |n: usize| ((n as f64 * scale).round() as usize).max(8);
        ReverbConfig {
            entities: s(277_216),
            classes: s(100).min(2_000),
            relations: s(82_768),
            facts: s(407_247),
            rules: s(30_912),
            functional_frac: 0.125,
            pseudo_frac: 0.2,
            zipf_s: 1.05,
            // The real Sherlock rules concentrate hard on ReVerb's hottest
            // relations — that coupling is what makes the case-study KB
            // "grow unmanageably large" (Table 3's 592M factors).
            rule_zipf_s: 1.05,
            seed: 2014,
        }
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Deterministically generate a clean (error-free) KB.
pub fn generate(config: &ReverbConfig) -> ProbKb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = ProbKb::builder();

    // Classes, with a subclass forest (Remark 1: the class set implies a
    // hierarchy — e.g. City ⊆ Place). Each non-root class gets an earlier
    // class as its parent with probability 1/2.
    let class_names: Vec<String> = (0..config.classes).map(|i| format!("class{i}")).collect();
    let class_ids: Vec<ClassId> = class_names.iter().map(|n| builder.class(n)).collect();
    for c in 1..config.classes {
        if rng.random::<f64>() < 0.5 {
            let parent = rng.random_range(0..c);
            builder.subclass(&class_names[c], &class_names[parent]);
        }
    }
    let class_zipf = Zipf::new(config.classes, config.zipf_s);

    // Relations, each with one primary signature (domain, range).
    let rel_names: Vec<String> = (0..config.relations).map(|i| format!("rel{i}")).collect();
    let mut domain = Vec::with_capacity(config.relations);
    let mut range = Vec::with_capacity(config.relations);
    for name in &rel_names {
        let d = class_zipf.sample(&mut rng);
        let r = class_zipf.sample(&mut rng);
        builder.signature(name, &class_names[d], &class_names[r]);
        domain.push(d);
        range.push(r);
    }
    let rel_zipf = Zipf::new(config.relations, config.zipf_s);
    let rule_rel_zipf = Zipf::new(config.relations, config.rule_zipf_s);

    // Entities: round-robin the first |C| so no class is empty, then Zipf.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); config.classes];
    for e in 0..config.entities {
        let c = if e < config.classes {
            e
        } else {
            class_zipf.sample(&mut rng)
        };
        builder.entity_in(&format!("ent{e}"), &class_names[c]);
        members[c].push(e);
    }

    // Functional constraints first (the Leibniz repository stand-in), so
    // fact generation can respect them: in the paper's data, violations
    // come from *errors*, not from the true world.
    let constrained = ((config.relations as f64) * config.functional_frac) as usize;
    let mut degree_limit: Vec<Option<(Functionality, u32)>> = vec![None; config.relations];
    for (r, limit) in degree_limit.iter_mut().enumerate().take(constrained) {
        let functionality = if rng.random::<f64>() < 0.8 {
            Functionality::TypeI
        } else {
            Functionality::TypeII
        };
        let degree = if rng.random::<f64>() < config.pseudo_frac {
            rng.random_range(2..=4)
        } else {
            1
        };
        builder.functional(&rel_names[r], functionality, degree);
        *limit = Some((functionality, degree));
    }

    // Facts: Zipf relation, entities from the signature classes, degree
    // limits of functional relations enforced.
    let mut key_use: std::collections::HashMap<(usize, usize), u32> =
        std::collections::HashMap::new();
    let mut attempts = 0usize;
    let max_attempts = config.facts.saturating_mul(6).max(64);
    while builder.fact_count() < config.facts && attempts < max_attempts {
        attempts += 1;
        let r = rel_zipf.sample(&mut rng);
        let (d, g) = (domain[r], range[r]);
        if members[d].is_empty() || members[g].is_empty() {
            continue;
        }
        let x = members[d][rng.random_range(0..members[d].len())];
        let y = members[g][rng.random_range(0..members[g].len())];
        if let Some((functionality, degree)) = degree_limit[r] {
            let key = match functionality {
                Functionality::TypeI => (r, x),
                Functionality::TypeII => (r, y),
            };
            let used = key_use.entry(key).or_insert(0);
            if *used >= degree {
                continue;
            }
            *used += 1;
        }
        let w = 0.5 + 0.5 * rng.random::<f64>();
        builder.fact(
            w,
            &rel_names[r],
            (&format!("ent{x}"), &class_names[d]),
            (&format!("ent{y}"), &class_names[g]),
        );
    }

    // Rules across the six patterns, bodies Zipf-concentrated on frequent
    // relations so they actually apply to facts.
    let pattern_weights = [
        (RulePattern::P1, 0.35),
        (RulePattern::P2, 0.10),
        (RulePattern::P3, 0.20),
        (RulePattern::P4, 0.15),
        (RulePattern::P5, 0.10),
        (RulePattern::P6, 0.10),
    ];
    // Indexes for picking a z-compatible second body atom.
    let mut by_domain: Vec<Vec<usize>> = vec![Vec::new(); config.classes];
    let mut by_range: Vec<Vec<usize>> = vec![Vec::new(); config.classes];
    for r in 0..config.relations {
        by_domain[domain[r]].push(r);
        by_range[range[r]].push(r);
    }

    let mut made = 0usize;
    let mut rule_attempts = 0usize;
    let max_rule_attempts = config.rules.saturating_mul(8).max(64);
    while made < config.rules && rule_attempts < max_rule_attempts {
        rule_attempts += 1;
        let pick: f64 = rng.random();
        let mut acc = 0.0;
        let mut pattern = RulePattern::P1;
        for (p, w) in pattern_weights {
            acc += w;
            if pick < acc {
                pattern = p;
                break;
            }
        }
        if let Some(rule) = make_rule(
            pattern,
            &mut rng,
            &rule_rel_zipf,
            &domain,
            &range,
            &by_domain,
            &by_range,
            &class_ids,
            &rel_names,
            &class_names,
            &mut builder,
        ) {
            builder.push_rule(rule);
            made += 1;
        }
    }

    builder.build()
}

#[allow(clippy::too_many_arguments)]
fn make_rule(
    pattern: RulePattern,
    rng: &mut StdRng,
    rel_zipf: &Zipf,
    domain: &[usize],
    range: &[usize],
    by_domain: &[Vec<usize>],
    by_range: &[Vec<usize>],
    class_ids: &[ClassId],
    rel_names: &[String],
    class_names: &[String],
    builder: &mut KbBuilder,
) -> Option<HornRule> {
    let q = rel_zipf.sample(rng);
    let (q_layout, r_layout) = pattern.body_layout();

    // Class of each variable as bound by q.
    let class_of_q_arg = |arg: Var, slot: usize| -> Option<(Var, usize)> {
        Some((arg, if slot == 0 { domain[q] } else { range[q] }))
    };
    let mut cx = None;
    let mut cy = None;
    let mut cz = None;
    for (slot, arg) in [q_layout.0, q_layout.1].into_iter().enumerate() {
        let (v, c) = class_of_q_arg(arg, slot)?;
        match v {
            Var::X => cx = Some(c),
            Var::Y => cy = Some(c),
            Var::Z => cz = Some(c),
        }
    }

    let (r_rel, head_sig) = match r_layout {
        None => (None, (cx?, cy?)),
        Some(r_layout) => {
            // Pick r so its z-position class matches q's z class.
            let zc = cz?;
            let candidates = match r_layout {
                (Var::Z, _) => &by_domain[zc],
                (_, Var::Z) => &by_range[zc],
                _ => return None,
            };
            if candidates.is_empty() {
                return None;
            }
            let r = candidates[rng.random_range(0..candidates.len())];
            // r's non-z argument binds the remaining head variable.
            for (slot, arg) in [r_layout.0, r_layout.1].into_iter().enumerate() {
                let c = if slot == 0 { domain[r] } else { range[r] };
                match arg {
                    Var::X => cx = Some(c),
                    Var::Y => cy = Some(c),
                    Var::Z => {}
                }
            }
            (Some(r), (cx?, cy?))
        }
    };

    // Head relation: Zipf-sampled; skip degenerate self-implications.
    let p = rel_zipf.sample(rng);
    if r_rel.is_none() && p == q && pattern == RulePattern::P1 {
        return None;
    }
    let (hcx, hcy) = head_sig;
    builder.signature(&rel_names[p], &class_names[hcx], &class_names[hcy]);

    let head = Atom::new(builder.relation(&rel_names[p]), Var::X, Var::Y);
    let q_atom = Atom::new(builder.relation(&rel_names[q]), q_layout.0, q_layout.1);
    let weight = 0.2 + 2.3 * rng.random::<f64>();
    let significance = 0.3 + 0.7 * rng.random::<f64>();
    let rule = match r_layout {
        None => HornRule::length2(head, q_atom, class_ids[hcx], class_ids[hcy], weight),
        Some(r_layout) => {
            let r = r_rel.expect("length-3 rules picked r");
            let r_atom = Atom::new(builder.relation(&rel_names[r]), r_layout.0, r_layout.1);
            HornRule::length3(
                head,
                q_atom,
                r_atom,
                class_ids[hcx],
                class_ids[hcy],
                class_ids[cz.expect("length-3 rules bind z")],
                weight,
            )
        }
    };
    Some(rule.with_significance(significance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_kb_hits_targets_and_validates() {
        let kb = generate(&ReverbConfig::tiny());
        let stats = kb.stats();
        assert_eq!(stats.facts, 300);
        assert_eq!(stats.rules, 40);
        assert_eq!(stats.entities, 200);
        assert!(stats.constraints > 0);
        assert!(kb.validate().is_empty(), "{:?}", kb.validate());
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(&ReverbConfig::tiny());
        let b = generate(&ReverbConfig::tiny());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            probkb_quality::prelude::fact_key(&a.facts[0]),
            probkb_quality::prelude::fact_key(&b.facts[0])
        );
        let c = generate(&ReverbConfig::tiny().with_seed(7));
        // Different seed, different content (same targets).
        assert_eq!(c.stats().facts, a.stats().facts);
        let differs = a
            .facts
            .iter()
            .zip(c.facts.iter())
            .any(|(x, y)| x.key() != y.key());
        assert!(differs);
    }

    #[test]
    fn rules_cover_multiple_patterns_and_classify() {
        let kb = generate(&ReverbConfig::tiny());
        let part = Partitioning::build(&kb.rules);
        assert!(part.rejected().is_empty());
        assert!(part.k() >= 3, "expected several patterns, got {}", part.k());
    }

    #[test]
    fn relation_frequencies_are_skewed() {
        let kb = generate(&ReverbConfig::tiny());
        let mut counts = std::collections::HashMap::new();
        for f in &kb.facts {
            *counts.entry(f.rel).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let mean = kb.facts.len() / counts.len().max(1);
        assert!(
            max >= mean * 3,
            "head relation should dominate: max {max}, mean {mean}"
        );
    }

    #[test]
    fn generator_builds_a_class_hierarchy() {
        let kb = generate(&ReverbConfig::tiny());
        assert!(
            !kb.subclass_edges.is_empty(),
            "expected some subclass edges among 8 classes"
        );
        // Membership propagates along an edge: any member of a subclass is
        // a member of its superclass.
        let (sub, sup) = kb.subclass_edges[0];
        assert!(kb.is_subclass(sub, sup));
        if let Some(&e) = kb.members[sub.raw() as usize].iter().next() {
            assert!(kb.is_member(e, sup));
        }
    }

    #[test]
    fn clean_kb_respects_its_own_constraints() {
        // In the true world, violations only come from injected errors.
        let kb = generate(&ReverbConfig::tiny());
        let violators = probkb_quality::prelude::detect_violating_entities(&kb).unwrap();
        assert!(violators.is_empty(), "clean KB has violators: {violators:?}");
    }

    #[test]
    fn scaled_config_matches_table2_at_full_scale() {
        let c = ReverbConfig::scaled(1.0);
        assert_eq!(c.entities, 277_216);
        assert_eq!(c.relations, 82_768);
        assert_eq!(c.facts, 407_247);
        assert_eq!(c.rules, 30_912);
        let small = ReverbConfig::scaled(0.001);
        assert!(small.facts >= 8 && small.facts < 1000);
    }

    #[test]
    fn rules_apply_to_facts() {
        // Grounding the generated KB should infer a reasonable number of
        // new facts (the whole point of concentrating rules on frequent
        // relations).
        use probkb_core::prelude::*;
        let kb = generate(&ReverbConfig::tiny());
        let mut engine = SingleNodeEngine::new();
        let config = GroundingConfig {
            max_iterations: 3,
            apply_constraints: false,
            max_total_facts: Some(50_000),
            ..GroundingConfig::default()
        };
        let out = ground(&kb, &mut engine, &config).unwrap();
        assert!(
            out.report.inferred_facts() > 10,
            "only {} inferred",
            out.report.inferred_facts()
        );
    }
}
