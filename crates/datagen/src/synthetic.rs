//! The S1 and S2 synthetic sweeps (§6).
//!
//! * **S1**: fix the fact set, vary the number of rules (10K → 1M). New
//!   rules are made "by substituting random heads for existing rules",
//!   exactly as the paper describes.
//! * **S2**: fix the rule set, vary the number of facts (100K → 10M).
//!   New facts are "random edges" added to the KB: existing facts rewired
//!   to random entities of the same classes.

use probkb_support::rng::{Rng, SeedableRng, StdRng};

use probkb_kb::prelude::*;

/// S1: extend `base` to `target_rules` rules by head substitution.
/// Returns `base` unchanged when it already has enough rules.
pub fn s1_with_rules(base: &ProbKb, target_rules: usize, seed: u64) -> ProbKb {
    let mut kb = base.clone();
    if kb.rules.is_empty() {
        return kb;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let relation_count = kb.relations.len() as u32;
    let original = kb.rules.len();
    while kb.rules.len() < target_rules {
        let template = kb.rules[rng.random_range(0..original)].clone();
        let new_head = RelationId(rng.random_range(0..relation_count));
        let mut rule = template;
        rule.head = Atom::new(new_head, Var::X, Var::Y);
        // Register the substituted head's signature to keep validity.
        kb.signatures.insert((new_head, rule.cx, rule.cy));
        kb.rules.push(rule);
    }
    kb
}

/// S2: extend `base` to `target_facts` facts by adding random edges.
pub fn s2_with_facts(base: &ProbKb, target_facts: usize, seed: u64) -> ProbKb {
    let mut kb = base.clone();
    if kb.facts.is_empty() {
        return kb;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let class_members: Vec<Vec<EntityId>> = kb
        .members
        .iter()
        .map(|m| {
            let mut v: Vec<EntityId> = m.iter().copied().collect();
            v.sort();
            v
        })
        .collect();
    let original = kb.facts.len();
    let mut attempts = 0usize;
    let max_attempts = target_facts.saturating_mul(4).max(64);
    while kb.facts.len() < target_facts && attempts < max_attempts {
        attempts += 1;
        let template = kb.facts[rng.random_range(0..original)];
        let xs = &class_members[template.c1.raw() as usize];
        let ys = &class_members[template.c2.raw() as usize];
        if xs.is_empty() || ys.is_empty() {
            continue;
        }
        let mut fact = template;
        fact.x = xs[rng.random_range(0..xs.len())];
        fact.y = ys[rng.random_range(0..ys.len())];
        fact.weight = Some(0.5 + 0.5 * rng.random::<f64>());
        kb.facts.push(fact);
    }
    kb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverb::{generate, ReverbConfig};

    #[test]
    fn s1_reaches_target_and_validates() {
        let base = generate(&ReverbConfig::tiny());
        let kb = s1_with_rules(&base, 500, 1);
        assert_eq!(kb.rules.len(), 500);
        assert_eq!(kb.facts.len(), base.facts.len()); // facts untouched
        assert!(kb.validate().is_empty(), "{:?}", kb.validate());
        // All rules still classify into the six patterns.
        let part = Partitioning::build(&kb.rules);
        assert!(part.rejected().is_empty());
        assert_eq!(part.total_rules(), 500);
    }

    #[test]
    fn s2_reaches_target_and_validates() {
        let base = generate(&ReverbConfig::tiny());
        let kb = s2_with_facts(&base, 2_000, 1);
        assert!(kb.facts.len() >= 1_990, "got {}", kb.facts.len());
        assert_eq!(kb.rules.len(), base.rules.len()); // rules untouched
        assert!(kb.validate().is_empty(), "{:?}", kb.validate());
    }

    #[test]
    fn already_large_bases_pass_through() {
        let base = generate(&ReverbConfig::tiny());
        let kb = s1_with_rules(&base, 5, 1);
        assert_eq!(kb.rules.len(), base.rules.len());
        let kb = s2_with_facts(&base, 5, 1);
        assert_eq!(kb.facts.len(), base.facts.len());
    }

    #[test]
    fn sweeps_are_deterministic() {
        let base = generate(&ReverbConfig::tiny());
        let a = s1_with_rules(&base, 200, 9);
        let b = s1_with_rules(&base, 200, 9);
        assert_eq!(a.rules.len(), b.rules.len());
        assert!(a
            .rules
            .iter()
            .zip(b.rules.iter())
            .all(|(x, y)| x.head == y.head));
    }
}
