//! A small Zipf sampler.
//!
//! Web-extraction KBs are heavily skewed — a few relations ("born in",
//! "located in") account for most facts, and Sherlock's rules concentrate
//! on those frequent relations. The generators use Zipf draws everywhere
//! skew matters, because the batch-vs-per-rule performance gap the paper
//! measures depends on it.

use probkb_support::rng::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`, sampled by
/// inverse transform over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; larger `s` is more skewed).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a rank in `0..n`; rank 0 is the most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_support::rng::{SeedableRng, StdRng};

    #[test]
    fn skewed_zipf_prefers_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        assert!(counts[0] > 2000); // rank 0 dominates
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
