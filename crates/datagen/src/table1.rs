//! The paper's running example (Table 1): the Ruth Gruber fragment of the
//! ReVerb-Sherlock KB.

use probkb_kb::prelude::{parse, ProbKb};

/// The Table 1 KB text, in the `probkb-kb` line format.
pub const TABLE1_TEXT: &str = r#"
# Relationships Π (Table 1).
fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)

# Rules L (Table 1); weights from the paper.
rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)

# The hard rule (born_in is functional) as a semantic constraint.
functional born_in 1 1
"#;

/// Build the Table 1 knowledge base.
pub fn table1_kb() -> ProbKb {
    parse(TABLE1_TEXT)
        .expect("the Table 1 text is well-formed")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_statistics() {
        let kb = table1_kb();
        let stats = kb.stats();
        assert_eq!(stats.entities, 3); // Ruth Gruber, NYC, Brooklyn
        assert_eq!(stats.classes, 3); // Writer, City, Place
        assert_eq!(stats.relations, 4); // born/live/grow_up/located
        assert_eq!(stats.facts, 2);
        assert_eq!(stats.rules, 6);
        assert_eq!(stats.constraints, 1);
        assert!(kb.validate().is_empty(), "{:?}", kb.validate());
    }
}
