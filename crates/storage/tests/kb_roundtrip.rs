//! Cross-format equivalence (ISSUE 3 satellite): the JSON codec in
//! `kb::io`, the binary codec in `storage::kbcodec`, and the snapshot
//! container must all agree — a KB pushed through any of them comes
//! back with identical statistics and identical canonical encodings.

use std::fs;
use std::path::PathBuf;

use probkb_kb::io::{from_json, to_json, to_text};
use probkb_kb::prelude::{parse, ProbKb};
use probkb_storage::kbcodec::{decode_kb, encode_kb, kb_digest};
use probkb_storage::snapshot::{read_kb_snapshot, write_kb_snapshot};

fn sample_kb() -> ProbKb {
    parse(
        r#"
        fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
        fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
        fact 0.88 capital_of(Delhi:City, India:Country)
        rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
        rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
        rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
        functional born_in 1 1 Writer City
        functional capital_of 2 1
        "#,
    )
    .unwrap()
    .build()
}

fn tmp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("probkb-kbrt-{tag}-{}.pkb", std::process::id()))
}

/// Every canonical rendering this workspace has for a KB — if two KBs
/// agree on all of these, they are the same KB.
fn fingerprints(kb: &ProbKb) -> (probkb_kb::prelude::KbStats, String, Vec<u8>, u32) {
    (kb.stats(), to_text(kb), encode_kb(kb), kb_digest(kb))
}

#[test]
fn json_and_binary_codecs_agree() {
    let kb = sample_kb();
    let via_json = from_json(&to_json(&kb)).unwrap();
    let via_binary = decode_kb(&encode_kb(&kb)).unwrap();
    assert_eq!(fingerprints(&via_json), fingerprints(&kb));
    assert_eq!(fingerprints(&via_binary), fingerprints(&kb));
}

#[test]
fn snapshot_roundtrip_agrees_with_both_codecs() {
    let kb = sample_kb();
    let path = tmp_file("snap");
    write_kb_snapshot(&path, &kb).unwrap();
    let via_snapshot = read_kb_snapshot(&path).unwrap();
    let _ = fs::remove_file(&path);

    let via_json = from_json(&to_json(&kb)).unwrap();
    assert_eq!(fingerprints(&via_snapshot), fingerprints(&kb));
    assert_eq!(fingerprints(&via_snapshot), fingerprints(&via_json));
}

#[test]
fn binary_encoding_is_canonical_across_formats() {
    // Chaining codecs must be a fixpoint: JSON → binary → snapshot →
    // binary produces the same bytes at every binary step.
    let kb = sample_kb();
    let bytes1 = encode_kb(&kb);
    let via_json = from_json(&to_json(&kb)).unwrap();
    let bytes2 = encode_kb(&via_json);
    assert_eq!(bytes1, bytes2);

    let path = tmp_file("canon");
    write_kb_snapshot(&path, &via_json).unwrap();
    let via_snapshot = read_kb_snapshot(&path).unwrap();
    let _ = fs::remove_file(&path);
    assert_eq!(encode_kb(&via_snapshot), bytes1);
}

#[test]
fn weightless_facts_survive_all_formats() {
    // Inferred facts carry no weight until marginal inference writes one
    // back; all three formats must preserve the None.
    let mut kb = sample_kb();
    let mut inferred = kb.facts[0].clone();
    inferred.weight = None;
    inferred.y = kb.facts[2].y;
    kb.facts.push(inferred);

    let via_json = from_json(&to_json(&kb)).unwrap();
    let via_binary = decode_kb(&encode_kb(&kb)).unwrap();
    assert_eq!(via_json.facts.last().unwrap().weight, None);
    assert_eq!(via_binary.facts.last().unwrap().weight, None);
    assert_eq!(fingerprints(&via_json), fingerprints(&via_binary));
}
