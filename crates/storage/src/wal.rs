//! The write-ahead log: an append-only file of length-prefixed,
//! CRC-guarded frames.
//!
//! Layout:
//!
//! ```text
//! magic "PKBWAL01"           8 bytes
//! frame*  :=  payload length u32 LE
//!             crc32(payload) u32 LE
//!             payload        <length> bytes
//! ```
//!
//! [`WalWriter::commit`] fsyncs, so a frame followed by a commit is the
//! durability point. [`scan_wal`] replays the prefix of intact frames
//! and reports where the first torn or corrupt frame begins; recovery
//! truncates there and appends — a partial tail write can only lose the
//! uncommitted suffix, never corrupt earlier frames.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::{io_err, Result};

/// Leading magic bytes of every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"PKBWAL01";

/// Maximum accepted frame payload (1 GiB) — rejects absurd lengths from
/// corrupted headers before any allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Appending writer over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Create (or truncate) a WAL at `path`, writing and syncing the
    /// magic header.
    pub fn create(path: &Path) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.write_all(&WAL_MAGIC).map_err(|e| io_err(path, e))?;
        file.sync_all().map_err(|e| io_err(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Open an existing WAL for appending after truncating it to
    /// `valid_len` (as reported by [`scan_wal`]), discarding any torn
    /// tail. A `valid_len` shorter than the magic recreates the file.
    pub fn open_at(path: &Path, valid_len: u64) -> Result<WalWriter> {
        if valid_len < WAL_MAGIC.len() as u64 {
            return WalWriter::create(path);
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err(path, e))?;
        file.sync_all().map_err(|e| io_err(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append one frame. Not durable until [`WalWriter::commit`].
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.path, e))
    }

    /// Fsync: everything appended so far becomes the durable prefix.
    pub fn commit(&mut self) -> Result<()> {
        self.file.sync_all().map_err(|e| io_err(&self.path, e))
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The result of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Payloads of the intact frame prefix, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Byte offset where each frame in `frames` *ends* — truncating the
    /// file to `frame_ends[i]` keeps exactly frames `0..=i`.
    pub frame_ends: Vec<u64>,
    /// Length of the valid prefix (magic + intact frames). Zero when the
    /// magic itself is missing or wrong.
    pub valid_len: u64,
    /// True when bytes beyond `valid_len` existed (a torn or corrupt
    /// tail that recovery will drop).
    pub truncated: bool,
}

impl WalScan {
    /// A scan of a missing or unusable file: no frames, nothing valid.
    pub fn empty() -> WalScan {
        WalScan::default()
    }
}

/// Scan a WAL file, returning the longest intact frame prefix. Never
/// errors on corruption — torn frames, bad CRCs, and bad magic all just
/// shorten the result (a missing file scans as empty). Only a hard I/O
/// failure reading an existing file is an error.
pub fn scan_wal(path: &Path) -> Result<WalScan> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::empty()),
        Err(e) => return Err(io_err(path, e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io_err(path, e))?;

    let mut scan = WalScan::empty();
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        scan.truncated = !bytes.is_empty();
        return Ok(scan);
    }
    let mut pos = WAL_MAGIC.len();
    scan.valid_len = pos as u64;
    loop {
        if bytes.len() - pos < 8 {
            break; // no room for a frame header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN || (bytes.len() - pos - 8) < len as usize {
            break; // torn frame: length overruns the file
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != stored_crc {
            break; // corrupt frame
        }
        pos += 8 + len as usize;
        scan.frames.push(payload.to_vec());
        scan.frame_ends.push(pos as u64);
        scan.valid_len = pos as u64;
    }
    scan.truncated = (pos as u64) < bytes.len() as u64;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("probkb-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_frames(path: &Path, frames: &[&[u8]]) {
        let mut w = WalWriter::create(path).unwrap();
        for f in frames {
            w.append(f).unwrap();
        }
        w.commit().unwrap();
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip.wal");
        write_frames(&path, &[b"alpha", b"", b"gamma-gamma"]);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0], b"alpha");
        assert_eq!(scan.frames[1], b"");
        assert!(!scan.truncated);
        assert_eq!(scan.valid_len, fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn missing_file_scans_empty() {
        let scan = scan_wal(&tmp("never-written.wal")).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.truncated);
    }

    #[test]
    fn truncation_at_every_offset_yields_frame_prefix() {
        let path = tmp("trunc.wal");
        write_frames(&path, &[b"one", b"two-two", b"three-three-three"]);
        let bytes = fs::read(&path).unwrap();
        let full = scan_wal(&path).unwrap();
        for cut in 0..bytes.len() {
            let cut_path = tmp("trunc-cut.wal");
            fs::write(&cut_path, &bytes[..cut]).unwrap();
            let scan = scan_wal(&cut_path).unwrap();
            // The survivors are exactly a prefix of the original frames.
            assert!(scan.frames.len() <= full.frames.len());
            assert_eq!(
                scan.frames,
                full.frames[..scan.frames.len()].to_vec(),
                "cut at {cut}"
            );
            // Whole frames survive iff the cut is past their end.
            let expect = full
                .frame_ends
                .iter()
                .filter(|&&end| end <= cut as u64)
                .count();
            assert_eq!(scan.frames.len(), expect, "cut at {cut}");
            assert!(scan.valid_len <= cut as u64);
        }
    }

    #[test]
    fn byte_flips_drop_the_damaged_suffix() {
        let path = tmp("flip.wal");
        write_frames(&path, &[b"one", b"two-two", b"three-three-three"]);
        let bytes = fs::read(&path).unwrap();
        let full = scan_wal(&path).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            let bad_path = tmp("flip-bad.wal");
            fs::write(&bad_path, &bad).unwrap();
            let scan = scan_wal(&bad_path).unwrap();
            // Frames before the damaged one survive unchanged; the rest
            // are dropped (never silently altered).
            let damaged_frame = full
                .frame_ends
                .iter()
                .filter(|&&end| end <= i as u64)
                .count();
            if i < WAL_MAGIC.len() {
                assert_eq!(scan.frames.len(), 0, "flip at {i}");
            } else {
                assert_eq!(scan.frames.len(), damaged_frame, "flip at {i}");
                assert_eq!(scan.frames, full.frames[..damaged_frame].to_vec());
            }
        }
    }

    #[test]
    fn open_at_truncates_and_appends() {
        let path = tmp("reopen.wal");
        write_frames(&path, &[b"keep", b"drop"]);
        let scan = scan_wal(&path).unwrap();
        // Reopen keeping only the first frame, then append a new one.
        let mut w = WalWriter::open_at(&path, scan.frame_ends[0]).unwrap();
        w.append(b"new-tail").unwrap();
        w.commit().unwrap();
        let rescan = scan_wal(&path).unwrap();
        assert_eq!(rescan.frames, vec![b"keep".to_vec(), b"new-tail".to_vec()]);
    }

    #[test]
    fn open_at_zero_recreates() {
        let path = tmp("recreate.wal");
        fs::write(&path, b"garbage that is not a wal").unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.valid_len, 0);
        assert!(scan.truncated);
        let mut w = WalWriter::open_at(&path, scan.valid_len).unwrap();
        w.append(b"fresh").unwrap();
        w.commit().unwrap();
        let rescan = scan_wal(&path).unwrap();
        assert_eq!(rescan.frames, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn absurd_length_header_is_torn_not_allocated() {
        let path = tmp("absurd.wal");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.frames.is_empty());
        assert!(scan.truncated);
    }
}
