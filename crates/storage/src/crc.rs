//! CRC-32 (IEEE 802.3) — re-exported from `probkb_support::crc`.
//!
//! The implementation lives in `support` so that `pager` (which sits
//! *below* `relational` in the dependency graph, and therefore below this
//! crate) can checksum its pages with the same polynomial and table the
//! snapshot/WAL framing uses. This module keeps the historical
//! `probkb_storage::crc` paths working unchanged.

pub use probkb_support::crc::{crc32, Crc32};
