//! Durable storage for ProbKB (see DESIGN.md, "Durability").
//!
//! The relational tables a grounding run manipulates are first-class
//! state worth persisting — this crate gives them a disk form without a
//! second data model:
//!
//! * [`snapshot`] — a versioned, CRC-32-guarded container of named
//!   sections holding encoded tables, catalogs, or KBs. Loads are
//!   all-or-nothing and round-trip byte-identically.
//! * [`wal`] — an append-only log of length-prefixed, CRC-guarded
//!   frames with explicit fsync commit points. Scanning recovers the
//!   longest intact prefix and truncates torn tails.
//! * [`format`] / [`kbcodec`] — the little-endian binary codecs for
//!   `relational` values/schemas/tables and the `kb` model.
//! * [`frame`] — the WAL's length-prefixed CRC-guarded framing lifted
//!   onto byte streams, with request/response frame kinds — the wire
//!   layer of the `probkb-server` / `probkb-client` protocol.
//! * [`crc`] — the table-driven CRC-32 (IEEE) everything above uses.
//!
//! The checkpoint/resume driver built on these lives in
//! `probkb_core::checkpoint`, next to the grounding loop it mirrors.
//! Like the rest of the workspace, this crate is std-only.

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod format;
pub mod frame;
pub mod kbcodec;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use error::{Result, StorageError};

/// Everything most users need.
pub mod prelude {
    pub use crate::crc::{crc32, Crc32};
    pub use crate::error::{Result as StorageResult, StorageError};
    pub use crate::format::{
        decode_named_tables, decode_table, encode_named_tables, encode_table, ByteReader,
        ByteWriter,
    };
    pub use crate::frame::{
        is_clean_eof, read_frame, read_magic, write_frame, write_magic, FrameKind,
        MAX_WIRE_FRAME_LEN, WIRE_MAGIC,
    };
    pub use crate::kbcodec::{decode_kb, encode_kb, kb_digest};
    pub use crate::snapshot::{
        list_snapshots, read_catalog_snapshot, read_kb_snapshot, snapshot_file_name,
        write_catalog_snapshot, write_kb_snapshot, Snapshot, SnapshotBuilder,
    };
    pub use crate::wal::{scan_wal, WalScan, WalWriter};
}
