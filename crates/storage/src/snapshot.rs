//! The snapshot container: a versioned, CRC-guarded file of named
//! sections.
//!
//! Layout:
//!
//! ```text
//! magic "PKBSNAP1"      8 bytes
//! version               u32 LE
//! payload length        u64 LE
//! payload               <length> bytes
//! crc32(payload)        u32 LE
//! payload := section count (u32), then per section:
//!            name (u32 len + utf8), body (u64 len + bytes)
//! ```
//!
//! A snapshot either loads completely or not at all: any torn write,
//! truncation, or bit flip fails the length or CRC check and the reader
//! reports [`StorageError::Corrupt`]. Writers go through a temp file and
//! an atomic rename so a crash mid-write never clobbers the previous
//! snapshot.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use probkb_kb::prelude::ProbKb;
use probkb_relational::prelude::{Catalog, Table};

use crate::crc::crc32;
use crate::error::{io_err, Result, StorageError};
use crate::format::{
    decode_table, encode_table, ByteReader, ByteWriter,
};
use crate::kbcodec::{decode_kb, encode_kb};

/// Leading magic bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PKBSNAP1";
/// Current container format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Builder for a snapshot file: accumulate named sections, then write.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Add a named section (names should be unique; the reader returns
    /// the first match).
    pub fn section(&mut self, name: impl Into<String>, body: Vec<u8>) -> &mut Self {
        self.sections.push((name.into(), body));
        self
    }

    /// Serialize the whole container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_u32(self.sections.len() as u32);
        for (name, body) in &self.sections {
            payload.put_str(name);
            payload.put_bytes(body);
        }
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out
    }

    /// Write the container to `path` durably: temp file, flush, fsync,
    /// atomic rename.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
        file.sync_all().map_err(|e| io_err(&tmp, e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        Ok(())
    }
}

/// A parsed, integrity-checked snapshot.
#[derive(Debug)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Parse a container from bytes, verifying magic, version, length,
    /// and CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot> {
        if bytes.len() < 24 {
            return Err(StorageError::Corrupt(format!(
                "snapshot too short: {} bytes",
                bytes.len()
            )));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(StorageError::Corrupt("bad snapshot magic".into()));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let Some(expected_total) = payload_len.checked_add(24) else {
            return Err(StorageError::Corrupt("absurd payload length".into()));
        };
        if bytes.len() != expected_total {
            return Err(StorageError::Corrupt(format!(
                "snapshot length {} does not match declared payload {payload_len}",
                bytes.len()
            )));
        }
        let payload = &bytes[20..20 + payload_len];
        let stored_crc = u32::from_le_bytes(bytes[20 + payload_len..].try_into().unwrap());
        if crc32(payload) != stored_crc {
            return Err(StorageError::Corrupt("snapshot crc mismatch".into()));
        }

        let mut r = ByteReader::new(payload);
        let n = r
            .get_u32()
            .map_err(|e| StorageError::Corrupt(e.to_string()))? as usize;
        let mut sections = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r
                .get_str()
                .map_err(|e| StorageError::Corrupt(e.to_string()))?;
            let body = r
                .get_bytes()
                .map_err(|e| StorageError::Corrupt(e.to_string()))?;
            sections.push((name, body.to_vec()));
        }
        if !r.is_at_end() {
            return Err(StorageError::Corrupt("trailing bytes in payload".into()));
        }
        Ok(Snapshot { sections })
    }

    /// Read and verify a snapshot file.
    pub fn read_from(path: &Path) -> Result<Snapshot> {
        let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
        Snapshot::from_bytes(&bytes)
    }

    /// The body of a named section.
    pub fn section(&self, name: &str) -> Result<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| body.as_slice())
            .ok_or_else(|| StorageError::Corrupt(format!("missing section {name:?}")))
    }

    /// All section names, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// Write a whole [`Catalog`] as a one-section-per-table snapshot.
pub fn write_catalog_snapshot(path: &Path, catalog: &Catalog) -> Result<()> {
    let mut builder = SnapshotBuilder::new();
    for name in catalog.names() {
        let table = catalog
            .get(&name)
            .map_err(|e| StorageError::Format(e.to_string()))?;
        builder.section(format!("table:{name}"), encode_table(&table));
    }
    builder.write_to(path)
}

/// Load a catalog snapshot back, byte-identically.
pub fn read_catalog_snapshot(path: &Path) -> Result<Catalog> {
    let snapshot = Snapshot::read_from(path)?;
    let catalog = Catalog::new();
    for name in snapshot.section_names() {
        if let Some(table_name) = name.strip_prefix("table:") {
            let table: Table = decode_table(snapshot.section(name)?)?;
            catalog.create_or_replace(table_name, table);
        }
    }
    Ok(catalog)
}

/// Write a KB as a single-section snapshot.
pub fn write_kb_snapshot(path: &Path, kb: &ProbKb) -> Result<()> {
    let mut builder = SnapshotBuilder::new();
    builder.section("kb", encode_kb(kb));
    builder.write_to(path)
}

/// Load a KB snapshot back.
pub fn read_kb_snapshot(path: &Path) -> Result<ProbKb> {
    let snapshot = Snapshot::read_from(path)?;
    decode_kb(snapshot.section("kb")?)
}

/// The file name of the checkpoint snapshot taken after `iteration`
/// completed (iteration 0 is the freshly loaded base state).
pub fn snapshot_file_name(iteration: usize) -> String {
    format!("snapshot-{iteration:06}.pkb")
}

/// Parse a snapshot file name back to its iteration number.
pub fn parse_snapshot_file_name(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("snapshot-")?.strip_suffix(".pkb")?;
    if rest.len() != 6 {
        return None;
    }
    rest.parse().ok()
}

/// All snapshot files in a checkpoint directory, newest (highest
/// iteration) first. Unreadable directories yield an empty list — the
/// recovery path treats that the same as "no snapshots".
pub fn list_snapshots(dir: &Path) -> Vec<(usize, PathBuf)> {
    let mut found = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(iter) = name.to_str().and_then(parse_snapshot_file_name) {
                found.push((iter, entry.path()));
            }
        }
    }
    found.sort_by(|a, b| b.0.cmp(&a.0));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_relational::prelude::{Schema, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("probkb-storage-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_catalog() -> Catalog {
        let c = Catalog::new();
        c.create_or_replace(
            "t",
            Table::from_rows_unchecked(
                Schema::ints(&["a", "b"]),
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Int(i * i)])
                    .collect(),
            ),
        );
        c.create_or_replace("empty", Table::empty(Schema::ints(&["x"])));
        c
    }

    #[test]
    fn catalog_snapshot_roundtrip_byte_identical() {
        let path = tmp("catalog.pkb");
        let catalog = sample_catalog();
        write_catalog_snapshot(&path, &catalog).unwrap();
        let loaded = read_catalog_snapshot(&path).unwrap();
        assert_eq!(loaded.names(), catalog.names());
        // Writing the loaded catalog again produces identical bytes.
        let path2 = tmp("catalog2.pkb");
        write_catalog_snapshot(&path2, &loaded).unwrap();
        assert_eq!(fs::read(&path).unwrap(), fs::read(&path2).unwrap());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let path = tmp("trunc.pkb");
        write_catalog_snapshot(&path, &sample_catalog()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let path = tmp("flip.pkb");
        write_catalog_snapshot(&path, &sample_catalog()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn missing_section_reports_corrupt() {
        let mut b = SnapshotBuilder::new();
        b.section("present", vec![1, 2, 3]);
        let snapshot = Snapshot::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(snapshot.section("present").unwrap(), &[1, 2, 3]);
        assert!(snapshot.section("absent").is_err());
    }

    #[test]
    fn snapshot_names_roundtrip() {
        assert_eq!(snapshot_file_name(7), "snapshot-000007.pkb");
        assert_eq!(parse_snapshot_file_name("snapshot-000007.pkb"), Some(7));
        assert_eq!(parse_snapshot_file_name("snapshot-7.pkb"), None);
        assert_eq!(parse_snapshot_file_name("wal.log"), None);
    }

    #[test]
    fn kb_snapshot_roundtrip() {
        use probkb_kb::prelude::parse;
        let kb = parse("fact 0.9 knows(a:P, b:P)").unwrap().build();
        let path = tmp("kb.pkb");
        write_kb_snapshot(&path, &kb).unwrap();
        let back = read_kb_snapshot(&path).unwrap();
        assert_eq!(back.stats(), kb.stats());
        assert_eq!(back.facts, kb.facts);
    }
}
