//! Binary encoding primitives and the codecs for the relational model
//! (`Value`, `Schema`, `Table`, `Catalog`).
//!
//! Everything is little-endian and fixed-width (no varints), so the same
//! logical state always serializes to the same bytes — the property the
//! byte-identical snapshot round-trip and the resume-equivalence tests
//! lean on. Floats are stored as raw `f64::to_bits`, preserving NaN
//! payloads and signed zeros exactly.

use std::sync::Arc;

use probkb_relational::prelude::{Column, DataType, Row, Schema, Table, Value};

use crate::error::{Result, StorageError};

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a string as `u32` byte length + UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a byte blob as `u64` length + bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over an encoded byte slice; every accessor bounds-checks and
/// returns [`StorageError::Format`] instead of panicking, so decoding
/// hostile bytes is always safe.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the cursor is at the end of the buffer.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Format(format!(
                "unexpected end of input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Next length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Format("invalid utf-8 in string".into()))
    }

    /// Next length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(StorageError::Format(format!(
                "blob length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        self.take(len as usize)
    }
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Encode one [`Value`] (tag byte + payload).
pub fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(TAG_NULL),
        Value::Int(i) => {
            w.put_u8(TAG_INT);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(TAG_FLOAT);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(TAG_STR);
            w.put_str(s);
        }
    }
}

/// Decode one [`Value`].
pub fn get_value(r: &mut ByteReader<'_>) -> Result<Value> {
    match r.get_u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.get_i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.get_f64()?)),
        TAG_STR => Ok(Value::Str(Arc::from(r.get_str()?.as_str()))),
        tag => Err(StorageError::Format(format!("unknown value tag {tag}"))),
    }
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Str),
        _ => Err(StorageError::Format(format!("unknown dtype tag {tag}"))),
    }
}

/// Encode a [`Schema`]: column count, then per column name + dtype +
/// nullability.
pub fn put_schema(w: &mut ByteWriter, schema: &Schema) {
    let cols = schema.columns();
    w.put_u32(cols.len() as u32);
    for col in cols {
        w.put_str(&col.name);
        w.put_u8(dtype_tag(col.dtype));
        w.put_u8(col.nullable as u8);
    }
}

/// Decode a [`Schema`].
pub fn get_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.get_u32()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let dtype = dtype_from_tag(r.get_u8()?)?;
        let nullable = r.get_u8()? != 0;
        cols.push(if nullable {
            Column::nullable(&name, dtype)
        } else {
            Column::new(&name, dtype)
        });
    }
    Ok(Schema::new(cols))
}

/// Encode a [`Table`]: schema, `u64` row count, then each row as a `u32`
/// value count plus its values. The per-row count is redundant with the
/// schema width but lets the decoder reject internally inconsistent
/// payloads without guessing.
pub fn put_table(w: &mut ByteWriter, table: &Table) {
    put_schema(w, table.schema());
    w.put_u64(table.len() as u64);
    for row in table.rows() {
        w.put_u32(row.len() as u32);
        for value in row {
            put_value(w, value);
        }
    }
}

/// Decode a [`Table`].
pub fn get_table(r: &mut ByteReader<'_>) -> Result<Table> {
    let schema = get_schema(r)?;
    let nrows = r.get_u64()?;
    let width = schema.width();
    let mut rows: Vec<Row> = Vec::new();
    for _ in 0..nrows {
        let n = r.get_u32()? as usize;
        if n != width {
            return Err(StorageError::Format(format!(
                "row width {n} does not match schema width {width}"
            )));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(get_value(r)?);
        }
        rows.push(row);
    }
    Ok(Table::from_rows_unchecked(schema, rows))
}

/// Encode a whole table to standalone bytes.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_table(&mut w, table);
    w.into_bytes()
}

/// Decode a standalone table encoding, requiring the buffer to be fully
/// consumed.
pub fn decode_table(bytes: &[u8]) -> Result<Table> {
    let mut r = ByteReader::new(bytes);
    let table = get_table(&mut r)?;
    if !r.is_at_end() {
        return Err(StorageError::Format(format!(
            "{} trailing bytes after table",
            r.remaining()
        )));
    }
    Ok(table)
}

/// Encode a set of named tables (a catalog's contents) in sorted-name
/// order so the bytes are independent of insertion history.
pub fn encode_named_tables(entries: &[(String, Table)]) -> Vec<u8> {
    let mut sorted: Vec<&(String, Table)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut w = ByteWriter::new();
    w.put_u32(sorted.len() as u32);
    for (name, table) in sorted {
        w.put_str(name);
        put_table(&mut w, table);
    }
    w.into_bytes()
}

/// Decode a set of named tables.
pub fn decode_named_tables(bytes: &[u8]) -> Result<Vec<(String, Table)>> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        out.push((name, get_table(&mut r)?));
    }
    if !r.is_at_end() {
        return Err(StorageError::Format(format!(
            "{} trailing bytes after named tables",
            r.remaining()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        Table::from_rows_unchecked(
            Schema::new(vec![
                Column::new("i", DataType::Int),
                Column::nullable("w", DataType::Float),
                Column::nullable("s", DataType::Str),
            ]),
            vec![
                vec![Value::Int(1), Value::Float(0.5), Value::str("alpha")],
                vec![Value::Int(-9), Value::Null, Value::Null],
                vec![Value::Int(i64::MAX), Value::Float(-0.0), Value::str("")],
            ],
        )
    }

    #[test]
    fn table_roundtrip_is_byte_identical() {
        let t = sample_table();
        let bytes = encode_table(&t);
        let back = decode_table(&bytes).unwrap();
        assert_eq!(encode_table(&back), bytes);
        assert_eq!(back.len(), t.len());
        assert_eq!(back.schema().names(), t.schema().names());
    }

    #[test]
    fn float_bits_survive_exactly() {
        let mut w = ByteWriter::new();
        let odd = f64::from_bits(0x7FF8_0000_0000_1234); // NaN with payload
        put_value(&mut w, &Value::Float(odd));
        put_value(&mut w, &Value::Float(-0.0));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        match get_value(&mut r).unwrap() {
            Value::Float(f) => assert_eq!(f.to_bits(), odd.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
        match get_value(&mut r).unwrap() {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let bytes = encode_table(&sample_table());
        for cut in 0..bytes.len() {
            let _ = decode_table(&bytes[..cut]); // must not panic
            assert!(decode_table(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn row_width_mismatch_detected() {
        let mut w = ByteWriter::new();
        put_schema(&mut w, &Schema::ints(&["a", "b"]));
        w.put_u64(1);
        w.put_u32(3); // claims 3 values in a 2-column schema
        let err = decode_table(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, StorageError::Format(_)));
    }

    #[test]
    fn named_tables_sorted_independent_of_order() {
        let a = ("a".to_string(), sample_table());
        let b = ("b".to_string(), sample_table());
        let one = encode_named_tables(&[a.clone(), b.clone()]);
        let two = encode_named_tables(&[b, a]);
        assert_eq!(one, two);
        let back = decode_named_tables(&one).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "a");
    }
}
