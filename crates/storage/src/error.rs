//! Storage error type: I/O failures, corrupt on-disk state, and
//! malformed encodings are distinguished so recovery can decide whether
//! to fall back (corruption) or surface the problem (I/O).

use std::fmt;
use std::path::Path;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system I/O failure (open, read, write, fsync, rename).
    Io {
        /// The file the operation touched.
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// On-disk bytes that fail an integrity check: bad magic, bad CRC,
    /// truncated container, or internally inconsistent content. Recovery
    /// treats these as "this artifact does not exist".
    Corrupt(String),
    /// A structurally invalid encoding (unknown tag, short buffer, bad
    /// UTF-8). Distinct from [`StorageError::Corrupt`] only in provenance:
    /// these arise while decoding a payload that already passed its CRC.
    Format(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, detail } => write!(f, "io error on {path}: {detail}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StorageError::Format(msg) => write!(f, "malformed encoding: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Storage-layer result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Wrap an `std::io::Error` with the path it happened on.
pub fn io_err(path: &Path, err: std::io::Error) -> StorageError {
    StorageError::Io {
        path: path.display().to_string(),
        detail: err.to_string(),
    }
}
