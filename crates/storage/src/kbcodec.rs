//! Binary codec for the [`ProbKb`] model: dictionaries, class
//! memberships, the subclass hierarchy, relation signatures, facts,
//! rules, and constraints.
//!
//! Unordered collections (memberships, signatures) are sorted before
//! encoding so that equal KBs always produce equal bytes — `encode_kb`
//! doubles as a canonical form, and `kb_digest` (its CRC-32) is the
//! cheap identity check the checkpoint layer uses to pair a WAL with
//! the KB it was written against.

use std::collections::HashSet;

use probkb_kb::prelude::{
    Atom, ClassId, EntityId, Fact, FunctionalConstraint, Functionality, HornRule, ProbKb,
    RelationId, Var,
};

use crate::crc::crc32;
use crate::error::{Result, StorageError};
use crate::format::{ByteReader, ByteWriter};

const VAR_X: u8 = 0;
const VAR_Y: u8 = 1;
const VAR_Z: u8 = 2;

fn put_var(w: &mut ByteWriter, v: Var) {
    w.put_u8(match v {
        Var::X => VAR_X,
        Var::Y => VAR_Y,
        Var::Z => VAR_Z,
    });
}

fn get_var(r: &mut ByteReader<'_>) -> Result<Var> {
    match r.get_u8()? {
        VAR_X => Ok(Var::X),
        VAR_Y => Ok(Var::Y),
        VAR_Z => Ok(Var::Z),
        tag => Err(StorageError::Format(format!("unknown var tag {tag}"))),
    }
}

fn put_atom(w: &mut ByteWriter, atom: &Atom) {
    w.put_u32(atom.rel.raw());
    put_var(w, atom.a);
    put_var(w, atom.b);
}

fn get_atom(r: &mut ByteReader<'_>) -> Result<Atom> {
    let rel = RelationId(r.get_u32()?);
    let a = get_var(r)?;
    let b = get_var(r)?;
    Ok(Atom::new(rel, a, b))
}

fn put_opt_f64(w: &mut ByteWriter, v: Option<f64>) {
    match v {
        Some(f) => {
            w.put_u8(1);
            w.put_f64(f);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_f64()?)),
        tag => Err(StorageError::Format(format!("unknown option tag {tag}"))),
    }
}

fn put_dictionary(w: &mut ByteWriter, dict: &probkb_kb::prelude::Dictionary) {
    w.put_u32(dict.len() as u32);
    for (_, name) in dict.iter() {
        w.put_str(name);
    }
}

fn get_dictionary(r: &mut ByteReader<'_>) -> Result<probkb_kb::prelude::Dictionary> {
    let n = r.get_u32()?;
    let mut dict = probkb_kb::prelude::Dictionary::new();
    for expect in 0..n {
        let name = r.get_str()?;
        let id = dict.intern(&name);
        if id != expect {
            return Err(StorageError::Format(format!(
                "duplicate dictionary entry {name:?} (id {id}, expected {expect})"
            )));
        }
    }
    Ok(dict)
}

/// Serialize a KB to its canonical binary form.
pub fn encode_kb(kb: &ProbKb) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_dictionary(&mut w, &kb.entities);
    put_dictionary(&mut w, &kb.classes);
    put_dictionary(&mut w, &kb.relations);

    // Memberships: one sorted entity-id list per class, in class-id order.
    w.put_u32(kb.members.len() as u32);
    for members in &kb.members {
        let mut ids: Vec<u32> = members.iter().map(|e| e.raw()).collect();
        ids.sort_unstable();
        w.put_u32(ids.len() as u32);
        for id in ids {
            w.put_u32(id);
        }
    }

    w.put_u32(kb.subclass_edges.len() as u32);
    for (sub, sup) in &kb.subclass_edges {
        w.put_u32(sub.raw());
        w.put_u32(sup.raw());
    }

    let mut sigs: Vec<(u32, u32, u32)> = kb
        .signatures
        .iter()
        .map(|(r, c1, c2)| (r.raw(), c1.raw(), c2.raw()))
        .collect();
    sigs.sort_unstable();
    w.put_u32(sigs.len() as u32);
    for (rel, c1, c2) in sigs {
        w.put_u32(rel);
        w.put_u32(c1);
        w.put_u32(c2);
    }

    w.put_u32(kb.facts.len() as u32);
    for fact in &kb.facts {
        w.put_u32(fact.rel.raw());
        w.put_u32(fact.x.raw());
        w.put_u32(fact.c1.raw());
        w.put_u32(fact.y.raw());
        w.put_u32(fact.c2.raw());
        put_opt_f64(&mut w, fact.weight);
    }

    w.put_u32(kb.rules.len() as u32);
    for rule in &kb.rules {
        put_atom(&mut w, &rule.head);
        w.put_u8(rule.body.len() as u8);
        for atom in &rule.body {
            put_atom(&mut w, atom);
        }
        w.put_u32(rule.cx.raw());
        w.put_u32(rule.cy.raw());
        match rule.cz {
            Some(cz) => {
                w.put_u8(1);
                w.put_u32(cz.raw());
            }
            None => w.put_u8(0),
        }
        w.put_f64(rule.weight);
        w.put_f64(rule.significance);
    }

    w.put_u32(kb.constraints.len() as u32);
    for fc in &kb.constraints {
        w.put_u32(fc.rel.raw());
        match fc.classes {
            Some((c1, c2)) => {
                w.put_u8(1);
                w.put_u32(c1.raw());
                w.put_u32(c2.raw());
            }
            None => w.put_u8(0),
        }
        w.put_u8(fc.functionality.alpha() as u8);
        w.put_u32(fc.degree);
    }

    w.into_bytes()
}

/// Decode a KB from its binary form, requiring full consumption of the
/// buffer.
pub fn decode_kb(bytes: &[u8]) -> Result<ProbKb> {
    let mut r = ByteReader::new(bytes);
    let entities = get_dictionary(&mut r)?;
    let classes = get_dictionary(&mut r)?;
    let relations = get_dictionary(&mut r)?;

    let nclasses = r.get_u32()? as usize;
    let mut members: Vec<HashSet<EntityId>> = Vec::with_capacity(nclasses);
    for _ in 0..nclasses {
        let n = r.get_u32()? as usize;
        let mut set = HashSet::with_capacity(n);
        for _ in 0..n {
            set.insert(EntityId(r.get_u32()?));
        }
        members.push(set);
    }

    let nedges = r.get_u32()? as usize;
    let mut subclass_edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let sub = ClassId(r.get_u32()?);
        let sup = ClassId(r.get_u32()?);
        subclass_edges.push((sub, sup));
    }

    let nsigs = r.get_u32()? as usize;
    let mut signatures = HashSet::with_capacity(nsigs);
    for _ in 0..nsigs {
        let rel = RelationId(r.get_u32()?);
        let c1 = ClassId(r.get_u32()?);
        let c2 = ClassId(r.get_u32()?);
        signatures.insert((rel, c1, c2));
    }

    let nfacts = r.get_u32()? as usize;
    let mut facts = Vec::with_capacity(nfacts);
    for _ in 0..nfacts {
        let rel = RelationId(r.get_u32()?);
        let x = EntityId(r.get_u32()?);
        let c1 = ClassId(r.get_u32()?);
        let y = EntityId(r.get_u32()?);
        let c2 = ClassId(r.get_u32()?);
        let weight = get_opt_f64(&mut r)?;
        facts.push(Fact {
            rel,
            x,
            c1,
            y,
            c2,
            weight,
        });
    }

    let nrules = r.get_u32()? as usize;
    let mut rules = Vec::with_capacity(nrules);
    for _ in 0..nrules {
        let head = get_atom(&mut r)?;
        let nbody = r.get_u8()? as usize;
        if nbody == 0 || nbody > 2 {
            return Err(StorageError::Format(format!(
                "rule body length {nbody} out of range"
            )));
        }
        let mut body = Vec::with_capacity(nbody);
        for _ in 0..nbody {
            body.push(get_atom(&mut r)?);
        }
        let cx = ClassId(r.get_u32()?);
        let cy = ClassId(r.get_u32()?);
        let cz = match r.get_u8()? {
            0 => None,
            1 => Some(ClassId(r.get_u32()?)),
            tag => return Err(StorageError::Format(format!("unknown option tag {tag}"))),
        };
        let weight = r.get_f64()?;
        let significance = r.get_f64()?;
        rules.push(HornRule {
            head,
            body,
            cx,
            cy,
            cz,
            weight,
            significance,
        });
    }

    let nconstraints = r.get_u32()? as usize;
    let mut constraints = Vec::with_capacity(nconstraints);
    for _ in 0..nconstraints {
        let rel = RelationId(r.get_u32()?);
        let classes = match r.get_u8()? {
            0 => None,
            1 => {
                let c1 = ClassId(r.get_u32()?);
                let c2 = ClassId(r.get_u32()?);
                Some((c1, c2))
            }
            tag => return Err(StorageError::Format(format!("unknown option tag {tag}"))),
        };
        let functionality = Functionality::from_alpha(r.get_u8()? as i64)
            .ok_or_else(|| StorageError::Format("invalid functionality alpha".into()))?;
        let degree = r.get_u32()?;
        constraints.push(FunctionalConstraint {
            rel,
            classes,
            functionality,
            degree,
        });
    }

    if !r.is_at_end() {
        return Err(StorageError::Format(format!(
            "{} trailing bytes after KB",
            r.remaining()
        )));
    }

    Ok(ProbKb {
        entities,
        classes,
        relations,
        members,
        subclass_edges,
        signatures,
        facts,
        rules,
        constraints,
    })
}

/// CRC-32 of the canonical KB encoding: a cheap identity fingerprint.
pub fn kb_digest(kb: &ProbKb) -> u32 {
    crc32(&encode_kb(kb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_kb::prelude::parse;

    fn sample_kb() -> ProbKb {
        let mut kb = parse(
            r#"
            fact 0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
            fact 0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)
            rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            functional born_in 1 1
            functional live_in 2 3 Writer Place
            "#,
        )
        .unwrap()
        .build();
        // Cover the weightless (inferred) fact arm too.
        let mut extra = kb.facts[0];
        extra.weight = None;
        extra.y = kb.facts[1].y;
        kb.facts.push(extra);
        kb
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let kb = sample_kb();
        let bytes = encode_kb(&kb);
        let back = decode_kb(&bytes).unwrap();
        assert_eq!(back.stats(), kb.stats());
        assert_eq!(back.facts, kb.facts);
        assert_eq!(back.rules, kb.rules);
        assert_eq!(back.constraints, kb.constraints);
        assert_eq!(back.signatures, kb.signatures);
        assert_eq!(back.members, kb.members);
        assert_eq!(back.subclass_edges, kb.subclass_edges);
        // Canonical form: re-encoding is byte-identical.
        assert_eq!(encode_kb(&back), bytes);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let kb = sample_kb();
        assert_eq!(kb_digest(&kb), kb_digest(&kb));
        let other = parse("fact 0.5 knows(a:P, b:P)").unwrap().build();
        assert_ne!(kb_digest(&kb), kb_digest(&other));
    }

    #[test]
    fn truncations_error_cleanly() {
        let bytes = encode_kb(&sample_kb());
        for cut in 0..bytes.len() {
            assert!(decode_kb(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
