//! Stream framing for the client/server wire protocol.
//!
//! The on-wire layout is the WAL's frame layout (`wal`) lifted from a
//! file onto an arbitrary byte stream, with a kind byte distinguishing
//! the two directions of the protocol:
//!
//! ```text
//! frame := payload length  u32 LE   (kind byte + body)
//!          crc32(payload)  u32 LE
//!          kind            u8       (1 = request, 2 = response)
//!          body            <length - 1> bytes
//! ```
//!
//! A reader validates the length bound *before* allocating (a corrupt or
//! hostile length prefix cannot trigger a huge allocation) and the CRC
//! before handing the body out, so a truncated frame, a flipped bit, or
//! garbage bytes surface as [`StorageError::Corrupt`] — never a panic and
//! never silently wrong bytes. Request/response bodies are encoded with
//! the same [`crate::format`] codecs the snapshots use.

use std::io::{Read, Write};

use crate::crc::crc32;
use crate::error::{Result, StorageError};

/// Frame kinds carried on a protocol stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<FrameKind> {
        match tag {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            other => Err(StorageError::Format(format!("unknown frame kind {other}"))),
        }
    }
}

/// Maximum accepted wire frame payload (64 MiB). Large enough for any
/// delta batch or tabular response the server produces, small enough
/// that a corrupt length prefix cannot exhaust memory.
pub const MAX_WIRE_FRAME_LEN: u32 = 64 << 20;

/// Magic bytes a client sends once, immediately after connecting, so the
/// server can reject strays that are not speaking the protocol.
pub const WIRE_MAGIC: [u8; 8] = *b"PKBNET01";

/// Write one frame (header + kind + body) to `w`. Does not flush.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &[u8]) -> Result<()> {
    let len = body.len() as u64 + 1;
    if len > MAX_WIRE_FRAME_LEN as u64 {
        return Err(StorageError::Format(format!(
            "frame body of {} bytes exceeds MAX_WIRE_FRAME_LEN",
            body.len()
        )));
    }
    let mut payload = Vec::with_capacity(body.len() + 1);
    payload.push(kind.tag());
    payload.extend_from_slice(body);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame).map_err(stream_err)
}

/// Read one frame from `r`, validating length bound and CRC. Returns
/// the frame kind and its body.
///
/// Error taxonomy (what a server session loop needs to distinguish):
/// [`StorageError::Io`] with detail `"eof"` for a clean end-of-stream at
/// a frame boundary (peer hung up), [`StorageError::Io`] for transport
/// failures and mid-frame disconnects, [`StorageError::Corrupt`] for bad
/// CRCs and oversized length prefixes, [`StorageError::Format`] for an
/// unknown kind byte.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>)> {
    let mut header = [0u8; 8];
    read_exact_or_eof(r, &mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len == 0 {
        return Err(StorageError::Corrupt("zero-length frame".into()));
    }
    if len > MAX_WIRE_FRAME_LEN {
        return Err(StorageError::Corrupt(format!(
            "frame length {len} exceeds MAX_WIRE_FRAME_LEN ({MAX_WIRE_FRAME_LEN})"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(stream_err)?;
    if crc32(&payload) != stored_crc {
        return Err(StorageError::Corrupt("frame crc mismatch".into()));
    }
    let kind = FrameKind::from_tag(payload[0])?;
    payload.remove(0);
    Ok((kind, payload))
}

/// Read the connection-opening magic, rejecting anything else.
pub fn read_magic(r: &mut impl Read) -> Result<()> {
    let mut magic = [0u8; 8];
    read_exact_or_eof(r, &mut magic)?;
    if magic != WIRE_MAGIC {
        return Err(StorageError::Corrupt("bad connection magic".into()));
    }
    Ok(())
}

/// Write the connection-opening magic.
pub fn write_magic(w: &mut impl Write) -> Result<()> {
    w.write_all(&WIRE_MAGIC).map_err(stream_err)
}

/// True when `err` is the clean end-of-stream marker from
/// [`read_frame`]/[`read_magic`] (the peer closed between frames).
pub fn is_clean_eof(err: &StorageError) -> bool {
    matches!(err, StorageError::Io { path, detail } if path == "<stream>" && detail == "eof")
}

fn stream_err(e: std::io::Error) -> StorageError {
    StorageError::Io {
        path: "<stream>".into(),
        detail: e.to_string(),
    }
}

/// Like `read_exact`, but a clean EOF *before any byte* maps to the
/// distinguished `"eof"` error so callers can tell a polite hang-up from
/// a torn frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(StorageError::Io {
                    path: "<stream>".into(),
                    detail: if filled == 0 { "eof".into() } else { "unexpected eof mid-frame".into() },
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(stream_err(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(kind: FrameKind, body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, body).unwrap();
        out
    }

    #[test]
    fn roundtrip_both_kinds() {
        for kind in [FrameKind::Request, FrameKind::Response] {
            let bytes = frame_bytes(kind, b"hello wire");
            let (k, body) = read_frame(&mut Cursor::new(&bytes)).unwrap();
            assert_eq!(k, kind);
            assert_eq!(body, b"hello wire");
        }
    }

    #[test]
    fn empty_body_roundtrips() {
        let bytes = frame_bytes(FrameKind::Request, b"");
        let (k, body) = read_frame(&mut Cursor::new(&bytes)).unwrap();
        assert_eq!(k, FrameKind::Request);
        assert!(body.is_empty());
    }

    #[test]
    fn truncation_at_every_offset_errors() {
        let bytes = frame_bytes(FrameKind::Response, b"truncate me please");
        for cut in 0..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut])).unwrap_err();
            match err {
                StorageError::Io { .. } | StorageError::Corrupt(_) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
        // Cut at zero is the clean hang-up case.
        assert!(is_clean_eof(
            &read_frame(&mut Cursor::new(&bytes[..0])).unwrap_err()
        ));
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = frame_bytes(FrameKind::Request, b"guard these bytes");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            // Whatever the flip hit (length, crc, kind, body), the read
            // must fail — never return altered bytes as valid.
            assert!(
                read_frame(&mut Cursor::new(&bad)).is_err(),
                "flip at {i} accepted"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn unknown_kind_rejected() {
        let payload = [9u8, b'x'];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crate::crc::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, StorageError::Format(_)));
    }

    #[test]
    fn magic_roundtrip_and_rejection() {
        let mut out = Vec::new();
        write_magic(&mut out).unwrap();
        read_magic(&mut Cursor::new(&out)).unwrap();
        let err = read_magic(&mut Cursor::new(b"NOTMAGIC")).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }
}
