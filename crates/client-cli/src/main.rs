//! `probkb-cli`: talk to a running `probkb-server`.
//!
//! One-shot mode runs a single command and exits (scripting / CI):
//!
//! ```sh
//! probkb-cli --addr 127.0.0.1:7421 ping
//! probkb-cli --addr 127.0.0.1:7421 fact --id 0
//! probkb-cli --addr 127.0.0.1:7421 fact born_in RG NYC
//! probkb-cli --addr 127.0.0.1:7421 marginal --id 12
//! probkb-cli --addr 127.0.0.1:7421 marginal --id 12 --local --budget 64
//! probkb-cli --addr 127.0.0.1:7421 lineage --id 12 --depth 4
//! probkb-cli --addr 127.0.0.1:7421 apply 'fact 0.9 r(a:C, b:C)'
//! probkb-cli --addr 127.0.0.1:7421 stats
//! probkb-cli --addr 127.0.0.1:7421 shutdown
//! ```
//!
//! With no command, it opens a REPL over stdin with the same verbs (plus
//! `help` and `quit`). The address comes from `--addr` or
//! `PROBKB_ADDR`. Exit status: 0 on success, 1 on a server/transport
//! error, 2 on usage errors.

use std::io::{BufRead, Write};

use probkb_client::prelude::*;

// Rust ignores SIGPIPE, so the std `println!` panics with a broken-pipe
// I/O error when a downstream reader (`probkb-cli ... | grep -q ...`)
// closes stdout early. Shadow it with a variant that exits 0 quietly
// instead — nobody is listening, which for a CLI is success, not a
// crash. Declared before the rest of the file so every call site below
// picks up the shadowed macro.
macro_rules! println {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn usage() -> ! {
    eprintln!(
        "usage: probkb-cli [--addr HOST:PORT] [COMMAND]\n\
         commands:\n\
         \x20 ping\n\
         \x20 fact --id N | fact REL X Y\n\
         \x20 marginal --id N | marginal REL X Y\n\
         \x20   [--local [--budget N[,M]]]  (query-time local grounding)\n\
         \x20 lineage --id N [--depth D] | lineage REL X Y [--depth D]\n\
         \x20 apply 'KB-TEXT'   (statements separated by newlines or ';')\n\
         \x20 retract 'KB-TEXT' (same syntax; currently reports unsupported)\n\
         \x20 stats\n\
         \x20 shutdown\n\
         with no command: interactive REPL on stdin"
    );
    std::process::exit(2);
}

/// Parse `--id N` or `REL X Y` into a [`FactRef`], consuming from `args`.
fn fact_ref(args: &[String]) -> Option<(FactRef, usize)> {
    match args.first().map(String::as_str) {
        Some("--id") => {
            let id = args.get(1)?.parse().ok()?;
            Some((FactRef::Id(id), 2))
        }
        Some(_) if args.len() >= 3 => Some((
            FactRef::Names {
                rel: args[0].clone(),
                x: args[1].clone(),
                y: args[2].clone(),
            },
            3,
        )),
        _ => None,
    }
}

/// Parse `--budget N` (both caps) or `--budget N,M` (nodes, factors).
/// Absent or unparsable → `None` (the server's default budget).
fn budget_of(args: &[String]) -> Option<(u64, u64)> {
    for (i, arg) in args.iter().enumerate() {
        if arg == "--budget" {
            let value = args.get(i + 1)?;
            return match value.split_once(',') {
                Some((n, m)) => Some((n.trim().parse().ok()?, m.trim().parse().ok()?)),
                None => {
                    let n: u64 = value.trim().parse().ok()?;
                    Some((n, n))
                }
            };
        }
    }
    None
}

fn depth_of(args: &[String]) -> u32 {
    for (i, arg) in args.iter().enumerate() {
        if arg == "--depth" {
            if let Some(value) = args.get(i + 1) {
                return value.parse().unwrap_or(3);
            }
        }
    }
    3
}

fn show_fact(f: &FactInfo) -> String {
    let tag = if f.inferred { "inferred" } else { "extracted" };
    match f.p {
        Some(p) => format!("[{tag}, P={p:.4}] {}({}, {}) id={}", f.rel, f.x, f.y, f.id),
        None => format!("[{tag}] {}({}, {}) id={}", f.rel, f.x, f.y, f.id),
    }
}

/// Run one command; returns `false` when the connection should close
/// (shutdown), `true` otherwise. Errors print and set the exit flag.
fn run_command(client: &mut Client, verb: &str, args: &[String], failed: &mut bool) -> bool {
    let outcome: Result<bool, ClientError> = (|| {
        match verb {
            "ping" => {
                let (epoch, protocol, session) = client.ping()?;
                println!("PONG epoch={epoch} protocol={protocol} session={session}");
            }
            "fact" => {
                let Some((fr, _)) = fact_ref(args) else {
                    println!("usage: fact --id N | fact REL X Y");
                    return Ok(true);
                };
                let (epoch, fact) = client.fact(fr)?;
                match fact {
                    Some(f) => println!("epoch={epoch} {}", show_fact(&f)),
                    None => println!("epoch={epoch} not found"),
                }
            }
            "marginal" => {
                let Some((fr, used)) = fact_ref(args) else {
                    println!(
                        "usage: marginal --id N | marginal REL X Y  [--local [--budget N[,M]]]"
                    );
                    return Ok(true);
                };
                let flags = &args[used..];
                if flags.iter().any(|a| a == "--local") {
                    let (epoch, marginal) = client.marginal_local(fr, budget_of(flags))?;
                    match marginal {
                        Some(m) => {
                            let cache = match m.cache {
                                CacheStatus::Miss => "miss",
                                CacheStatus::Hit => "hit",
                                CacheStatus::Carried => "carried",
                            };
                            println!(
                                "epoch={epoch} id={} p={:.6} nodes={} factors={} \
                                 frontier_stops={} cache={cache}",
                                m.id, m.p, m.nodes, m.factors, m.frontier_stops
                            );
                            println!("{}", m.annotate);
                        }
                        None => println!("epoch={epoch} not found"),
                    }
                    return Ok(true);
                }
                let (epoch, marginal) = client.marginal(fr)?;
                match marginal {
                    Some(m) => {
                        let src = match m.source {
                            MarginalSource::Stored => "stored",
                            MarginalSource::Inferred => "inferred",
                        };
                        println!("epoch={epoch} id={} p={:.6} source={src}", m.id, m.p);
                    }
                    None => println!("epoch={epoch} not found"),
                }
            }
            "lineage" => {
                let Some((fr, _)) = fact_ref(args) else {
                    println!("usage: lineage --id N [--depth D] | lineage REL X Y [--depth D]");
                    return Ok(true);
                };
                let (epoch, lineage) = client.lineage(fr, depth_of(args))?;
                match lineage {
                    Some(l) => {
                        println!(
                            "epoch={epoch} id={} base={} derivations={}",
                            l.id,
                            l.is_base,
                            l.derivations.len()
                        );
                        print!("{}", l.rendered);
                    }
                    None => println!("epoch={epoch} not found"),
                }
            }
            "apply" | "retract" => {
                let Some(raw) = args.first() else {
                    println!("usage: {verb} 'KB-TEXT'");
                    return Ok(true);
                };
                let mut text = raw.replace(';', "\n");
                if verb == "retract" {
                    text = text
                        .lines()
                        .filter(|l| !l.trim().is_empty())
                        .map(|l| format!("retract {l}"))
                        .collect::<Vec<_>>()
                        .join("\n");
                }
                let outcome = client.apply_delta(&text)?;
                println!(
                    "applied: epoch={} new_facts={} reused={} new_factors={} fallback={}",
                    outcome.epoch,
                    outcome.new_facts,
                    outcome.reused_facts,
                    outcome.new_factors,
                    outcome.full_fallback
                );
                println!("{}", outcome.annotate);
            }
            "stats" => {
                let s = client.stats()?;
                println!(
                    "epoch={} facts={} inferred={} factors={} sessions={}/{} protocol={}",
                    s.epoch,
                    s.facts,
                    s.inferred,
                    s.factors,
                    s.sessions_active,
                    s.sessions_total,
                    s.protocol
                );
            }
            "shutdown" => {
                let epoch = client.shutdown()?;
                println!("server shutting down at epoch={epoch}");
                return Ok(false);
            }
            "help" => {
                println!("verbs: ping fact marginal lineage apply retract stats shutdown quit");
            }
            other => {
                println!("unknown command `{other}` (try `help`)");
            }
        }
        Ok(true)
    })();
    match outcome {
        Ok(keep_going) => keep_going,
        Err(e) => {
            eprintln!("error: {e}");
            *failed = true;
            // Transport errors end the conversation; server-side errors
            // (e.g. unsupported retract) leave the session usable.
            matches!(e, ClientError::Server { .. })
        }
    }
}

fn repl(client: &mut Client, failed: &mut bool) {
    let stdin = std::io::stdin();
    loop {
        print!("probkb> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let words = tokenize(line.trim());
        let Some((verb, rest)) = words.split_first() else {
            continue;
        };
        if verb == "quit" || verb == "exit" {
            break;
        }
        if !run_command(client, verb, rest, failed) {
            break;
        }
    }
}

/// Split a REPL line into words, keeping single-quoted spans intact so
/// `apply 'fact 0.9 r(a:C, b:C)'` arrives as one argument.
fn tokenize(line: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    let mut quoted = false;
    for ch in line.chars() {
        match ch {
            '\'' => quoted = !quoted,
            c if c.is_whitespace() && !quoted => {
                if !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

fn main() {
    let mut addr = std::env::var("PROBKB_ADDR").unwrap_or_default();
    let mut command: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or_default();
            }
            a if a.starts_with("--addr=") => addr = a["--addr=".len()..].to_string(),
            "--help" | "-h" => usage(),
            _ => command.push(args[i].clone()),
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("probkb-cli: no address (use --addr HOST:PORT or PROBKB_ADDR)");
        std::process::exit(2);
    }

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("probkb-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    let mut failed = false;
    match command.split_first() {
        None => repl(&mut client, &mut failed),
        Some((verb, rest)) => {
            run_command(&mut client, verb, rest, &mut failed);
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
