//! Property tests for factor graphs, coloring, and lineage.

use probkb_support::check::prelude::*;

use probkb_factorgraph::prelude::*;

/// Random factor graphs: `n` variables, factors with 0–2 body vars.
fn arb_graph() -> impl Strategy<Value = FactorGraph> {
    (2usize..12).prop_flat_map(|n| {
        let factor = (0..n, prop::collection::vec(0..n, 0..=2), -3.0f64..3.0).prop_map(
            move |(head, mut body, weight)| {
                body.retain(|&v| v != head);
                body.dedup();
                Factor { head, body, weight }
            },
        );
        prop::collection::vec(factor, 0..20)
            .prop_map(move |factors| FactorGraph::new(n, factors))
    })
}

proptest! {
    /// Greedy coloring is always proper and uses at most max-degree+1
    /// colors.
    #[test]
    fn coloring_proper_and_bounded(g in arb_graph()) {
        let c = color(&g);
        prop_assert!(is_proper(&g, &c));
        let max_degree = (0..g.num_vars())
            .map(|v| g.neighbors(v).len())
            .max()
            .unwrap_or(0);
        prop_assert!(c.num_colors() <= max_degree + 1);
        // Classes partition the variables.
        let total: usize = c.classes.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_vars());
    }

    /// flip_delta (mutating) and flip_delta_ro (read-only) agree, and both
    /// equal the brute-force log-score difference.
    #[test]
    fn flip_deltas_agree(g in arb_graph(), bits in prop::collection::vec(any::<bool>(), 12)) {
        let assignment: Vec<bool> = (0..g.num_vars()).map(|v| bits[v]).collect();
        for v in 0..g.num_vars() {
            let ro = g.flip_delta_ro(v, &assignment);
            let mut copy = assignment.clone();
            let mutating = g.flip_delta(v, &mut copy);
            prop_assert_eq!(&copy, &assignment, "flip_delta must restore state");
            let mut hi = assignment.clone();
            hi[v] = true;
            let mut lo = assignment.clone();
            lo[v] = false;
            let brute = g.log_score(&hi) - g.log_score(&lo);
            prop_assert!((ro - brute).abs() < 1e-9);
            prop_assert!((mutating - brute).abs() < 1e-9);
        }
    }

    /// JSON export/import preserves graphs exactly.
    #[test]
    fn export_roundtrip(g in arb_graph()) {
        let gg = GroundGraph {
            var_to_fact: (0..g.num_vars() as i64).map(|i| i * 7 + 3).collect(),
            fact_to_var: (0..g.num_vars())
                .map(|v| ((v as i64) * 7 + 3, v))
                .collect(),
            graph: g,
        };
        let back = from_json(&to_json(&gg)).unwrap();
        prop_assert_eq!(back.graph.factors(), gg.graph.factors());
        prop_assert_eq!(back.var_to_fact, gg.var_to_fact);
    }

    /// Lineage ancestors/descendants are dual: a ∈ ancestors(b) iff
    /// b ∈ descendants(a).
    #[test]
    fn lineage_duality(
        edges in prop::collection::vec((0i64..10, 0i64..10), 0..20),
    ) {
        use probkb_core::relmodel::tphi_schema;
        use probkb_relational::prelude::{Table, Value};
        // Derivation rows head <- body (self-loops skipped to keep the
        // lineage a DAG-ish relation; cycles are fine for the duality but
        // trivial ones add no information).
        let rows: Vec<Vec<Value>> = edges
            .iter()
            .filter(|(h, b)| h != b)
            .map(|&(h, b)| {
                vec![Value::Int(h), Value::Int(b), Value::Null, Value::Float(1.0)]
            })
            .collect();
        let phi = Table::from_rows(tphi_schema(), rows).unwrap();
        let lineage = Lineage::from_phi(&phi);
        for a in 0..10i64 {
            let descendants = lineage.descendants(a);
            for &d in &descendants {
                prop_assert!(
                    lineage.ancestors(d).contains(&a),
                    "{a} -> {d} but {a} not in ancestors({d})"
                );
            }
            for b in 0..10i64 {
                if lineage.ancestors(b).contains(&a) {
                    prop_assert!(descendants.contains(&b));
                }
            }
        }
    }

    /// log_score is the sum of satisfied weights: adding a factor changes
    /// the score by exactly its log value.
    #[test]
    fn log_score_additivity(
        g in arb_graph(),
        extra_head in 0usize..12,
        extra_weight in -2.0f64..2.0,
        bits in prop::collection::vec(any::<bool>(), 12),
    ) {
        let n = g.num_vars();
        let head = extra_head % n;
        let assignment: Vec<bool> = (0..n).map(|v| bits[v]).collect();
        let base = g.log_score(&assignment);
        let mut factors = g.factors().to_vec();
        let extra = Factor::singleton(head, extra_weight);
        let delta = extra.log_value(&assignment);
        factors.push(extra);
        let g2 = FactorGraph::new(n, factors);
        prop_assert!((g2.log_score(&assignment) - base - delta).abs() < 1e-12);
    }
}
