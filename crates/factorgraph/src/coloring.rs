//! Greedy graph coloring of the variable-interaction graph.
//!
//! Two variables interact when they share a factor; variables of the same
//! color are conditionally independent given the rest, so a chromatic
//! Gibbs sampler (Gonzalez et al., cited by the paper for its inference
//! stage) can update a whole color class in parallel.

use crate::graph::{FactorGraph, VarId};

/// A coloring of a factor graph's variables.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// `color[v]` is variable `v`'s color.
    pub color: Vec<usize>,
    /// Variables grouped by color.
    pub classes: Vec<Vec<VarId>>,
}

impl Coloring {
    /// Number of colors used.
    pub fn num_colors(&self) -> usize {
        self.classes.len()
    }
}

/// Greedy first-fit coloring in degree order (largest first), which keeps
/// the color count near-minimal on the skewed graphs grounding produces.
pub fn color(graph: &FactorGraph) -> Coloring {
    let n = graph.num_vars();
    let mut order: Vec<VarId> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.factors_of(v).len()));

    let mut color = vec![usize::MAX; n];
    let mut max_color = 0usize;
    let mut used: Vec<bool> = Vec::new();
    for &v in &order {
        used.clear();
        used.resize(max_color + 1, false);
        for u in graph.neighbors(v) {
            let c = color[u];
            if c != usize::MAX {
                if c >= used.len() {
                    used.resize(c + 1, false);
                }
                used[c] = true;
            }
        }
        let c = used.iter().position(|&b| !b).unwrap_or(used.len());
        color[v] = c;
        max_color = max_color.max(c + 1);
    }

    let mut classes: Vec<Vec<VarId>> = vec![Vec::new(); max_color];
    for (v, &c) in color.iter().enumerate() {
        classes[c].push(v);
    }
    classes.retain(|class| !class.is_empty());
    // Re-number colors densely after the retain.
    let mut color = vec![0usize; n];
    for (c, class) in classes.iter().enumerate() {
        for &v in class {
            color[v] = c;
        }
    }
    Coloring { color, classes }
}

/// Verify that a coloring is proper (no two neighbors share a color).
pub fn is_proper(graph: &FactorGraph, coloring: &Coloring) -> bool {
    (0..graph.num_vars()).all(|v| {
        graph
            .neighbors(v)
            .iter()
            .all(|&u| coloring.color[u] != coloring.color[v])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Factor;

    #[test]
    fn chain_uses_two_colors() {
        let g = FactorGraph::new(
            4,
            (1..4).map(|v| Factor::rule(v, vec![v - 1], 1.0)).collect(),
        );
        let c = color(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn triangle_uses_three_colors() {
        // A ternary factor makes all three variables mutually adjacent.
        let g = FactorGraph::new(3, vec![Factor::rule(2, vec![0, 1], 1.0)]);
        let c = color(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn isolated_vars_share_one_color() {
        let g = FactorGraph::new(5, vec![Factor::singleton(0, 1.0)]);
        let c = color(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(c.num_colors(), 1);
        assert_eq!(c.classes[0].len(), 5);
    }

    #[test]
    fn classes_partition_variables() {
        let g = FactorGraph::new(
            6,
            vec![
                Factor::rule(1, vec![0], 1.0),
                Factor::rule(2, vec![0, 1], 1.0),
                Factor::rule(5, vec![3], 1.0),
            ],
        );
        let c = color(&g);
        assert!(is_proper(&g, &c));
        let total: usize = c.classes.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        let mut seen = [false; 6];
        for class in &c.classes {
            for &v in class {
                assert!(!seen[v], "variable {v} in two classes");
                seen[v] = true;
            }
        }
    }
}
