//! Greedy graph coloring of the variable-interaction graph.
//!
//! Two variables interact when they share a factor; variables of the same
//! color are conditionally independent given the rest, so a chromatic
//! Gibbs sampler (Gonzalez et al., cited by the paper for its inference
//! stage) can update a whole color class in parallel.

use crate::graph::{FactorGraph, VarId};

/// A coloring of a factor graph's variables.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// `color[v]` is variable `v`'s color.
    pub color: Vec<usize>,
    /// Variables grouped by color.
    pub classes: Vec<Vec<VarId>>,
}

impl Coloring {
    /// Number of colors used.
    pub fn num_colors(&self) -> usize {
        self.classes.len()
    }

    /// Split every color class into contiguous shards of at most
    /// `shard_size` variables. Shards are the sampler's unit of work *and*
    /// of randomness: a parallel Gibbs sweep seeds one RNG stream per
    /// shard, so results depend on the partitioning (fixed by the graph
    /// and `shard_size`) but never on how shards are spread over workers.
    pub fn partition(&self, shard_size: usize) -> Sharding {
        let shard_size = shard_size.max(1);
        let mut shards = Vec::new();
        let mut class_off = Vec::with_capacity(self.classes.len() + 1);
        class_off.push(0);
        for (class, vars) in self.classes.iter().enumerate() {
            let mut start = 0;
            while start < vars.len() {
                let len = shard_size.min(vars.len() - start);
                shards.push(Shard {
                    class,
                    index: shards.len(),
                    start,
                    len,
                });
                start += len;
            }
            class_off.push(shards.len());
        }
        Sharding {
            shard_size,
            shards,
            class_off,
        }
    }

    /// The variables of a shard (a contiguous slice of its color class).
    pub fn shard_vars(&self, shard: &Shard) -> &[VarId] {
        &self.classes[shard.class][shard.start..shard.start + shard.len]
    }
}

/// One shard of a color class: a contiguous run of same-color (hence
/// conditionally independent) variables that is resampled as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// The color class this shard belongs to.
    pub class: usize,
    /// Global shard index — stable across worker counts, used to seed the
    /// shard's RNG stream.
    pub index: usize,
    /// Offset of the shard within its class.
    pub start: usize,
    /// Number of variables in the shard.
    pub len: usize,
}

/// A fixed-size sharding of a [`Coloring`] — the partition schedule the
/// parallel samplers distribute over workers.
#[derive(Debug, Clone)]
pub struct Sharding {
    /// Maximum variables per shard.
    pub shard_size: usize,
    /// All shards, grouped by class, in class order.
    pub shards: Vec<Shard>,
    /// `shards[class_off[c]..class_off[c + 1]]` are class `c`'s shards.
    class_off: Vec<usize>,
}

impl Sharding {
    /// Total number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards of one color class.
    pub fn shards_of(&self, class: usize) -> &[Shard] {
        &self.shards[self.class_off[class]..self.class_off[class + 1]]
    }
}

/// Greedy first-fit coloring in degree order (largest first), which keeps
/// the color count near-minimal on the skewed graphs grounding produces.
pub fn color(graph: &FactorGraph) -> Coloring {
    let n = graph.num_vars();
    let mut order: Vec<VarId> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.factors_of(v).len()));

    let mut color = vec![usize::MAX; n];
    let mut max_color = 0usize;
    let mut used: Vec<bool> = Vec::new();
    for &v in &order {
        used.clear();
        used.resize(max_color + 1, false);
        for u in graph.neighbors(v) {
            let c = color[u];
            if c != usize::MAX {
                if c >= used.len() {
                    used.resize(c + 1, false);
                }
                used[c] = true;
            }
        }
        let c = used.iter().position(|&b| !b).unwrap_or(used.len());
        color[v] = c;
        max_color = max_color.max(c + 1);
    }

    let mut classes: Vec<Vec<VarId>> = vec![Vec::new(); max_color];
    for (v, &c) in color.iter().enumerate() {
        classes[c].push(v);
    }
    classes.retain(|class| !class.is_empty());
    // Re-number colors densely after the retain.
    let mut color = vec![0usize; n];
    for (c, class) in classes.iter().enumerate() {
        for &v in class {
            color[v] = c;
        }
    }
    Coloring { color, classes }
}

/// Extend a coloring after the graph grew (see [`FactorGraph::extend`]):
/// variables `old_num_vars..` are new, and added factors may also have
/// made two previously independent *old* variables adjacent. Old colors
/// are kept wherever they are still proper; only the new variables plus
/// any old variables now in conflict are (re)colored, greedily in the
/// same descending-degree order [`color`] uses. The result is proper and
/// deterministic, though it may use more colors than a from-scratch
/// recoloring — the price of not touching the rest of the assignment.
pub fn extend_color(graph: &FactorGraph, base: &Coloring, old_num_vars: usize) -> Coloring {
    let n = graph.num_vars();
    assert!(old_num_vars <= n, "old variable count exceeds the graph");
    assert_eq!(base.color.len(), old_num_vars, "base coloring size mismatch");
    let mut color = vec![usize::MAX; n];
    color[..old_num_vars].copy_from_slice(&base.color);

    // Every conflicting old-old edge gets both endpoints recolored; new
    // variables are uncolored by construction.
    let mut recolor: Vec<VarId> = (old_num_vars..n).collect();
    for v in 0..old_num_vars {
        if graph
            .neighbors(v)
            .iter()
            .any(|&u| u < old_num_vars && base.color[u] == base.color[v])
        {
            recolor.push(v);
        }
    }
    for &v in &recolor {
        color[v] = usize::MAX;
    }
    recolor.sort_by_key(|&v| (std::cmp::Reverse(graph.factors_of(v).len()), v));

    let mut used: Vec<bool> = Vec::new();
    for &v in &recolor {
        used.clear();
        for u in graph.neighbors(v) {
            let c = color[u];
            if c != usize::MAX {
                if c >= used.len() {
                    used.resize(c + 1, false);
                }
                used[c] = true;
            }
        }
        color[v] = used.iter().position(|&b| !b).unwrap_or(used.len());
    }

    // Rebuild classes and re-number colors densely, as `color` does.
    let max_color = color.iter().copied().max().map_or(0, |c| c + 1);
    let mut classes: Vec<Vec<VarId>> = vec![Vec::new(); max_color];
    for (v, &c) in color.iter().enumerate() {
        classes[c].push(v);
    }
    classes.retain(|class| !class.is_empty());
    let mut color = vec![0usize; n];
    for (c, class) in classes.iter().enumerate() {
        for &v in class {
            color[v] = c;
        }
    }
    Coloring { color, classes }
}

/// Verify that a coloring is proper (no two neighbors share a color).
pub fn is_proper(graph: &FactorGraph, coloring: &Coloring) -> bool {
    (0..graph.num_vars()).all(|v| {
        graph
            .neighbors(v)
            .iter()
            .all(|&u| coloring.color[u] != coloring.color[v])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Factor;

    #[test]
    fn chain_uses_two_colors() {
        let g = FactorGraph::new(
            4,
            (1..4).map(|v| Factor::rule(v, vec![v - 1], 1.0)).collect(),
        );
        let c = color(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn triangle_uses_three_colors() {
        // A ternary factor makes all three variables mutually adjacent.
        let g = FactorGraph::new(3, vec![Factor::rule(2, vec![0, 1], 1.0)]);
        let c = color(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn isolated_vars_share_one_color() {
        let g = FactorGraph::new(5, vec![Factor::singleton(0, 1.0)]);
        let c = color(&g);
        assert!(is_proper(&g, &c));
        assert_eq!(c.num_colors(), 1);
        assert_eq!(c.classes[0].len(), 5);
    }

    #[test]
    fn partition_shards_cover_every_class_exactly() {
        let g = FactorGraph::new(
            7,
            vec![
                Factor::rule(1, vec![0], 1.0),
                Factor::rule(2, vec![0, 1], 1.0),
            ],
        );
        let c = color(&g);
        for shard_size in [1usize, 2, 3, 100] {
            let p = c.partition(shard_size);
            // Global indices are dense and in order.
            for (i, s) in p.shards.iter().enumerate() {
                assert_eq!(s.index, i);
                assert!(s.len >= 1 && s.len <= shard_size);
            }
            // Per class, shards tile the class without gaps or overlap.
            let mut total = 0usize;
            for class in 0..c.num_colors() {
                let mut cursor = 0usize;
                for s in p.shards_of(class) {
                    assert_eq!(s.class, class);
                    assert_eq!(s.start, cursor);
                    assert_eq!(c.shard_vars(s).len(), s.len);
                    cursor += s.len;
                    total += s.len;
                }
                assert_eq!(cursor, c.classes[class].len());
            }
            assert_eq!(total, g.num_vars());
            assert_eq!(
                p.num_shards(),
                c.classes
                    .iter()
                    .map(|cl| cl.len().div_ceil(shard_size))
                    .sum::<usize>()
            );
        }
    }

    #[test]
    fn partition_is_independent_of_worker_count() {
        // The schedule is a pure function of coloring + shard size — there
        // is no worker-count input at all, so two computations agree.
        let g = FactorGraph::new(
            5,
            (1..5).map(|v| Factor::rule(v, vec![v - 1], 1.0)).collect(),
        );
        let c = color(&g);
        assert_eq!(c.partition(2).shards, c.partition(2).shards);
        // Degenerate shard size is clamped to 1.
        assert_eq!(c.partition(0).shard_size, 1);
    }

    #[test]
    fn extend_color_keeps_untouched_assignments() {
        let mut g = FactorGraph::new(
            4,
            (1..4).map(|v| Factor::rule(v, vec![v - 1], 1.0)).collect(),
        );
        let base = color(&g);
        // Hang two new variables off the end of the chain.
        g.extend(
            6,
            vec![Factor::rule(4, vec![3], 1.0), Factor::rule(5, vec![4], 1.0)],
        );
        let ext = extend_color(&g, &base, 4);
        assert!(is_proper(&g, &ext));
        // Old vars 0..3 keep a proper 2-coloring; only 3 gained neighbors
        // and none of them conflicts, so no old var was recolored: the old
        // classes survive as subsets.
        for v in 0..4 {
            for u in 0..4 {
                assert_eq!(
                    base.color[v] == base.color[u],
                    ext.color[v] == ext.color[u],
                    "old same-class structure changed at ({v},{u})"
                );
            }
        }
    }

    #[test]
    fn extend_color_repairs_old_old_conflicts() {
        // 0-1 and 2-3 chains: 0 and 2 may share a color. A new ternary
        // factor makes 0, 2 and the new var 4 mutually adjacent, forcing a
        // repair of the old assignment.
        let mut g = FactorGraph::new(
            4,
            vec![Factor::rule(1, vec![0], 1.0), Factor::rule(3, vec![2], 1.0)],
        );
        let base = color(&g);
        assert_eq!(base.color[0], base.color[2]);
        g.extend(5, vec![Factor::rule(4, vec![0, 2], 1.0)]);
        let ext = extend_color(&g, &base, 4);
        assert!(is_proper(&g, &ext));
        assert_ne!(ext.color[0], ext.color[2]);
        assert_ne!(ext.color[0], ext.color[4]);
        assert_ne!(ext.color[2], ext.color[4]);
    }

    #[test]
    fn extend_color_is_deterministic_and_partitions_vars() {
        let mut g = FactorGraph::new(
            5,
            (1..5).map(|v| Factor::rule(v, vec![v - 1], 1.0)).collect(),
        );
        let base = color(&g);
        g.extend(8, vec![Factor::rule(7, vec![5, 6], 0.5)]);
        let a = extend_color(&g, &base, 5);
        let b = extend_color(&g, &base, 5);
        assert_eq!(a.color, b.color);
        assert_eq!(a.classes, b.classes);
        let total: usize = a.classes.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
        assert!(is_proper(&g, &a));
    }

    #[test]
    fn classes_partition_variables() {
        let g = FactorGraph::new(
            6,
            vec![
                Factor::rule(1, vec![0], 1.0),
                Factor::rule(2, vec![0, 1], 1.0),
                Factor::rule(5, vec![3], 1.0),
            ],
        );
        let c = color(&g);
        assert!(is_proper(&g, &c));
        let total: usize = c.classes.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        let mut seen = [false; 6];
        for class in &c.classes {
            for &v in class {
                assert!(!seen[v], "variable {v} in two classes");
                seen[v] = true;
            }
        }
    }
}
