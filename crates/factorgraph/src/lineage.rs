//! Lineage queries over `TΦ` (§4.2.3).
//!
//! Because `TΦ` records which facts derived which (`I1 ← I2, I3`), it
//! contains the entire lineage of the expanded KB and can be queried for
//! why-provenance — the paper uses this to assess fact credibility.

use std::collections::{HashMap, HashSet};

use probkb_core::relmodel::tphi;
use probkb_relational::prelude::Table;

/// One direct derivation of a fact: the rule weight and the body facts.
#[derive(Debug, Clone, PartialEq)]
pub struct Derivation {
    /// Rule weight of the ground clause.
    pub weight: f64,
    /// Body fact ids (1 or 2).
    pub body: Vec<i64>,
}

/// A proof tree node: a fact, how it was derived, and the body subtrees.
#[derive(Debug, Clone)]
pub struct ProofTree {
    /// The fact being proved.
    pub fact: i64,
    /// Derivations, each with recursively expanded body proofs. Empty for
    /// base (extracted) facts.
    pub derivations: Vec<(f64, Vec<ProofTree>)>,
    /// True when expansion stopped at the depth cap.
    pub truncated: bool,
}

/// An index over `TΦ` for lineage queries.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    by_head: HashMap<i64, Vec<Derivation>>,
    singleton_weight: HashMap<i64, f64>,
}

impl Lineage {
    /// Build the index from a `TΦ` table.
    pub fn from_phi(phi: &Table) -> Self {
        let mut lineage = Lineage::default();
        for row in phi.rows() {
            let head = row[tphi::I1].as_int().expect("I1");
            let weight = row[tphi::W].as_float().expect("w");
            let mut body = Vec::new();
            for col in [tphi::I2, tphi::I3] {
                if let Some(fact) = row[col].as_int() {
                    body.push(fact);
                }
            }
            if body.is_empty() {
                lineage.singleton_weight.insert(head, weight);
            } else {
                lineage
                    .by_head
                    .entry(head)
                    .or_default()
                    .push(Derivation { weight, body });
            }
        }
        lineage
    }

    /// Direct derivations of a fact (why-provenance, one level).
    pub fn derivations(&self, fact: i64) -> &[Derivation] {
        self.by_head.get(&fact).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The extraction weight of a base fact, if it has one.
    pub fn extraction_weight(&self, fact: i64) -> Option<f64> {
        self.singleton_weight.get(&fact).copied()
    }

    /// True when a fact has no rule derivations (it was extracted, not
    /// inferred).
    pub fn is_base(&self, fact: i64) -> bool {
        !self.by_head.contains_key(&fact)
    }

    /// All facts a fact transitively depends on.
    pub fn ancestors(&self, fact: i64) -> HashSet<i64> {
        let mut out = HashSet::new();
        let mut stack = vec![fact];
        while let Some(cur) = stack.pop() {
            for d in self.derivations(cur) {
                for &b in &d.body {
                    if out.insert(b) {
                        stack.push(b);
                    }
                }
            }
        }
        out
    }

    /// All facts transitively derived (directly or not) from `fact` —
    /// used to trace error propagation (Figure 5(a)).
    pub fn descendants(&self, fact: i64) -> HashSet<i64> {
        // Invert the edges once; fine for on-demand forensic queries.
        let mut children: HashMap<i64, Vec<i64>> = HashMap::new();
        for (head, derivations) in &self.by_head {
            for d in derivations {
                for &b in &d.body {
                    children.entry(b).or_default().push(*head);
                }
            }
        }
        let mut out = HashSet::new();
        let mut stack = vec![fact];
        while let Some(cur) = stack.pop() {
            if let Some(kids) = children.get(&cur) {
                for &k in kids {
                    if out.insert(k) {
                        stack.push(k);
                    }
                }
            }
        }
        out
    }

    /// Expand the full proof tree of a fact up to `max_depth` derivation
    /// levels.
    pub fn proof_tree(&self, fact: i64, max_depth: usize) -> ProofTree {
        if max_depth == 0 {
            return ProofTree {
                fact,
                derivations: vec![],
                truncated: !self.is_base(fact),
            };
        }
        let derivations = self
            .derivations(fact)
            .iter()
            .map(|d| {
                let subtrees = d
                    .body
                    .iter()
                    .map(|&b| self.proof_tree(b, max_depth - 1))
                    .collect();
                (d.weight, subtrees)
            })
            .collect();
        ProofTree {
            fact,
            derivations,
            truncated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_core::relmodel::tphi_schema;
    use probkb_relational::prelude::Value;

    /// TΦ: 0,1 base (singletons); 2 ← 0; 3 ← 1,2 (two rules derive 3).
    fn phi() -> Table {
        let rows = vec![
            vec![Value::Int(0), Value::Null, Value::Null, Value::Float(0.9)],
            vec![Value::Int(1), Value::Null, Value::Null, Value::Float(0.8)],
            vec![Value::Int(2), Value::Int(0), Value::Null, Value::Float(1.4)],
            vec![
                Value::Int(3),
                Value::Int(1),
                Value::Int(2),
                Value::Float(0.5),
            ],
            vec![Value::Int(3), Value::Int(0), Value::Null, Value::Float(0.3)],
        ];
        Table::from_rows(tphi_schema(), rows).unwrap()
    }

    #[test]
    fn derivations_and_base_facts() {
        let l = Lineage::from_phi(&phi());
        assert!(l.is_base(0));
        assert!(l.is_base(1));
        assert!(!l.is_base(3));
        assert_eq!(l.derivations(2).len(), 1);
        assert_eq!(l.derivations(3).len(), 2);
        assert_eq!(l.extraction_weight(0), Some(0.9));
        assert_eq!(l.extraction_weight(2), None);
    }

    #[test]
    fn ancestors_are_transitive() {
        let l = Lineage::from_phi(&phi());
        let a = l.ancestors(3);
        assert_eq!(a, HashSet::from([0, 1, 2]));
        assert_eq!(l.ancestors(2), HashSet::from([0]));
        assert!(l.ancestors(0).is_empty());
    }

    #[test]
    fn descendants_trace_error_propagation() {
        let l = Lineage::from_phi(&phi());
        // An error in fact 0 taints 2 and 3 (Figure 5(a)'s cascade).
        assert_eq!(l.descendants(0), HashSet::from([2, 3]));
        assert_eq!(l.descendants(2), HashSet::from([3]));
        assert!(l.descendants(3).is_empty());
    }

    #[test]
    fn proof_tree_expands_and_truncates() {
        let l = Lineage::from_phi(&phi());
        let tree = l.proof_tree(3, 5);
        assert_eq!(tree.derivations.len(), 2);
        assert!(!tree.truncated);
        // The (1, 2) derivation's subtree for 2 expands down to fact 0.
        let deep = &tree.derivations[0].1[1];
        assert_eq!(deep.fact, 2);
        assert_eq!(deep.derivations.len(), 1);

        let shallow = l.proof_tree(3, 1);
        let sub = &shallow.derivations[0].1[1];
        assert!(sub.truncated); // fact 2 has derivations but depth ran out
    }
}
