//! # probkb-factorgraph
//!
//! Ground factor graphs for ProbKB (§2.2, Definition 7): the bridge
//! between the relational grounding output `TΦ` and probabilistic
//! inference.
//!
//! * [`graph`] — binary variables, MLN clause factors (`e^W` when
//!   satisfied), CSR adjacency, Gibbs flip deltas.
//! * [`from_phi`] — `TΦ` table → [`from_phi::GroundGraph`] with fact-id ↔
//!   variable mapping.
//! * [`coloring`] — greedy coloring for chromatic parallel Gibbs.
//! * [`lineage`] — why-provenance over `TΦ`: derivations, ancestors,
//!   descendants (error propagation), proof trees.
//! * [`export`] — JSON interchange for external inference engines (the
//!   paper's GraphLab hand-off, Figure 1).

#![warn(missing_docs)]

pub mod coloring;
pub mod export;
pub mod from_phi;
pub mod graph;
pub mod lineage;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::coloring::{color, extend_color, is_proper, Coloring, Shard, Sharding};
    pub use crate::export::{from_json, to_json, GraphDoc};
    pub use crate::from_phi::{from_phi, GroundGraph};
    pub use crate::graph::{Factor, FactorGraph, VarId};
    pub use crate::lineage::{Derivation, Lineage, ProofTree};
}
