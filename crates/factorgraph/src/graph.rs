//! The ground factor graph (§2.2).
//!
//! Variables are binary ground atoms (one per `TΠ` fact); each factor
//! encodes one ground MLN clause `head ← body` with value `e^W` when the
//! clause is satisfied and `1` otherwise, so the joint is
//! `P(X = x) ∝ exp(Σᵢ Wᵢ nᵢ(x))` (Equation 4).


/// A variable index in a factor graph (dense, 0-based).
pub type VarId = usize;

/// One ground factor: `head ← body` with weight `w`. An empty body is a
/// singleton factor asserting the fact itself with strength `w`.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// The head variable.
    pub head: VarId,
    /// Zero, one, or two body variables.
    pub body: Vec<VarId>,
    /// The MLN weight `W`.
    pub weight: f64,
}

impl Factor {
    /// A singleton factor (extracted fact with weight).
    pub fn singleton(head: VarId, weight: f64) -> Self {
        Factor {
            head,
            body: vec![],
            weight,
        }
    }

    /// A rule factor `head ← body`.
    pub fn rule(head: VarId, body: Vec<VarId>, weight: f64) -> Self {
        Factor { head, body, weight }
    }

    /// All variables this factor touches (head first).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        std::iter::once(self.head).chain(self.body.iter().copied())
    }

    /// Is the ground clause satisfied under `assignment`?
    ///
    /// A singleton clause is satisfied when the fact is true; an
    /// implication is violated only when the whole body is true and the
    /// head is false.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        if self.body.is_empty() {
            return assignment[self.head];
        }
        let body_true = self.body.iter().all(|&v| assignment[v]);
        !body_true || assignment[self.head]
    }

    /// Log factor value: `w` if satisfied, `0` otherwise (factor values
    /// `e^w` / `1`).
    pub fn log_value(&self, assignment: &[bool]) -> f64 {
        if self.satisfied(assignment) {
            self.weight
        } else {
            0.0
        }
    }

    /// Like [`Factor::satisfied`] but with variable `var` overridden to
    /// `value` — read-only, for lock-free parallel samplers.
    pub fn satisfied_with(&self, assignment: &[bool], var: VarId, value: bool) -> bool {
        self.satisfied_by(&|v| assignment[v], var, value)
    }

    /// Log value with an override (read-only).
    pub fn log_value_with(&self, assignment: &[bool], var: VarId, value: bool) -> f64 {
        if self.satisfied_with(assignment, var, value) {
            self.weight
        } else {
            0.0
        }
    }

    /// Satisfaction under an arbitrary state accessor with `var`
    /// overridden — lets samplers store state in atomics without copying.
    pub fn satisfied_by(&self, read: &impl Fn(VarId) -> bool, var: VarId, value: bool) -> bool {
        let get = |v: VarId| if v == var { value } else { read(v) };
        if self.body.is_empty() {
            return get(self.head);
        }
        let body_true = self.body.iter().all(|&v| get(v));
        !body_true || get(self.head)
    }

    /// Log value under an arbitrary state accessor with an override.
    pub fn log_value_by(&self, read: &impl Fn(VarId) -> bool, var: VarId, value: bool) -> f64 {
        if self.satisfied_by(read, var, value) {
            self.weight
        } else {
            0.0
        }
    }
}

/// A ground factor graph with precomputed variable→factor adjacency.
#[derive(Debug, Clone)]
pub struct FactorGraph {
    num_vars: usize,
    factors: Vec<Factor>,
    /// CSR adjacency: `adj[adj_off[v]..adj_off[v+1]]` are the factor
    /// indices touching variable `v`.
    adj_off: Vec<usize>,
    adj: Vec<usize>,
}

impl FactorGraph {
    /// Build a graph from factors over `num_vars` variables.
    ///
    /// # Panics
    /// Panics if a factor references a variable `>= num_vars`.
    pub fn new(num_vars: usize, factors: Vec<Factor>) -> Self {
        // Each factor appears at most once in a variable's adjacency even
        // if the variable occurs several times in the clause (head repeated
        // in the body, repeated body atoms): a flip changes the factor's
        // value once, so samplers summing over `factors_of` must see it
        // once — the same per-factor accounting the exact oracle uses.
        let distinct = |f: &Factor| {
            let mut vs: Vec<usize> = f.vars().collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        let mut degree = vec![0usize; num_vars];
        for f in &factors {
            for v in f.vars() {
                assert!(v < num_vars, "factor references variable {v} >= {num_vars}");
            }
            for v in distinct(f) {
                degree[v] += 1;
            }
        }
        let mut adj_off = Vec::with_capacity(num_vars + 1);
        let mut acc = 0;
        adj_off.push(0);
        for d in &degree {
            acc += d;
            adj_off.push(acc);
        }
        let mut cursor = adj_off.clone();
        let mut adj = vec![0usize; acc];
        for (fi, f) in factors.iter().enumerate() {
            for v in distinct(f) {
                adj[cursor[v]] = fi;
                cursor[v] += 1;
            }
        }
        FactorGraph {
            num_vars,
            factors,
            adj_off,
            adj,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Factor indices touching variable `v`.
    pub fn factors_of(&self, v: VarId) -> &[usize] {
        &self.adj[self.adj_off[v]..self.adj_off[v + 1]]
    }

    /// Unnormalized log probability of an assignment: `Σᵢ Wᵢ nᵢ(x)`.
    pub fn log_score(&self, assignment: &[bool]) -> f64 {
        self.factors.iter().map(|f| f.log_value(assignment)).sum()
    }

    /// The log-value difference for flipping `v` to true vs false, with
    /// the rest of the assignment fixed — the Gibbs conditional's logit.
    pub fn flip_delta(&self, v: VarId, assignment: &mut [bool]) -> f64 {
        let mut delta = 0.0;
        let old = assignment[v];
        for &fi in self.factors_of(v) {
            let f = &self.factors[fi];
            assignment[v] = true;
            delta += f.log_value(assignment);
            assignment[v] = false;
            delta -= f.log_value(assignment);
        }
        assignment[v] = old;
        delta
    }

    /// Read-only variant of [`FactorGraph::flip_delta`]: no temporary
    /// mutation, so color classes can be resampled concurrently from a
    /// shared assignment slice.
    pub fn flip_delta_ro(&self, v: VarId, assignment: &[bool]) -> f64 {
        self.factors_of(v)
            .iter()
            .map(|&fi| {
                let f = &self.factors[fi];
                f.log_value_with(assignment, v, true) - f.log_value_with(assignment, v, false)
            })
            .sum()
    }

    /// Flip delta under an arbitrary state accessor (atomics, snapshots).
    pub fn flip_delta_by(&self, v: VarId, read: &impl Fn(VarId) -> bool) -> f64 {
        self.factors_of(v)
            .iter()
            .map(|&fi| {
                let f = &self.factors[fi];
                f.log_value_by(read, v, true) - f.log_value_by(read, v, false)
            })
            .sum()
    }

    /// Grow the graph in place: enlarge the variable range to
    /// `new_num_vars` and append `added` factors, merging them into the
    /// CSR adjacency. Existing factor indices are stable and the result is
    /// identical to rebuilding from the concatenated factor list, but only
    /// O(V + F_old + F_new) of copying happens — no re-derivation of the
    /// old structure. Returns the sorted, deduplicated variables the new
    /// factors touch: the seed set of the delta's Markov blanket for
    /// incremental re-inference.
    ///
    /// # Panics
    /// Panics if `new_num_vars` shrinks the graph or an added factor
    /// references a variable `>= new_num_vars`.
    pub fn extend(&mut self, new_num_vars: usize, added: Vec<Factor>) -> Vec<VarId> {
        assert!(
            new_num_vars >= self.num_vars,
            "extend cannot shrink the graph ({new_num_vars} < {})",
            self.num_vars
        );
        let distinct = |f: &Factor| {
            let mut vs: Vec<usize> = f.vars().collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        let mut add_degree = vec![0usize; new_num_vars];
        for f in &added {
            for v in f.vars() {
                assert!(
                    v < new_num_vars,
                    "factor references variable {v} >= {new_num_vars}"
                );
            }
            for v in distinct(f) {
                add_degree[v] += 1;
            }
        }
        let mut adj_off = Vec::with_capacity(new_num_vars + 1);
        let mut acc = 0usize;
        adj_off.push(0);
        for (v, added_deg) in add_degree.iter().enumerate() {
            let old_deg = if v < self.num_vars {
                self.adj_off[v + 1] - self.adj_off[v]
            } else {
                0
            };
            acc += old_deg + added_deg;
            adj_off.push(acc);
        }
        let mut adj = vec![0usize; acc];
        let mut cursor: Vec<usize> = adj_off[..new_num_vars].to_vec();
        for v in 0..self.num_vars {
            let run = &self.adj[self.adj_off[v]..self.adj_off[v + 1]];
            adj[cursor[v]..cursor[v] + run.len()].copy_from_slice(run);
            cursor[v] += run.len();
        }
        let base = self.factors.len();
        let mut touched = Vec::new();
        for (k, f) in added.iter().enumerate() {
            for v in distinct(f) {
                adj[cursor[v]] = base + k;
                cursor[v] += 1;
                touched.push(v);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        self.factors.extend(added);
        self.adj_off = adj_off;
        self.adj = adj;
        self.num_vars = new_num_vars;
        touched
    }

    /// Variables that co-occur with `v` in some factor (its Markov
    /// blanket, excluding `v` itself).
    pub fn neighbors(&self, v: VarId) -> Vec<VarId> {
        let mut out: Vec<VarId> = self
            .factors_of(v)
            .iter()
            .flat_map(|&fi| self.factors[fi].vars())
            .filter(|&u| u != v)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> FactorGraph {
        // 0 --f0--> 1 --f1--> 2, plus singleton on 0.
        FactorGraph::new(
            3,
            vec![
                Factor::singleton(0, 1.0),
                Factor::rule(1, vec![0], 2.0),
                Factor::rule(2, vec![1], 0.5),
            ],
        )
    }

    #[test]
    fn satisfaction_semantics() {
        let s = Factor::singleton(0, 1.0);
        assert!(s.satisfied(&[true]));
        assert!(!s.satisfied(&[false]));

        let r = Factor::rule(1, vec![0], 1.0);
        assert!(r.satisfied(&[true, true])); // body true, head true
        assert!(!r.satisfied(&[true, false])); // violated
        assert!(r.satisfied(&[false, false])); // body false: vacuous
        assert!(r.satisfied(&[false, true]));
    }

    #[test]
    fn ternary_factor_needs_full_body() {
        let f = Factor::rule(2, vec![0, 1], 1.0);
        assert!(!f.satisfied(&[true, true, false]));
        assert!(f.satisfied(&[true, false, false])); // one body atom false
        assert!(f.satisfied(&[true, true, true]));
    }

    #[test]
    fn log_score_counts_true_groundings() {
        let g = chain();
        // All true: every clause satisfied → 1.0 + 2.0 + 0.5.
        assert_eq!(g.log_score(&[true, true, true]), 3.5);
        // 0 true, 1 false: singleton ok (1.0), f0 violated (0), f1 vacuous
        // (0.5).
        assert_eq!(g.log_score(&[true, false, false]), 1.5);
    }

    #[test]
    fn adjacency_is_correct() {
        let g = chain();
        assert_eq!(g.factors_of(0), &[0, 1]);
        assert_eq!(g.factors_of(1), &[1, 2]);
        assert_eq!(g.factors_of(2), &[2]);
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert_eq!(g.neighbors(2), vec![1]);
    }

    #[test]
    fn repeated_variables_enter_adjacency_once() {
        // A flip changes a factor's value once no matter how many times the
        // variable occurs in the clause, so the adjacency — and therefore
        // `flip_delta_ro` — must count each factor once.
        let g = FactorGraph::new(
            3,
            vec![
                Factor::rule(0, vec![0], 1.3),
                Factor::rule(1, vec![2, 2], 0.9),
            ],
        );
        assert_eq!(g.factors_of(0), &[0]);
        assert_eq!(g.factors_of(2), &[1]);
        // All false; flipping 2 falsifies "1 ← 2 ∧ 2" exactly once.
        let delta = g.flip_delta_ro(2, &[false, false, false]);
        assert!((delta - (-0.9)).abs() < 1e-12, "delta {delta}");
    }

    #[test]
    fn flip_delta_matches_brute_force() {
        let g = chain();
        let mut a = vec![true, false, true];
        for v in 0..3 {
            let delta = g.flip_delta(v, &mut a.clone());
            let mut hi = a.clone();
            hi[v] = true;
            let mut lo = a.clone();
            lo[v] = false;
            let expected = g.log_score(&hi) - g.log_score(&lo);
            assert!((delta - expected).abs() < 1e-12, "var {v}");
        }
        a[0] = false; // ensure mutation-free probing
        let _ = g.flip_delta(0, &mut a);
    }

    #[test]
    #[should_panic(expected = "factor references variable")]
    fn out_of_range_factor_panics() {
        FactorGraph::new(1, vec![Factor::rule(0, vec![5], 1.0)]);
    }

    #[test]
    fn extend_matches_from_scratch_build() {
        let mut g = chain();
        let added = vec![
            Factor::rule(3, vec![1, 2], 0.7),
            Factor::singleton(4, 0.2),
            Factor::rule(0, vec![4], 1.1),
        ];
        let touched = g.extend(5, added.clone());
        assert_eq!(touched, vec![0, 1, 2, 3, 4]);

        let mut all = chain().factors().to_vec();
        all.extend(added);
        let fresh = FactorGraph::new(5, all);
        assert_eq!(g.num_vars(), fresh.num_vars());
        assert_eq!(g.factors(), fresh.factors());
        for v in 0..5 {
            assert_eq!(g.factors_of(v), fresh.factors_of(v), "var {v}");
            assert_eq!(g.neighbors(v), fresh.neighbors(v), "var {v}");
        }
    }

    #[test]
    fn extend_with_no_factors_just_adds_isolated_vars() {
        let mut g = chain();
        let touched = g.extend(6, vec![]);
        assert!(touched.is_empty());
        assert_eq!(g.num_vars(), 6);
        assert_eq!(g.factors_of(5), &[] as &[usize]);
        assert_eq!(g.factors_of(1), &[1, 2]); // old adjacency untouched
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn extend_rejects_shrinking() {
        chain().extend(2, vec![]);
    }
}
