//! JSON export of ground factor graphs.
//!
//! Figure 1 of the paper feeds the grounding result to an *external*
//! inference engine (GraphLab, Gibbs samplers). This module serializes a
//! [`GroundGraph`] to a stable JSON document any such engine can ingest.

use serde::{Deserialize, Serialize};

use crate::from_phi::GroundGraph;
use crate::graph::{Factor, FactorGraph};

/// Serialized factor graph document.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GraphDoc {
    /// Number of binary variables.
    pub num_vars: usize,
    /// Fact id of each variable, in variable order.
    pub fact_ids: Vec<i64>,
    /// Factors as `(head, body, weight)` triples.
    pub factors: Vec<FactorDoc>,
}

/// One factor in the export format.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FactorDoc {
    /// Head variable index.
    pub head: usize,
    /// Body variable indices.
    pub body: Vec<usize>,
    /// MLN weight.
    pub weight: f64,
}

/// Serialize a ground graph to JSON.
pub fn to_json(gg: &GroundGraph) -> String {
    let doc = GraphDoc {
        num_vars: gg.graph.num_vars(),
        fact_ids: gg.var_to_fact.clone(),
        factors: gg
            .graph
            .factors()
            .iter()
            .map(|f| FactorDoc {
                head: f.head,
                body: f.body.clone(),
                weight: f.weight,
            })
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("factor graphs serialize cleanly")
}

/// Deserialize a JSON document back into a ground graph.
pub fn from_json(json: &str) -> Result<GroundGraph, serde_json::Error> {
    let doc: GraphDoc = serde_json::from_str(json)?;
    let factors = doc
        .factors
        .into_iter()
        .map(|f| Factor {
            head: f.head,
            body: f.body,
            weight: f.weight,
        })
        .collect();
    let fact_to_var = doc
        .fact_ids
        .iter()
        .enumerate()
        .map(|(v, &f)| (f, v))
        .collect();
    Ok(GroundGraph {
        graph: FactorGraph::new(doc.num_vars, factors),
        var_to_fact: doc.fact_ids,
        fact_to_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundGraph {
        let graph = FactorGraph::new(
            3,
            vec![
                Factor::singleton(0, 0.9),
                Factor::rule(2, vec![0, 1], 0.5),
            ],
        );
        GroundGraph {
            graph,
            var_to_fact: vec![10, 20, 30],
            fact_to_var: [(10, 0), (20, 1), (30, 2)].into_iter().collect(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let gg = sample();
        let json = to_json(&gg);
        let back = from_json(&json).unwrap();
        assert_eq!(back.graph.num_vars(), 3);
        assert_eq!(back.graph.factors(), gg.graph.factors());
        assert_eq!(back.var_to_fact, gg.var_to_fact);
        assert_eq!(back.var_of(20), Some(1));
    }

    #[test]
    fn json_is_stable_and_readable() {
        let json = to_json(&sample());
        assert!(json.contains("\"num_vars\": 3"));
        assert!(json.contains("\"weight\": 0.9"));
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_json("{\"nope\": 1}").is_err());
    }
}
