//! JSON export of ground factor graphs.
//!
//! Figure 1 of the paper feeds the grounding result to an *external*
//! inference engine (GraphLab, Gibbs samplers). This module serializes a
//! [`GroundGraph`] to a stable JSON document any such engine can ingest.


use probkb_support::json::{Json, JsonError};

use crate::from_phi::GroundGraph;
use crate::graph::{Factor, FactorGraph};

/// Serialized factor graph document.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDoc {
    /// Number of binary variables.
    pub num_vars: usize,
    /// Fact id of each variable, in variable order.
    pub fact_ids: Vec<i64>,
    /// Factors as `(head, body, weight)` triples.
    pub factors: Vec<FactorDoc>,
}

/// One factor in the export format.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorDoc {
    /// Head variable index.
    pub head: usize,
    /// Body variable indices.
    pub body: Vec<usize>,
    /// MLN weight.
    pub weight: f64,
}

/// Serialize a ground graph to JSON.
pub fn to_json(gg: &GroundGraph) -> String {
    let doc = GraphDoc {
        num_vars: gg.graph.num_vars(),
        fact_ids: gg.var_to_fact.clone(),
        factors: gg
            .graph
            .factors()
            .iter()
            .map(|f| FactorDoc {
                head: f.head,
                body: f.body.clone(),
                weight: f.weight,
            })
            .collect(),
    };
    Json::Obj(vec![
        ("num_vars".into(), Json::from(doc.num_vars)),
        (
            "fact_ids".into(),
            Json::Arr(doc.fact_ids.iter().map(|&id| Json::Int(id)).collect()),
        ),
        (
            "factors".into(),
            Json::Arr(
                doc.factors
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("head".into(), Json::from(f.head)),
                            (
                                "body".into(),
                                Json::Arr(f.body.iter().map(|&v| Json::from(v)).collect()),
                            ),
                            ("weight".into(), Json::from(f.weight)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string_pretty()
}

fn schema_err(message: &str) -> JsonError {
    JsonError {
        message: message.into(),
        offset: 0,
    }
}

/// Deserialize a JSON document back into a ground graph.
pub fn from_json(json: &str) -> Result<GroundGraph, JsonError> {
    let parsed = Json::parse(json)?;
    let num_vars = parsed
        .get("num_vars")
        .and_then(Json::as_usize)
        .ok_or_else(|| schema_err("missing 'num_vars'"))?;
    let fact_ids = parsed
        .get("fact_ids")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("missing 'fact_ids'"))?
        .iter()
        .map(|v| v.as_i64().ok_or_else(|| schema_err("bad fact id")))
        .collect::<Result<Vec<i64>, _>>()?;
    let factors = parsed
        .get("factors")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("missing 'factors'"))?
        .iter()
        .map(|f| {
            Ok(FactorDoc {
                head: f
                    .get("head")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| schema_err("factor missing head"))?,
                body: f
                    .get("body")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| schema_err("factor missing body"))?
                    .iter()
                    .map(|v| v.as_usize().ok_or_else(|| schema_err("bad body index")))
                    .collect::<Result<_, _>>()?,
                weight: f
                    .get("weight")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| schema_err("factor missing weight"))?,
            })
        })
        .collect::<Result<Vec<FactorDoc>, JsonError>>()?;
    let doc = GraphDoc {
        num_vars,
        fact_ids,
        factors,
    };
    let factors = doc
        .factors
        .into_iter()
        .map(|f| Factor {
            head: f.head,
            body: f.body,
            weight: f.weight,
        })
        .collect();
    let fact_to_var = doc
        .fact_ids
        .iter()
        .enumerate()
        .map(|(v, &f)| (f, v))
        .collect();
    Ok(GroundGraph {
        graph: FactorGraph::new(doc.num_vars, factors),
        var_to_fact: doc.fact_ids,
        fact_to_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroundGraph {
        let graph = FactorGraph::new(
            3,
            vec![
                Factor::singleton(0, 0.9),
                Factor::rule(2, vec![0, 1], 0.5),
            ],
        );
        GroundGraph {
            graph,
            var_to_fact: vec![10, 20, 30],
            fact_to_var: [(10, 0), (20, 1), (30, 2)].into_iter().collect(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let gg = sample();
        let json = to_json(&gg);
        let back = from_json(&json).unwrap();
        assert_eq!(back.graph.num_vars(), 3);
        assert_eq!(back.graph.factors(), gg.graph.factors());
        assert_eq!(back.var_to_fact, gg.var_to_fact);
        assert_eq!(back.var_of(20), Some(1));
    }

    #[test]
    fn json_is_stable_and_readable() {
        let json = to_json(&sample());
        assert!(json.contains("\"num_vars\": 3"));
        assert!(json.contains("\"weight\": 0.9"));
    }

    #[test]
    fn malformed_json_errors() {
        assert!(from_json("{\"nope\": 1}").is_err());
    }
}
