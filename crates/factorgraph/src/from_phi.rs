//! Convert the relational `TΦ` table into a [`FactorGraph`], remapping
//! (possibly sparse, post-deletion) fact ids to dense variable indices.

use std::collections::HashMap;

use probkb_core::relmodel::tphi;
use probkb_relational::prelude::Table;

use crate::graph::{Factor, FactorGraph, VarId};

/// A factor graph plus the fact-id ↔ variable mapping.
#[derive(Debug, Clone)]
pub struct GroundGraph {
    /// The factor graph.
    pub graph: FactorGraph,
    /// `var_to_fact[v]` is the `TΠ` fact id of variable `v`.
    pub var_to_fact: Vec<i64>,
    /// Fact id → variable index.
    pub fact_to_var: HashMap<i64, VarId>,
}

impl GroundGraph {
    /// The variable for a fact id, if the fact appears in any factor.
    pub fn var_of(&self, fact_id: i64) -> Option<VarId> {
        self.fact_to_var.get(&fact_id).copied()
    }

    /// The fact id of a variable.
    pub fn fact_of(&self, var: VarId) -> i64 {
        self.var_to_fact[var]
    }
}

/// Build a [`GroundGraph`] from a `TΦ` table (Definition 7 rows).
///
/// Variables are created for every fact id mentioned by any factor;
/// NULL `I2`/`I3` columns shrink the factor arity as in the paper.
pub fn from_phi(phi: &Table) -> GroundGraph {
    let mut fact_to_var: HashMap<i64, VarId> = HashMap::new();
    let mut var_to_fact: Vec<i64> = Vec::new();
    let intern = |fact: i64, var_to_fact: &mut Vec<i64>, map: &mut HashMap<i64, VarId>| {
        *map.entry(fact).or_insert_with(|| {
            var_to_fact.push(fact);
            var_to_fact.len() - 1
        })
    };

    let mut factors = Vec::with_capacity(phi.len());
    for row in phi.rows() {
        let head_fact = row[tphi::I1].as_int().expect("I1 is non-null");
        let head = intern(head_fact, &mut var_to_fact, &mut fact_to_var);
        let mut body = Vec::new();
        for col in [tphi::I2, tphi::I3] {
            if let Some(fact) = row[col].as_int() {
                body.push(intern(fact, &mut var_to_fact, &mut fact_to_var));
            }
        }
        let weight = row[tphi::W].as_float().expect("factor weight");
        factors.push(Factor { head, body, weight });
    }

    GroundGraph {
        graph: FactorGraph::new(var_to_fact.len(), factors),
        var_to_fact,
        fact_to_var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_core::prelude::*;
    use probkb_kb::prelude::parse;

    fn phi_for(text: &str) -> Table {
        let kb = parse(text).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        ground(&kb, &mut engine, &GroundingConfig::default())
            .unwrap()
            .factors
    }

    #[test]
    fn figure3_graph_shape() {
        let phi = phi_for(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            fact 0.93 born_in(RG:Writer, Brooklyn:Place)
            rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
            rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
            rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            "#,
        );
        let gg = from_phi(&phi);
        // 7 facts, 8 factors (2 singletons + 4 binary + 2 ternary).
        assert_eq!(gg.graph.num_vars(), 7);
        assert_eq!(gg.graph.factors().len(), 8);
        let singletons = gg.graph.factors().iter().filter(|f| f.body.is_empty()).count();
        let ternary = gg.graph.factors().iter().filter(|f| f.body.len() == 2).count();
        assert_eq!(singletons, 2);
        assert_eq!(ternary, 2);
    }

    #[test]
    fn fact_var_mapping_roundtrips() {
        let phi = phi_for(
            r#"
            fact 0.9 born_in(A:Person, B:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            "#,
        );
        let gg = from_phi(&phi);
        for v in 0..gg.graph.num_vars() {
            let fact = gg.fact_of(v);
            assert_eq!(gg.var_of(fact), Some(v));
        }
        assert_eq!(gg.var_of(12345), None);
    }

    #[test]
    fn null_body_columns_shrink_factors() {
        let phi = phi_for("fact 0.5 p(A:T, B:U)");
        let gg = from_phi(&phi);
        assert_eq!(gg.graph.factors().len(), 1);
        assert!(gg.graph.factors()[0].body.is_empty());
        assert_eq!(gg.graph.factors()[0].weight, 0.5);
    }
}
