//! Convert the relational `TΦ` table into a [`FactorGraph`], remapping
//! (possibly sparse, post-deletion) fact ids to dense variable indices.

use std::collections::HashMap;

use probkb_core::relmodel::tphi;
use probkb_relational::prelude::Table;

use crate::graph::{Factor, FactorGraph, VarId};

/// A factor graph plus the fact-id ↔ variable mapping.
#[derive(Debug, Clone)]
pub struct GroundGraph {
    /// The factor graph.
    pub graph: FactorGraph,
    /// `var_to_fact[v]` is the `TΠ` fact id of variable `v`.
    pub var_to_fact: Vec<i64>,
    /// Fact id → variable index.
    pub fact_to_var: HashMap<i64, VarId>,
}

impl GroundGraph {
    /// The variable for a fact id, if the fact appears in any factor.
    pub fn var_of(&self, fact_id: i64) -> Option<VarId> {
        self.fact_to_var.get(&fact_id).copied()
    }

    /// The fact id of a variable.
    pub fn fact_of(&self, var: VarId) -> i64 {
        self.var_to_fact[var]
    }

    /// Renumber the fact ids behind the variables (variable indices are
    /// untouched). Incremental expansion renumbers `TΠ` ids when a delta
    /// is applied; this keeps a live graph's mapping in sync so warm
    /// sampler state stays attached to the same ground atoms.
    pub fn remap_fact_ids(&mut self, map: impl Fn(i64) -> i64) {
        for fact in &mut self.var_to_fact {
            *fact = map(*fact);
        }
        self.fact_to_var = self
            .var_to_fact
            .iter()
            .enumerate()
            .map(|(v, &fact)| (fact, v))
            .collect();
    }

    /// Merge the factors of an additional `TΦ` slice into the graph in
    /// place, interning any fact ids not seen before as fresh variables at
    /// the end of the index space (so existing variables — and any warm
    /// sampler state indexed by them — are stable). Returns the sorted
    /// variables the added factors touch, the seed of the delta's Markov
    /// blanket.
    pub fn extend_with(&mut self, phi: &Table) -> Vec<VarId> {
        use probkb_core::relmodel::tphi;
        let mut factors = Vec::with_capacity(phi.len());
        for row in phi.rows() {
            let head_fact = row[tphi::I1].as_int().expect("I1 is non-null");
            let head = self.intern(head_fact);
            let mut body = Vec::new();
            for col in [tphi::I2, tphi::I3] {
                if let Some(fact) = row[col].as_int() {
                    body.push(self.intern(fact));
                }
            }
            let weight = row[tphi::W].as_float().expect("factor weight");
            factors.push(Factor { head, body, weight });
        }
        self.graph.extend(self.var_to_fact.len(), factors)
    }

    fn intern(&mut self, fact: i64) -> VarId {
        *self.fact_to_var.entry(fact).or_insert_with(|| {
            self.var_to_fact.push(fact);
            self.var_to_fact.len() - 1
        })
    }
}

/// Build a [`GroundGraph`] from a `TΦ` table (Definition 7 rows).
///
/// Variables are created for every fact id mentioned by any factor;
/// NULL `I2`/`I3` columns shrink the factor arity as in the paper.
pub fn from_phi(phi: &Table) -> GroundGraph {
    let mut fact_to_var: HashMap<i64, VarId> = HashMap::new();
    let mut var_to_fact: Vec<i64> = Vec::new();
    let intern = |fact: i64, var_to_fact: &mut Vec<i64>, map: &mut HashMap<i64, VarId>| {
        *map.entry(fact).or_insert_with(|| {
            var_to_fact.push(fact);
            var_to_fact.len() - 1
        })
    };

    let mut factors = Vec::with_capacity(phi.len());
    for row in phi.rows() {
        let head_fact = row[tphi::I1].as_int().expect("I1 is non-null");
        let head = intern(head_fact, &mut var_to_fact, &mut fact_to_var);
        let mut body = Vec::new();
        for col in [tphi::I2, tphi::I3] {
            if let Some(fact) = row[col].as_int() {
                body.push(intern(fact, &mut var_to_fact, &mut fact_to_var));
            }
        }
        let weight = row[tphi::W].as_float().expect("factor weight");
        factors.push(Factor { head, body, weight });
    }

    GroundGraph {
        graph: FactorGraph::new(var_to_fact.len(), factors),
        var_to_fact,
        fact_to_var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_core::prelude::*;
    use probkb_kb::prelude::parse;

    fn phi_for(text: &str) -> Table {
        let kb = parse(text).unwrap().build();
        let mut engine = SingleNodeEngine::new();
        ground(&kb, &mut engine, &GroundingConfig::default())
            .unwrap()
            .factors
    }

    #[test]
    fn figure3_graph_shape() {
        let phi = phi_for(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            fact 0.93 born_in(RG:Writer, Brooklyn:Place)
            rule 1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            rule 2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
            rule 0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
            rule 0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
            rule 0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)
            "#,
        );
        let gg = from_phi(&phi);
        // 7 facts, 8 factors (2 singletons + 4 binary + 2 ternary).
        assert_eq!(gg.graph.num_vars(), 7);
        assert_eq!(gg.graph.factors().len(), 8);
        let singletons = gg.graph.factors().iter().filter(|f| f.body.is_empty()).count();
        let ternary = gg.graph.factors().iter().filter(|f| f.body.len() == 2).count();
        assert_eq!(singletons, 2);
        assert_eq!(ternary, 2);
    }

    #[test]
    fn fact_var_mapping_roundtrips() {
        let phi = phi_for(
            r#"
            fact 0.9 born_in(A:Person, B:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            "#,
        );
        let gg = from_phi(&phi);
        for v in 0..gg.graph.num_vars() {
            let fact = gg.fact_of(v);
            assert_eq!(gg.var_of(fact), Some(v));
        }
        assert_eq!(gg.var_of(12345), None);
    }

    #[test]
    fn remap_and_extend_track_incremental_phi() {
        let phi = phi_for(
            r#"
            fact 0.9 born_in(A:Person, B:City)
            rule 1.0 live_in(x:Person, y:City) :- born_in(x, y)
            "#,
        );
        let mut gg = from_phi(&phi);
        let old_vars = gg.graph.num_vars();
        // A delta renumbers every fact id up by 10.
        gg.remap_fact_ids(|id| id + 10);
        for v in 0..old_vars {
            assert_eq!(gg.var_of(gg.fact_of(v)), Some(v));
            assert!(gg.fact_of(v) >= 10);
        }
        // New factors: one touching an existing fact, one entirely new.
        use probkb_relational::prelude::{Schema, Column, DataType, Value};
        let schema = Schema::new(vec![
            Column::new("I1", DataType::Int),
            Column::nullable("I2", DataType::Int),
            Column::nullable("I3", DataType::Int),
            Column::new("w", DataType::Float),
        ]);
        let added = Table::from_rows_unchecked(
            schema,
            vec![
                vec![
                    Value::Int(42),
                    Value::Int(gg.fact_of(0)),
                    Value::Null,
                    Value::Float(0.5),
                ],
                vec![Value::Int(43), Value::Null, Value::Null, Value::Float(0.9)],
            ],
        );
        let touched = gg.extend_with(&added);
        assert_eq!(gg.graph.num_vars(), old_vars + 2);
        assert_eq!(gg.var_of(42), Some(old_vars));
        assert_eq!(gg.var_of(43), Some(old_vars + 1));
        // Touched: the two new vars plus the reused old var 0.
        assert_eq!(touched, vec![0, old_vars, old_vars + 1]);
    }

    #[test]
    fn null_body_columns_shrink_factors() {
        let phi = phi_for("fact 0.5 p(A:T, B:U)");
        let gg = from_phi(&phi);
        assert_eq!(gg.graph.factors().len(), 1);
        assert!(gg.graph.factors()[0].body.is_empty());
        assert_eq!(gg.graph.factors()[0].weight, 0.5);
    }
}
