//! A blocking ProbKB client over `TcpStream`.
//!
//! One request/response exchange per call, each message in a CRC-guarded
//! stream frame. Connect, read, and write deadlines default on so a
//! wedged server cannot hang the caller forever.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use probkb_storage::frame::{read_frame, write_frame, write_magic, FrameKind};
use probkb_storage::StorageError;

use crate::protocol::{
    decode_response, encode_request, DeltaOutcome, FactInfo, FactRef, LineageInfo,
    LocalMarginalInfo, MarginalInfo, ProtoError, Request, Response, ServerStats,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure (includes deadline expiry).
    Io(String),
    /// The server's bytes did not decode.
    Protocol(ProtoError),
    /// The server answered with its error response.
    Server {
        /// Machine-readable error class (e.g. `"unsupported"`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong shape.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(detail) => write!(f, "transport error: {detail}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response: {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<StorageError> for ClientError {
    fn from(e: StorageError) -> Self {
        ClientError::Io(e.to_string())
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e)
    }
}

type Result<T> = std::result::Result<T, ClientError>;

/// Connection deadlines.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-response read deadline. `APPLY_DELTA` can legitimately take
    /// long (it re-grounds and re-samples); raise this when applying
    /// large deltas.
    pub read_timeout: Duration,
    /// Per-request write deadline.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A blocking connection to a ProbKB server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with default deadlines.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit deadlines, sending the protocol magic.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Io(e.to_string()))?
            .next()
            .ok_or_else(|| ClientError::Io("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(config.read_timeout))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_write_timeout(Some(config.write_timeout))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut client = Client { stream };
        write_magic(&mut client.stream)?;
        client
            .stream
            .flush()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(client)
    }

    /// Send one request and read its response. The transport-level
    /// building block every typed method uses; exposed for tests and
    /// tools that need raw access.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response> {
        write_frame(
            &mut self.stream,
            FrameKind::Request,
            &encode_request(request),
        )?;
        self.stream
            .flush()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let (kind, body) = read_frame(&mut self.stream)?;
        if kind != FrameKind::Response {
            return Err(ClientError::UnexpectedResponse(
                "server sent a request frame".into(),
            ));
        }
        Ok(decode_response(&body)?)
    }

    fn expect_ok(&mut self, request: &Request) -> Result<Response> {
        match self.roundtrip(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Liveness check; returns `(epoch, protocol, session id)`.
    pub fn ping(&mut self) -> Result<(u64, u32, u64)> {
        match self.expect_ok(&Request::Ping)? {
            Response::Pong {
                epoch,
                protocol,
                session,
            } => Ok((epoch, protocol, session)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Look up a fact; returns the serving epoch and the fact if found.
    pub fn fact(&mut self, fact: FactRef) -> Result<(u64, Option<FactInfo>)> {
        match self.expect_ok(&Request::Fact(fact))? {
            Response::Fact { epoch, fact } => Ok((epoch, fact)),
            other => Err(unexpected("Fact", &other)),
        }
    }

    /// The stored probability of a fact.
    pub fn marginal(&mut self, fact: FactRef) -> Result<(u64, Option<MarginalInfo>)> {
        match self.expect_ok(&Request::Marginal(fact))? {
            Response::Marginal { epoch, marginal } => Ok((epoch, marginal)),
            other => Err(unexpected("Marginal", &other)),
        }
    }

    /// Query-time local marginal: ground only the fact's proof
    /// neighborhood under a `(nodes, factors)` budget (`None` uses the
    /// server default) and run inference on that subgraph.
    pub fn marginal_local(
        &mut self,
        fact: FactRef,
        budget: Option<(u64, u64)>,
    ) -> Result<(u64, Option<LocalMarginalInfo>)> {
        match self.expect_ok(&Request::MarginalLocal { fact, budget })? {
            Response::MarginalLocal { epoch, marginal } => Ok((epoch, marginal)),
            other => Err(unexpected("MarginalLocal", &other)),
        }
    }

    /// Why-provenance of a fact.
    pub fn lineage(&mut self, fact: FactRef, max_depth: u32) -> Result<(u64, Option<LineageInfo>)> {
        match self.expect_ok(&Request::Lineage { fact, max_depth })? {
            Response::Lineage { epoch, lineage } => Ok((epoch, lineage)),
            other => Err(unexpected("Lineage", &other)),
        }
    }

    /// Merge KB-text statements into the live KB.
    pub fn apply_delta(&mut self, text: &str) -> Result<DeltaOutcome> {
        match self.expect_ok(&Request::ApplyDelta { text: text.into() })? {
            Response::DeltaApplied(outcome) => Ok(outcome),
            other => Err(unexpected("DeltaApplied", &other)),
        }
    }

    /// Server statistics.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match self.expect_ok(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<u64> {
        match self.expect_ok(&Request::Shutdown)? {
            Response::ShuttingDown { epoch } => Ok(epoch),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// The underlying stream (tests use this to inject malformed bytes).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("wanted {wanted}, got {got:?}"))
}
