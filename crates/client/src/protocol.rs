//! The ProbKB wire protocol: typed requests/responses and their binary
//! codec.
//!
//! Every message travels as one `probkb_storage::frame` stream frame
//! (length prefix + CRC-32 + kind byte), whose body is encoded with the
//! same little-endian [`ByteWriter`]/[`ByteReader`] primitives the
//! snapshot and WAL codecs use — decoding hostile bytes bounds-checks
//! everywhere and returns [`ProtoError`] instead of panicking.
//!
//! # Requests
//!
//! | opcode | request | answered from |
//! |---|---|---|
//! | 0 | `PING` | nothing (liveness + epoch) |
//! | 1 | `FACT` | the published epoch's fact index |
//! | 2 | `MARGINAL` | the epoch's stored weights / inferred marginals |
//! | 3 | `LINEAGE` | the epoch's `TΦ` lineage index |
//! | 4 | `APPLY_DELTA` | the single writer thread (serialized) |
//! | 5 | `STATS` | epoch + live session counters |
//! | 6 | `SHUTDOWN` | the listener (graceful stop) |
//! | 7 | `MARGINAL_LOCAL` | query-time local grounding + inference over the epoch's snapshot |
//!
//! Responses carry the serving epoch (`epoch` = number of committed
//! deltas the served snapshot includes) as staleness metadata: a client
//! that just applied delta `k` can tell whether a later read was served
//! from an older snapshot.

use probkb_storage::format::{ByteReader, ByteWriter};
use probkb_storage::StorageError;

/// Protocol revision; bumped on any incompatible codec change. Carried
/// in `PING`/`STATS` responses so mixed deployments fail loudly.
pub const PROTOCOL_VERSION: u32 = 1;

/// A malformed or incomplete message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<StorageError> for ProtoError {
    fn from(e: StorageError) -> Self {
        ProtoError(e.to_string())
    }
}

type Result<T> = std::result::Result<T, ProtoError>;

/// How a request names a fact: by its `TΠ` id, or by resolved names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactRef {
    /// By fact id (`I` in `TΠ`).
    Id(i64),
    /// By `rel(x, y)` names, resolved through the KB dictionaries.
    Names {
        /// Relation name.
        rel: String,
        /// Subject entity name.
        x: String,
        /// Object entity name.
        y: String,
    },
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; returns the current epoch and protocol version.
    Ping,
    /// Look a fact up in the served snapshot.
    Fact(FactRef),
    /// The stored probability of a fact (extraction weight for base
    /// facts, estimated marginal for inferred ones — §2.2's "marginals
    /// live in the KB" semantics).
    Marginal(FactRef),
    /// Why-provenance of a fact: its derivations, one level deep, plus a
    /// rendered proof summary.
    Lineage {
        /// The fact to explain.
        fact: FactRef,
        /// Depth cap for the rendered proof tree.
        max_depth: u32,
    },
    /// Merge a batch of KB-text statements (`fact`/`rule`/... lines) into
    /// the live KB. Lines starting with `retract ` request retraction
    /// (currently answered with a structured `unsupported` error).
    ApplyDelta {
        /// KB-text statements.
        text: String,
    },
    /// Server and snapshot statistics.
    Stats,
    /// Graceful shutdown: drain sessions, stop the writer, exit.
    Shutdown,
    /// Query-time local marginal: ground only the fact's proof
    /// neighborhood under a relevance budget and run inference on that
    /// subgraph (ProPPR-style), without touching the writer thread.
    MarginalLocal {
        /// The fact to estimate.
        fact: FactRef,
        /// `(nodes, factors)` budget caps; `None` uses the server's
        /// `PROBKB_LOCAL_BUDGET` default.
        budget: Option<(u64, u64)>,
    },
}

/// One resolved fact in a response.
#[derive(Debug, Clone, PartialEq)]
pub struct FactInfo {
    /// Fact id.
    pub id: i64,
    /// Relation name.
    pub rel: String,
    /// Subject entity name.
    pub x: String,
    /// Object entity name.
    pub y: String,
    /// Stored probability (`None` when inference has not run).
    pub p: Option<f64>,
    /// True when the fact was inferred rather than extracted.
    pub inferred: bool,
}

/// Where a marginal answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarginalSource {
    /// The extraction confidence stored with a base fact.
    Stored,
    /// A sampled marginal written back by inference.
    Inferred,
}

/// A marginal answer.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalInfo {
    /// Fact id.
    pub id: i64,
    /// The probability.
    pub p: f64,
    /// Provenance of the number.
    pub source: MarginalSource,
}

/// How the server's local-answer cache participated in a
/// `MARGINAL_LOCAL` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Computed fresh for this request.
    Miss,
    /// Served from an entry computed at the serving epoch.
    Hit,
    /// Served from an entry carried across a delta whose touched
    /// blanket provably missed the entry's support.
    Carried,
}

/// A local-marginal answer with its EXPLAIN-style observability fields.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalMarginalInfo {
    /// Fact id.
    pub id: i64,
    /// Estimated `P(fact = true)`.
    pub p: f64,
    /// Variables in the local subgraph.
    pub nodes: u64,
    /// Factors materialized.
    pub factors: u64,
    /// Factor admissions the budget refused (0 ⇒ complete proof
    /// neighborhood ⇒ the answer tracks the global marginal).
    pub frontier_stops: u64,
    /// Node cap the expansion ran under (`u64::MAX` = unlimited).
    pub budget_nodes: u64,
    /// Factor cap the expansion ran under.
    pub budget_factors: u64,
    /// True when exact enumeration produced `p`.
    pub exact: bool,
    /// Cache participation.
    pub cache: CacheStatus,
    /// Rendered `LocalGround (nodes=…, factors=…, …)` annotation.
    pub annotate: String,
}

/// A lineage answer: derivations one level deep plus a rendered tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageInfo {
    /// Fact id.
    pub id: i64,
    /// True for base (extracted) facts — no derivations.
    pub is_base: bool,
    /// `(rule weight, body fact ids)` per derivation.
    pub derivations: Vec<(f64, Vec<i64>)>,
    /// Human-readable proof rendering (names resolved server-side).
    pub rendered: String,
}

/// What an applied delta did.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// Facts that exist only in the new closure.
    pub new_facts: u64,
    /// Facts carried over from the old closure.
    pub reused_facts: u64,
    /// Factors computed fresh for the delta.
    pub new_factors: u64,
    /// True when constraints forced a full re-ground.
    pub full_fallback: bool,
    /// The epoch this delta committed as.
    pub epoch: u64,
    /// `EXPLAIN ANALYZE`-style annotation of the apply.
    pub annotate: String,
}

/// Server statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Protocol version the server speaks.
    pub protocol: u32,
    /// Facts in the served snapshot.
    pub facts: u64,
    /// Of those, inferred facts.
    pub inferred: u64,
    /// Factors in the served snapshot.
    pub factors: u64,
    /// Committed deltas (= the served epoch).
    pub epoch: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Sessions accepted since startup.
    pub sessions_total: u64,
}

/// A server response. Every success variant carries the serving `epoch`
/// as staleness metadata.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `PING` answer.
    Pong {
        /// Served epoch.
        epoch: u64,
        /// Protocol version.
        protocol: u32,
        /// This connection's session id.
        session: u64,
    },
    /// `FACT` answer; `None` when the fact is not in the snapshot.
    Fact {
        /// Served epoch.
        epoch: u64,
        /// The fact, if present.
        fact: Option<FactInfo>,
    },
    /// `MARGINAL` answer; `None` when the fact is unknown.
    Marginal {
        /// Served epoch.
        epoch: u64,
        /// The marginal, if the fact is known.
        marginal: Option<MarginalInfo>,
    },
    /// `LINEAGE` answer; `None` when the fact is unknown.
    Lineage {
        /// Served epoch.
        epoch: u64,
        /// The lineage, if the fact is known.
        lineage: Option<LineageInfo>,
    },
    /// `APPLY_DELTA` answer.
    DeltaApplied(DeltaOutcome),
    /// `STATS` answer.
    Stats(ServerStats),
    /// `SHUTDOWN` acknowledged; the server stops accepting and exits.
    ShuttingDown {
        /// Epoch at shutdown.
        epoch: u64,
    },
    /// `MARGINAL_LOCAL` answer; `None` when the fact is unknown.
    MarginalLocal {
        /// Served epoch.
        epoch: u64,
        /// The local answer, if the fact is known.
        marginal: Option<LocalMarginalInfo>,
    },
    /// Any request that failed. `code` is machine-readable (`"parse"`,
    /// `"unsupported"`, `"bad-request"`, `"shutting-down"`, `"internal"`),
    /// `message` is for humans.
    Error {
        /// Machine-readable error class.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

const OP_PING: u8 = 0;
const OP_FACT: u8 = 1;
const OP_MARGINAL: u8 = 2;
const OP_LINEAGE: u8 = 3;
const OP_APPLY_DELTA: u8 = 4;
const OP_STATS: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_MARGINAL_LOCAL: u8 = 7;

const REF_ID: u8 = 0;
const REF_NAMES: u8 = 1;

fn put_fact_ref(w: &mut ByteWriter, fr: &FactRef) {
    match fr {
        FactRef::Id(id) => {
            w.put_u8(REF_ID);
            w.put_i64(*id);
        }
        FactRef::Names { rel, x, y } => {
            w.put_u8(REF_NAMES);
            w.put_str(rel);
            w.put_str(x);
            w.put_str(y);
        }
    }
}

fn get_fact_ref(r: &mut ByteReader<'_>) -> Result<FactRef> {
    match r.get_u8()? {
        REF_ID => Ok(FactRef::Id(r.get_i64()?)),
        REF_NAMES => Ok(FactRef::Names {
            rel: r.get_str()?,
            x: r.get_str()?,
            y: r.get_str()?,
        }),
        tag => Err(ProtoError(format!("unknown fact-ref tag {tag}"))),
    }
}

/// Encode a request body (goes inside a `FrameKind::Request` frame).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match req {
        Request::Ping => w.put_u8(OP_PING),
        Request::Fact(fr) => {
            w.put_u8(OP_FACT);
            put_fact_ref(&mut w, fr);
        }
        Request::Marginal(fr) => {
            w.put_u8(OP_MARGINAL);
            put_fact_ref(&mut w, fr);
        }
        Request::Lineage { fact, max_depth } => {
            w.put_u8(OP_LINEAGE);
            put_fact_ref(&mut w, fact);
            w.put_u32(*max_depth);
        }
        Request::ApplyDelta { text } => {
            w.put_u8(OP_APPLY_DELTA);
            w.put_str(text);
        }
        Request::Stats => w.put_u8(OP_STATS),
        Request::Shutdown => w.put_u8(OP_SHUTDOWN),
        Request::MarginalLocal { fact, budget } => {
            w.put_u8(OP_MARGINAL_LOCAL);
            put_fact_ref(&mut w, fact);
            match budget {
                Some((nodes, factors)) => {
                    w.put_u8(1);
                    w.put_u64(*nodes);
                    w.put_u64(*factors);
                }
                None => w.put_u8(0),
            }
        }
    }
    w.into_bytes()
}

/// Decode a request body.
pub fn decode_request(bytes: &[u8]) -> Result<Request> {
    let mut r = ByteReader::new(bytes);
    let req = match r.get_u8()? {
        OP_PING => Request::Ping,
        OP_FACT => Request::Fact(get_fact_ref(&mut r)?),
        OP_MARGINAL => Request::Marginal(get_fact_ref(&mut r)?),
        OP_LINEAGE => Request::Lineage {
            fact: get_fact_ref(&mut r)?,
            max_depth: r.get_u32()?,
        },
        OP_APPLY_DELTA => Request::ApplyDelta { text: r.get_str()? },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        OP_MARGINAL_LOCAL => Request::MarginalLocal {
            fact: get_fact_ref(&mut r)?,
            budget: match r.get_u8()? {
                0 => None,
                _ => Some((r.get_u64()?, r.get_u64()?)),
            },
        },
        op => return Err(ProtoError(format!("unknown request opcode {op}"))),
    };
    if !r.is_at_end() {
        return Err(ProtoError(format!(
            "{} trailing bytes after request",
            r.remaining()
        )));
    }
    Ok(req)
}

const RESP_PONG: u8 = 0;
const RESP_FACT: u8 = 1;
const RESP_MARGINAL: u8 = 2;
const RESP_LINEAGE: u8 = 3;
const RESP_DELTA: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_SHUTDOWN: u8 = 6;
const RESP_MARGINAL_LOCAL: u8 = 7;
const RESP_ERROR: u8 = 255;

fn put_cache_status(w: &mut ByteWriter, c: CacheStatus) {
    w.put_u8(match c {
        CacheStatus::Miss => 0,
        CacheStatus::Hit => 1,
        CacheStatus::Carried => 2,
    });
}

fn get_cache_status(r: &mut ByteReader<'_>) -> Result<CacheStatus> {
    match r.get_u8()? {
        0 => Ok(CacheStatus::Miss),
        1 => Ok(CacheStatus::Hit),
        2 => Ok(CacheStatus::Carried),
        tag => Err(ProtoError(format!("unknown cache status {tag}"))),
    }
}

fn put_fact_info(w: &mut ByteWriter, f: &FactInfo) {
    w.put_i64(f.id);
    w.put_str(&f.rel);
    w.put_str(&f.x);
    w.put_str(&f.y);
    match f.p {
        Some(p) => {
            w.put_u8(1);
            w.put_f64(p);
        }
        None => w.put_u8(0),
    }
    w.put_u8(f.inferred as u8);
}

fn get_fact_info(r: &mut ByteReader<'_>) -> Result<FactInfo> {
    Ok(FactInfo {
        id: r.get_i64()?,
        rel: r.get_str()?,
        x: r.get_str()?,
        y: r.get_str()?,
        p: match r.get_u8()? {
            0 => None,
            _ => Some(r.get_f64()?),
        },
        inferred: r.get_u8()? != 0,
    })
}

/// Encode a response body (goes inside a `FrameKind::Response` frame).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match resp {
        Response::Pong {
            epoch,
            protocol,
            session,
        } => {
            w.put_u8(RESP_PONG);
            w.put_u64(*epoch);
            w.put_u32(*protocol);
            w.put_u64(*session);
        }
        Response::Fact { epoch, fact } => {
            w.put_u8(RESP_FACT);
            w.put_u64(*epoch);
            match fact {
                Some(f) => {
                    w.put_u8(1);
                    put_fact_info(&mut w, f);
                }
                None => w.put_u8(0),
            }
        }
        Response::Marginal { epoch, marginal } => {
            w.put_u8(RESP_MARGINAL);
            w.put_u64(*epoch);
            match marginal {
                Some(m) => {
                    w.put_u8(1);
                    w.put_i64(m.id);
                    w.put_f64(m.p);
                    w.put_u8(matches!(m.source, MarginalSource::Inferred) as u8);
                }
                None => w.put_u8(0),
            }
        }
        Response::Lineage { epoch, lineage } => {
            w.put_u8(RESP_LINEAGE);
            w.put_u64(*epoch);
            match lineage {
                Some(l) => {
                    w.put_u8(1);
                    w.put_i64(l.id);
                    w.put_u8(l.is_base as u8);
                    w.put_u32(l.derivations.len() as u32);
                    for (weight, body) in &l.derivations {
                        w.put_f64(*weight);
                        w.put_u32(body.len() as u32);
                        for id in body {
                            w.put_i64(*id);
                        }
                    }
                    w.put_str(&l.rendered);
                }
                None => w.put_u8(0),
            }
        }
        Response::DeltaApplied(d) => {
            w.put_u8(RESP_DELTA);
            w.put_u64(d.new_facts);
            w.put_u64(d.reused_facts);
            w.put_u64(d.new_factors);
            w.put_u8(d.full_fallback as u8);
            w.put_u64(d.epoch);
            w.put_str(&d.annotate);
        }
        Response::Stats(s) => {
            w.put_u8(RESP_STATS);
            w.put_u32(s.protocol);
            w.put_u64(s.facts);
            w.put_u64(s.inferred);
            w.put_u64(s.factors);
            w.put_u64(s.epoch);
            w.put_u64(s.sessions_active);
            w.put_u64(s.sessions_total);
        }
        Response::ShuttingDown { epoch } => {
            w.put_u8(RESP_SHUTDOWN);
            w.put_u64(*epoch);
        }
        Response::MarginalLocal { epoch, marginal } => {
            w.put_u8(RESP_MARGINAL_LOCAL);
            w.put_u64(*epoch);
            match marginal {
                Some(m) => {
                    w.put_u8(1);
                    w.put_i64(m.id);
                    w.put_f64(m.p);
                    w.put_u64(m.nodes);
                    w.put_u64(m.factors);
                    w.put_u64(m.frontier_stops);
                    w.put_u64(m.budget_nodes);
                    w.put_u64(m.budget_factors);
                    w.put_u8(m.exact as u8);
                    put_cache_status(&mut w, m.cache);
                    w.put_str(&m.annotate);
                }
                None => w.put_u8(0),
            }
        }
        Response::Error { code, message } => {
            w.put_u8(RESP_ERROR);
            w.put_str(code);
            w.put_str(message);
        }
    }
    w.into_bytes()
}

/// Decode a response body.
pub fn decode_response(bytes: &[u8]) -> Result<Response> {
    let mut r = ByteReader::new(bytes);
    let resp = match r.get_u8()? {
        RESP_PONG => Response::Pong {
            epoch: r.get_u64()?,
            protocol: r.get_u32()?,
            session: r.get_u64()?,
        },
        RESP_FACT => Response::Fact {
            epoch: r.get_u64()?,
            fact: match r.get_u8()? {
                0 => None,
                _ => Some(get_fact_info(&mut r)?),
            },
        },
        RESP_MARGINAL => Response::Marginal {
            epoch: r.get_u64()?,
            marginal: match r.get_u8()? {
                0 => None,
                _ => Some(MarginalInfo {
                    id: r.get_i64()?,
                    p: r.get_f64()?,
                    source: if r.get_u8()? != 0 {
                        MarginalSource::Inferred
                    } else {
                        MarginalSource::Stored
                    },
                }),
            },
        },
        RESP_LINEAGE => Response::Lineage {
            epoch: r.get_u64()?,
            lineage: match r.get_u8()? {
                0 => None,
                _ => {
                    let id = r.get_i64()?;
                    let is_base = r.get_u8()? != 0;
                    let n = r.get_u32()? as usize;
                    let mut derivations = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        let weight = r.get_f64()?;
                        let len = r.get_u32()? as usize;
                        let mut body = Vec::with_capacity(len.min(16));
                        for _ in 0..len {
                            body.push(r.get_i64()?);
                        }
                        derivations.push((weight, body));
                    }
                    Some(LineageInfo {
                        id,
                        is_base,
                        derivations,
                        rendered: r.get_str()?,
                    })
                }
            },
        },
        RESP_DELTA => Response::DeltaApplied(DeltaOutcome {
            new_facts: r.get_u64()?,
            reused_facts: r.get_u64()?,
            new_factors: r.get_u64()?,
            full_fallback: r.get_u8()? != 0,
            epoch: r.get_u64()?,
            annotate: r.get_str()?,
        }),
        RESP_STATS => Response::Stats(ServerStats {
            protocol: r.get_u32()?,
            facts: r.get_u64()?,
            inferred: r.get_u64()?,
            factors: r.get_u64()?,
            epoch: r.get_u64()?,
            sessions_active: r.get_u64()?,
            sessions_total: r.get_u64()?,
        }),
        RESP_SHUTDOWN => Response::ShuttingDown {
            epoch: r.get_u64()?,
        },
        RESP_MARGINAL_LOCAL => Response::MarginalLocal {
            epoch: r.get_u64()?,
            marginal: match r.get_u8()? {
                0 => None,
                _ => Some(LocalMarginalInfo {
                    id: r.get_i64()?,
                    p: r.get_f64()?,
                    nodes: r.get_u64()?,
                    factors: r.get_u64()?,
                    frontier_stops: r.get_u64()?,
                    budget_nodes: r.get_u64()?,
                    budget_factors: r.get_u64()?,
                    exact: r.get_u8()? != 0,
                    cache: get_cache_status(&mut r)?,
                    annotate: r.get_str()?,
                }),
            },
        },
        RESP_ERROR => Response::Error {
            code: r.get_str()?,
            message: r.get_str()?,
        },
        tag => return Err(ProtoError(format!("unknown response tag {tag}"))),
    };
    if !r.is_at_end() {
        return Err(ProtoError(format!(
            "{} trailing bytes after response",
            r.remaining()
        )));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Fact(FactRef::Id(42)),
            Request::Fact(FactRef::Names {
                rel: "born_in".into(),
                x: "RG".into(),
                y: "NYC".into(),
            }),
            Request::Marginal(FactRef::Id(-1)),
            Request::Lineage {
                fact: FactRef::Id(7),
                max_depth: 3,
            },
            Request::ApplyDelta {
                text: "fact 0.9 r(a:C, b:C)\n".into(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::MarginalLocal {
                fact: FactRef::Id(9),
                budget: None,
            },
            Request::MarginalLocal {
                fact: FactRef::Names {
                    rel: "live_in".into(),
                    x: "RG".into(),
                    y: "NYC".into(),
                },
                budget: Some((64, 256)),
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong {
                epoch: 3,
                protocol: PROTOCOL_VERSION,
                session: 12,
            },
            Response::Fact {
                epoch: 0,
                fact: None,
            },
            Response::Fact {
                epoch: 2,
                fact: Some(FactInfo {
                    id: 5,
                    rel: "r".into(),
                    x: "a".into(),
                    y: "b".into(),
                    p: Some(0.25),
                    inferred: true,
                }),
            },
            Response::Marginal {
                epoch: 1,
                marginal: Some(MarginalInfo {
                    id: 5,
                    p: 0.75,
                    source: MarginalSource::Inferred,
                }),
            },
            Response::Lineage {
                epoch: 1,
                lineage: Some(LineageInfo {
                    id: 9,
                    is_base: false,
                    derivations: vec![(1.5, vec![1, 2]), (0.5, vec![3])],
                    rendered: "r(a, b)\n  <- q(a, b)".into(),
                }),
            },
            Response::DeltaApplied(DeltaOutcome {
                new_facts: 4,
                reused_facts: 100,
                new_factors: 6,
                full_fallback: false,
                epoch: 2,
                annotate: "ApplyDelta(...)".into(),
            }),
            Response::Stats(ServerStats {
                protocol: PROTOCOL_VERSION,
                facts: 10,
                inferred: 4,
                factors: 12,
                epoch: 1,
                sessions_active: 2,
                sessions_total: 9,
            }),
            Response::ShuttingDown { epoch: 5 },
            Response::MarginalLocal {
                epoch: 2,
                marginal: None,
            },
            Response::MarginalLocal {
                epoch: 4,
                marginal: Some(LocalMarginalInfo {
                    id: 11,
                    p: 0.625,
                    nodes: 6,
                    factors: 9,
                    frontier_stops: 0,
                    budget_nodes: u64::MAX,
                    budget_factors: u64::MAX,
                    exact: true,
                    cache: CacheStatus::Carried,
                    annotate: "LocalGround  (nodes=6, factors=9)".into(),
                }),
            },
            Response::Error {
                code: "unsupported".into(),
                message: "retract".into(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_messages_error_not_panic() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert!(decode_request(&bytes[..cut]).is_err(), "request cut {cut}");
            }
        }
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                assert!(
                    decode_response(&bytes[..cut]).is_err(),
                    "response cut {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
        let mut bytes = encode_response(&Response::ShuttingDown { epoch: 0 });
        bytes.push(0);
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn unknown_opcodes_rejected() {
        assert!(decode_request(&[200]).is_err());
        assert!(decode_response(&[77]).is_err());
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
    }

    #[test]
    fn unknown_cache_status_rejected() {
        // Corrupt the cache-status byte of a valid MARGINAL_LOCAL
        // response: it sits right before the annotate string.
        let resp = Response::MarginalLocal {
            epoch: 1,
            marginal: Some(LocalMarginalInfo {
                id: 1,
                p: 0.5,
                nodes: 1,
                factors: 0,
                frontier_stops: 0,
                budget_nodes: 0,
                budget_factors: 0,
                exact: true,
                cache: CacheStatus::Miss,
                annotate: String::new(),
            }),
        };
        let mut bytes = encode_response(&resp);
        let annotate_len = 4; // empty string = u32 length prefix only
        let cache_at = bytes.len() - annotate_len - 1;
        bytes[cache_at] = 9;
        let err = decode_response(&bytes).unwrap_err();
        assert!(err.0.contains("unknown cache status"), "{err}");
    }
}
