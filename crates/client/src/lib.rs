//! Client side of the ProbKB query-serving protocol.
//!
//! Two layers, both std-only:
//!
//! * [`protocol`] — the typed request/response model and its binary
//!   codec, shared verbatim with `probkb-server` (which depends on this
//!   crate for it). Payloads are encoded with `probkb-storage`'s
//!   [`ByteWriter`]/[`ByteReader`] codecs and carried in the CRC-guarded
//!   stream frames of `probkb_storage::frame`.
//! * [`client`] — a blocking [`Client`](client::Client) over `TcpStream`
//!   with connect/read/write deadlines and one typed method per request.
//!
//! [`ByteWriter`]: probkb_storage::format::ByteWriter
//! [`ByteReader`]: probkb_storage::format::ByteReader

#![warn(missing_docs)]

pub mod client;
pub mod protocol;

/// Everything a protocol speaker needs.
pub mod prelude {
    pub use crate::client::{Client, ClientConfig, ClientError};
    pub use crate::protocol::{
        decode_request, decode_response, encode_request, encode_response, CacheStatus,
        DeltaOutcome, FactInfo, FactRef, LineageInfo, LocalMarginalInfo, MarginalInfo,
        MarginalSource, ProtoError, Request, Response, ServerStats, PROTOCOL_VERSION,
    };
}
