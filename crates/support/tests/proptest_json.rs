//! Property tests for `support::json` string escaping: any Unicode
//! string — control characters, embedded NULs, astral-plane characters
//! that JSON escapes as surrogate pairs — must survive
//! `to_string` → `parse` unchanged, and the escaped form must stay
//! pure ASCII-compatible JSON the decoder accepts.

use probkb_support::check::prelude::*;
use probkb_support::json::Json;

/// Characters drawn from the regions that stress the escaper: control
/// characters (including NUL), printable ASCII, arbitrary BMP scalars,
/// and astral-plane scalars (encoded as `\uXXXX\uXXXX` pairs).
fn arb_char() -> impl Strategy<Value = char> {
    (0u32..4, 0u32..0x11_0000).prop_map(|(kind, raw)| {
        let code = match kind {
            0 => raw % 0x20,                      // C0 controls, incl. NUL
            1 => 0x20 + raw % 0x5F,               // printable ASCII
            2 => raw % 0x1_0000,                  // BMP (surrogates remapped)
            _ => 0x1_0000 + raw % 0x10_0000,      // astral planes
        };
        char::from_u32(code).unwrap_or('\u{FFFD}')
    })
}

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_char(), 0..32).prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    /// Every string round-trips exactly through encode + parse.
    #[test]
    fn strings_round_trip(s in arb_string()) {
        let encoded = Json::Str(s.clone()).to_string();
        let back = Json::parse(&encoded).unwrap();
        prop_assert_eq!(back, Json::Str(s));
    }

    /// Strings nested in arrays/objects round-trip too (the escaper runs
    /// on keys as well as values).
    #[test]
    fn nested_strings_round_trip(key in arb_string(), val in arb_string()) {
        let doc = Json::Obj(vec![(key, Json::Arr(vec![Json::Str(val)]))]);
        let back = Json::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// The encoder never emits raw control bytes — they all become
    /// escapes, so output lines stay grep/terminal-safe.
    #[test]
    fn encoded_form_has_no_control_bytes(s in arb_string()) {
        let encoded = Json::Str(s).to_string();
        prop_assert!(encoded.bytes().all(|b| b >= 0x20));
    }

    /// Re-encoding a parsed document is a fixpoint: the escaped form is
    /// canonical.
    #[test]
    fn encoding_is_canonical(s in arb_string()) {
        let once = Json::Str(s).to_string();
        let twice = Json::parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn surrogate_pair_escapes_decode_to_astral_chars() {
    // U+1D11E (musical G clef) spelled as an escaped surrogate pair.
    let parsed = Json::parse("\"\\ud834\\udd1e\"").unwrap();
    assert_eq!(parsed, Json::Str("\u{1D11E}".into()));
    // The raw (unescaped) astral character also parses.
    assert_eq!(
        Json::parse("\"\u{1D11E}\"").unwrap(),
        Json::Str("\u{1D11E}".into())
    );
}

#[test]
fn lone_surrogate_escapes_are_rejected() {
    assert!(Json::parse(r#""\ud834""#).is_err()); // high half alone
    assert!(Json::parse(r#""\ud834 x""#).is_err()); // high half, no low
    assert!(Json::parse(r#""\udd1e""#).is_err()); // low half alone
}

#[test]
fn embedded_nul_round_trips_as_escape() {
    let s = "a\0b";
    let encoded = Json::Str(s.into()).to_string();
    assert!(encoded.contains("\\u0000"));
    assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(s.into()));
}

#[test]
fn control_characters_use_short_escapes() {
    let encoded = Json::Str("\n\t\r\u{08}\u{0C}\"\\".into()).to_string();
    assert_eq!(encoded, r#""\n\t\r\b\f\"\\""#);
}
