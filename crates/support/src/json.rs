//! Minimal JSON encode/decode used for KB and factor-graph snapshots.
//!
//! Replaces `serde`/`serde_json` for the handful of document shapes the
//! workspace serializes. Two properties matter and are tested:
//!
//! * **Round-trip fidelity** — `f64` values are written with Rust's
//!   shortest-round-trip `Display`, so `parse(write(x)) == x` exactly.
//!   Integral floats print without a fraction (`1`, not `1.0`) and come
//!   back as [`Json::Int`]; [`Json::as_f64`] accepts both, so numeric
//!   consumers never notice.
//! * **Deterministic output** — objects keep insertion order (a `Vec`
//!   of pairs, not a map), so equal documents serialize byte-identically.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number with no fractional part that fits an `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys not deduplicated.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Compact serialization (no whitespace).
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Pretty serialization: 2-space indent, `"key": value` — the same
    /// layout `serde_json::to_string_pretty` produced, so docs and tests
    /// that match on substrings keep working.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// Numeric view; accepts both [`Json::Int`] and [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view; accepts [`Json::Int`] and integral [`Json::Num`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9.007_199_254_740_992e15 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// Unsigned view of [`Json::as_i64`].
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Usize view of [`Json::as_i64`].
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i as i64)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_value(value: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(x) => write_number(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(items.iter(), out, indent, depth, ('[', ']'), |v, o, d| {
            write_value(v, o, indent, d)
        }),
        Json::Obj(pairs) => write_seq(pairs.iter(), out, indent, depth, ('{', '}'), |(k, v), o, d| {
            write_string(k, o);
            o.push(':');
            if indent.is_some() {
                o.push(' ');
            }
            write_value(v, o, indent, d);
        }),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's Display is shortest-round-trip, which is exactly the
        // fidelity guarantee we need.
        out.push_str(&x.to_string());
    } else {
        // JSON has no Inf/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(slice, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -42 ").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.9, 0.1 + 0.2, 1.0 / 3.0, 1e-300, -2.5e17, 0.0, 7.0] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\", tab\t, back\\slash, unicode \u{1F600}\u{0007}";
        let text = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
        // Escaped input parses too.
        assert_eq!(
            Json::parse(r#""😀 A""#).unwrap(),
            Json::Str("\u{1F600} A".into())
        );
    }

    #[test]
    fn pretty_matches_serde_layout() {
        let doc = Json::Obj(vec![
            ("num_vars".into(), Json::from(3usize)),
            ("weight".into(), Json::Num(0.9)),
            ("tags".into(), Json::Arr(vec![Json::from("a"), Json::Int(1)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\"num_vars\": 3"), "{pretty}");
        assert!(pretty.contains("\"weight\": 0.9"), "{pretty}");
        assert!(pretty.contains("\"empty\": []"), "{pretty}");
        assert!(pretty.contains("\n  \"tags\": [\n    \"a\",\n    1\n  ]"), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn compact_output_is_deterministic() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::Int(2)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(doc.to_string(), r#"{"b":2,"a":[null,false]}"#);
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"facts":[{"w":0.25},{"w":null}],"n":2}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(2));
        let facts = doc.get("facts").unwrap().as_arr().unwrap();
        assert_eq!(facts[0].get("w").unwrap().as_f64(), Some(0.25));
        assert!(facts[1].get("w").unwrap().is_null());
        assert!(doc.get("missing").is_none());
    }
}
