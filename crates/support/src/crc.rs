//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! integrity check guarding every snapshot payload and WAL frame. The
//! table is built at compile time; no external crate needed.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state, for checksumming data produced in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let idx = ((self.state ^ byte as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
