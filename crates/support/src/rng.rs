//! Deterministic, seedable random numbers on a ChaCha20 core.
//!
//! Mirrors the slice of the `rand` 0.9 API the workspace actually uses —
//! [`StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`] — so call sites swap an import line and keep
//! their code. Streams are fully determined by the seed, which is what
//! the determinism tests and the seeded experiment harnesses rely on.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed raw bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from a range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn uniformly from raw bits.
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() >> 31 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a raw draw onto `0..span` (span > 0). The
/// bias is ≤ span/2⁶⁴ — irrelevant for simulation workloads and fully
/// deterministic, which is the property that matters here.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        start + (end - start) * rng.random::<f64>()
    }
}

/// The ChaCha20 block function: 10 double rounds over `input`, then the
/// feed-forward addition (RFC 8439 §2.3).
fn chacha20_block(input: &[u32; 16]) -> [u32; 16] {
    #[inline(always)]
    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    let mut s = *input;
    for _ in 0..10 {
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for (word, inp) in s.iter_mut().zip(input.iter()) {
        *word = word.wrapping_add(*inp);
    }
    s
}

/// SplitMix64: expands a 64-bit seed into independent key words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: ChaCha20 keyed by SplitMix64
/// expansion of a 64-bit seed, 64-bit block counter, zero nonce.
#[derive(Debug, Clone)]
pub struct StdRng {
    input: [u32; 16],
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 means "refill".
    cursor: usize,
}

/// The explicit name, for call sites that used `rand_chacha` directly.
pub type ChaCha20Rng = StdRng;

impl StdRng {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        self.buf = chacha20_block(&self.input);
        // 64-bit block counter in words 12/13.
        let counter = (self.input[12] as u64 | ((self.input[13] as u64) << 32)).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&Self::SIGMA);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            input[4 + 2 * i] = word as u32;
            input[5 + 2 * i] = (word >> 32) as u32;
        }
        StdRng {
            input,
            buf: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buf[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2: key 00..1f, counter 1, nonce 00:00:00:09 /
    /// 00:00:00:4a / 00:00:00:00.
    #[test]
    fn chacha20_matches_rfc8439_vector() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&StdRng::SIGMA);
        for (i, slot) in input[4..12].iter_mut().enumerate() {
            let b = 4 * i as u32;
            *slot = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let out = chacha20_block(&input);
        let expected: [u32; 16] = [
            0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3, 0xc7f4_d1c7, 0x0368_c033,
            0x9aaa_2204, 0x4e6c_d4c3, 0x4664_82d2, 0x09aa_9f07, 0x05d7_c214, 0xa202_8bd9,
            0xd19c_12b5, 0xb94e_16de, 0xe883_d0cb, 0x4e3c_50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all ranks hit: {seen:?}");
        for _ in 0..500 {
            let v: u32 = rng.random_range(2u32..=4);
            assert!((2..=4).contains(&v));
            let f: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = rng.random_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn works_through_unsized_rng_refs() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynref: &mut StdRng = &mut rng;
        let x = draw(dynref);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn bool_and_random_bool_are_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
        let biased = (0..10_000).filter(|_| rng.random_bool(0.9)).count();
        assert!(biased > 8_500, "{biased}");
    }
}
