//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! The engine's inner loops — hash joins, secondary indexes, statistics
//! counts, the fact registry — hash short composite keys (a handful of
//! tagged integers) millions of times per grounding run. SipHash, the
//! std default, is DoS-resistant but pays for it; these keys are
//! internal dictionary-encoded ids, never attacker-controlled, so we use
//! an Fx-style multiply-xor hash instead (the scheme long used by rustc
//! for the same workload shape).
//!
//! Only use these maps where **iteration order is never observable** in
//! results (lookups, membership, posting lists emitted in probe order,
//! counts that are sorted before exposure). Anything whose output
//! depends on map iteration must either sort or keep the std hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a truncation of π's digits with
/// good bit-mixing behaviour under `rotate ^ mul`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An Fx-style streaming hasher: fold each word in with
/// `hash = (hash.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (deterministic: no per-map random
/// state, so the same keys always land in the same buckets).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// [`FxHashMap`] with a pre-sized bucket array (the `with_capacity`
/// constructor is only available for the default hasher).
pub fn fx_map_with_capacity<K, V>(n: usize) -> FxHashMap<K, V> {
    HashMap::with_capacity_and_hasher(n, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        a.write(b"hello world, this is a test");
        b.write_u64(42);
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_small_keys() {
        let hash = |vals: &[i64]| {
            let mut h = FxHasher::default();
            for &v in vals {
                h.write_i64(v);
            }
            h.finish()
        };
        assert_ne!(hash(&[1, 2]), hash(&[2, 1]));
        assert_ne!(hash(&[0, 1]), hash(&[1, 0]));
        assert_ne!(hash(&[7]), hash(&[7, 7]));
        // Known (harmless) degeneracy of the Fx scheme: zero words are
        // absorbed, so all-zero keys of any length collide. Maps still
        // behave — equal hashes fall back to key equality.
        assert_eq!(hash(&[0]), hash(&[0, 0]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m.get(&vec![1, 2, 3][..].to_vec()), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }
}
