//! Locks with the `parking_lot` calling convention, plus scoped fan-out
//! helpers that cover the workspace's `crossbeam` use cases.
//!
//! `parking_lot` guards are acquired with plain `.lock()` / `.read()` /
//! `.write()` — no `Result`. These wrappers keep that shape over
//! `std::sync` by treating a poisoned lock as still usable: the data a
//! panicked thread left behind is exactly as observable as it would be
//! under `parking_lot`, which has no poisoning at all.

use std::sync::{self, LockResult, MutexGuard, OnceLock, RwLockReadGuard, RwLockWriteGuard};

fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.inner.lock())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.inner.read())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.inner.write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

/// An atomically swappable `Arc<T>`: readers `load` a cheap clone of the
/// current `Arc`, a writer `store`s a replacement, and neither ever sees
/// a half-published value. This is the std-only stand-in for the
/// `arc-swap` crate's `ArcSwap`: the lock is held only for the pointer
/// clone/replace (never across user code), so readers are wait-bounded
/// and a swap is one pointer write.
///
/// The snapshot-isolation layer in `probkb-server` publishes immutable
/// epochs through this cell: queries resolve against whatever `load`
/// returns and keep that epoch alive for the whole request, regardless
/// of concurrent swaps.
#[derive(Debug)]
pub struct ArcCell<T> {
    inner: RwLock<std::sync::Arc<T>>,
}

impl<T> ArcCell<T> {
    /// Wrap an initial value.
    pub fn new(value: std::sync::Arc<T>) -> Self {
        ArcCell {
            inner: RwLock::new(value),
        }
    }

    /// Clone the current `Arc` (the caller's snapshot survives later
    /// `store`s untouched).
    pub fn load(&self) -> std::sync::Arc<T> {
        self.inner.read().clone()
    }

    /// Atomically replace the current value, returning the previous one.
    pub fn store(&self, value: std::sync::Arc<T>) -> std::sync::Arc<T> {
        std::mem::replace(&mut *self.inner.write(), value)
    }
}

/// Fan `items` out over at most `threads` contiguous chunks, run `f` on
/// each chunk in a scoped thread, and concatenate the per-chunk results
/// **in chunk order**. `f` receives the chunk index, so callers can seed
/// per-chunk RNGs and stay deterministic regardless of interleaving.
///
/// With one thread (or one chunk) the closure runs on the caller's
/// thread — the output is identical either way.
pub fn map_chunks<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> Vec<U> + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads.max(1)).max(1);
    if chunk >= items.len() {
        return f(0, items);
    }
    let mut out = Vec::with_capacity(items.len());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(idx, part)| scope.spawn(move || f(idx, part)))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("map_chunks worker panicked"));
        }
    });
    out
}

/// Parse a positive worker count from an environment variable. Unset,
/// unparsable, or zero values all mean `None` — every `PROBKB_*` worker
/// knob treats those as "keep the serial default". Callers cache the
/// result (the knobs are read once per process); this helper only does
/// the parsing so all knobs agree on the accepted syntax.
pub fn env_workers(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The process-wide default worker-thread budget, read **once** from the
/// `PROBKB_THREADS` environment variable and cached. Unset, unparsable,
/// or zero values all mean 1 — parallel execution is opt-in, and the
/// serial engine stays the reference behaviour. Callers that need a
/// different budget mid-process (tests comparing thread counts) should
/// take an explicit override instead of re-reading the environment.
pub fn default_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| env_workers("PROBKB_THREADS").unwrap_or(1))
}

/// Run `f(0), f(1), …, f(n-1)` on at most `threads` workers and return the
/// results in index order. The task-list sibling of [`map_chunks`], for
/// fork-joining over independent work items (per-partition hash tables,
/// per-pattern grounding plans) rather than slices.
pub fn map_indices<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    map_chunks(&indices, threads, |_, part| part.iter().map(|&i| f(i)).collect())
}

/// Run `f` mutably on disjoint chunks of `items` in parallel, chunk index
/// passed along. The mutable-slice sibling of [`map_chunks`].
pub fn for_each_chunk_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    let chunk = items.len().div_ceil(threads.max(1)).max(1);
    if chunk >= items.len() {
        f(0, items);
        return;
    }
    let f = &f;
    std::thread::scope(|scope| {
        for (idx, part) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || f(idx, part));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrips_and_survives_panic() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 5;
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still lockable, data still there.
        assert_eq!(*m.lock(), 5);
        assert_eq!(Arc::try_unwrap(m).unwrap().into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let lock = RwLock::new(vec![1, 2, 3]);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn default_and_debug_are_derived() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(m.lock().is_empty());
        let l: RwLock<u64> = RwLock::default();
        assert_eq!(format!("{l:?}").is_empty(), false);
    }

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 3, 8, 2000] {
            let doubled = map_chunks(&items, threads, |_idx, part| {
                part.iter().map(|x| x * 2).collect()
            });
            assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = map_chunks(&[] as &[usize], 4, |_, _| vec![0]);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_chunks_passes_chunk_index() {
        let items: Vec<u8> = vec![0; 40];
        let tags = map_chunks(&items, 4, |idx, part| vec![idx; part.len()]);
        assert_eq!(tags.len(), 40);
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(tags, sorted, "chunk order preserved");
        assert_eq!(*tags.last().unwrap(), 3);
    }

    #[test]
    fn map_indices_runs_every_index_in_order() {
        for threads in [1, 3, 16] {
            let squares = map_indices(9, threads, |i| i * i);
            assert_eq!(squares, (0..9).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(map_indices(0, 4, |i| i).is_empty());
    }

    #[test]
    fn default_threads_is_at_least_one_and_stable() {
        // The env var is read once and cached: two calls agree, and the
        // result is always a usable thread count.
        let a = default_threads();
        let b = default_threads();
        assert_eq!(a, b);
        assert!(a >= 1);
    }

    #[test]
    fn for_each_chunk_mut_touches_every_item() {
        let mut items = vec![1u64; 999];
        for_each_chunk_mut(&mut items, 7, |idx, part| {
            for x in part {
                *x += idx as u64 * 1000;
            }
        });
        assert!(items.iter().all(|&x| x % 1000 == 1));
        assert!(items.iter().any(|&x| x > 1000));
    }
}
