//! A seeded property-testing harness with a proptest-shaped API.
//!
//! Replaces `proptest` for the workspace's suites: strategies are
//! deterministic generators driven by a per-test fixed seed (FNV hash of
//! the test name), the runner executes N cases, and a failing case
//! panics with the case number, the seed, and the `Debug` rendering of
//! the input — everything needed to replay the failure, with no
//! regression files to persist.
//!
//! The macro surface mirrors proptest on purpose so suites port with an
//! import swap:
//!
//! ```
//! use probkb_support::check::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::{FromRng, Rng, SeedableRng, StdRng};

/// A deterministic generator of test inputs.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value from the RNG stream.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniformly random value of `T` (`any::<bool>()`, `any::<u64>()`, …).
pub struct Any<T>(PhantomData<T>);

/// Construct the [`Any`] strategy for `T`.
pub fn any<T: FromRng>() -> Any<T> {
    Any(PhantomData)
}

impl<T: FromRng> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String-literal strategies: a mini pattern language covering the
/// proptest regex subset the suites use — literal characters, `[...]`
/// classes with ranges, and `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            vec![chars[i - 1]]
        } else {
            i += 1;
            vec![chars[i - 1]]
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        let count = if lo == hi {
            lo
        } else {
            rng.random_range(lo..=hi)
        };
        for _ in 0..count {
            out.push(alphabet[rng.random_range(0..alphabet.len())]);
        }
    }
    out
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use crate::rng::{Rng, StdRng};

    /// A `Vec` of values from `element`, with length drawn from `size`
    /// (an exact `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Runner configuration, named after its proptest counterpart.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Seed mixed with the test-name hash; fixed for reproducibility.
    pub seed: u64,
}

impl ProptestConfig {
    /// Default configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            seed: 0x5EED_CAFE,
        }
    }
}

/// A failed assertion inside a property body.
#[derive(Debug, Clone)]
pub struct CaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl CaseError {
    /// Build a failure from any message.
    pub fn new(message: impl Into<String>) -> Self {
        CaseError {
            message: message.into(),
        }
    }
}

/// The result a property body returns: `Ok(())` or a failed assertion.
pub type CaseResult = Result<(), CaseError>;

/// FNV-1a, used to derive a stable per-test seed from its name.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Execute `cases` generated inputs against `body`, panicking with a
/// replayable report on the first failure.
pub fn run<S>(config: &ProptestConfig, name: &str, strategy: S, body: impl Fn(S::Value) -> CaseResult)
where
    S: Strategy,
    S::Value: Debug,
{
    let seed = config.seed ^ fnv1a(name);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        if let Err(failure) = body(value) {
            panic!(
                "property '{name}' failed at case {case}/{cases} (seed {seed:#x})\n\
                 input: {rendered}\n{message}",
                cases = config.cases,
                message = failure.message,
            );
        }
    }
}

/// Define property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies with `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::check::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::check::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| -> $crate::check::CaseResult {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property body; on failure the case is
/// reported with its generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::check::CaseError::new(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::CaseError::new(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::check::CaseError::new(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::check::CaseError::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::check::CaseError::new(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
}

/// Import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use super::{any, Any, CaseError, CaseResult, Just, ProptestConfig, SizeRange, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::collection::vec` path, as proptest spells it.
    pub mod prop {
        pub use crate::check::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = (0u32..100, super::collection::vec(0i64..5, 1..=4));
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(
                super::Strategy::generate(&strat, &mut a),
                super::Strategy::generate(&strat, &mut b)
            );
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let s = super::Strategy::generate(&"[A-Za-z][A-Za-z0-9_]{0,10}", &mut rng);
            assert!((1..=11).contains(&s.len()), "{s}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_alphabetic(), "{s}");
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s}");
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let exact = super::collection::vec(super::any::<bool>(), 12usize);
        assert_eq!(super::Strategy::generate(&exact, &mut rng).len(), 12);
        let ranged = super::collection::vec(0usize..3, 0..20);
        for _ in 0..100 {
            let v = super::Strategy::generate(&ranged, &mut rng);
            assert!(v.len() < 20);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..5).prop_flat_map(|n| {
            super::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        });
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let (n, v) = super::Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed at case 0")]
    fn failures_report_case_and_input() {
        let cfg = ProptestConfig::with_cases(5);
        super::run(&cfg, "always_fails", (0u32..10,), |(x,)| {
            Err(super::CaseError::new(format!("boom on {x}")))
        });
    }

    // The macro surface itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn macro_roundtrip(a in 0u64..1000, b in prop::collection::vec(any::<bool>(), 0..8)) {
            if a == u64::MAX {
                return Ok(()); // early-exit style used by the suites
            }
            prop_assert!(a < 1000, "a was {}", a);
            prop_assert_eq!(b.len(), b.clone().len());
            prop_assert_ne!(a, a + 1);
        }
    }
}
