//! A self-contained timing harness for `harness = false` benchmarks.
//!
//! Replaces `criterion` with the subset of its API the bench files use —
//! [`Criterion::benchmark_group`], [`BenchmarkId`], `sample_size`,
//! `bench_function` / `bench_with_input`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so a bench ports by swapping its import
//! line. Each benchmark runs a short warmup, then `sample_size` timed
//! samples, and prints min / median / max wall-clock time per iteration.
//!
//! Set `MICROBENCH_SAMPLES=<n>` to override every group's sample count
//! (e.g. `MICROBENCH_SAMPLES=3` for a smoke pass in CI).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchGroup {
            name,
            sample_size: 20,
            warmup: Duration::from_millis(200),
        }
    }
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Label a benchmark with a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId { text: text.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    warmup: Duration,
}

impl BenchGroup {
    /// Number of timed samples per benchmark (overridable via the
    /// `MICROBENCH_SAMPLES` env var).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup budget before sampling starts.
    pub fn warmup_time(&mut self, warmup: Duration) -> &mut Self {
        self.warmup = warmup;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            warmup: self.warmup,
            times: Vec::new(),
        };
        routine(&mut bencher);
        report(&self.name, &id.into(), &bencher.times);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// End the group (prints nothing extra; matches the criterion call).
    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        std::env::var("MICROBENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1)
    }
}

/// Passed to each benchmark routine; call [`Bencher::iter`] with the
/// code under test.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warmup: Duration,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: warm up, then record one duration per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
        }
        self.times = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

fn report(group: &str, id: &BenchmarkId, times: &[Duration]) {
    if times.is_empty() {
        println!("{group}/{id}: no samples (routine never called iter)");
        return;
    }
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    println!(
        "{group}/{id}: median {} (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(sorted[0]),
        fmt_duration(*sorted.last().unwrap()),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions under a name, as criterion spells it.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point: run each group, ignoring cargo's `--bench` argument.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; tolerate and ignore flags.
            let _args: Vec<String> = std::env::args().skip(1).collect();
            let mut criterion = $crate::microbench::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("support_selftest");
        group.sample_size(3).warmup_time(Duration::ZERO);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| {
                calls += 1;
                (0..100u64).sum::<u64>()
            });
        });
        group.finish();
        // 1+ warmup call plus 3 samples.
        assert!(calls >= 4, "{calls}");
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("chromatic", 8).to_string(), "chromatic/8");
    }

    #[test]
    fn durations_format_readably() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
