//! # probkb-support
//!
//! The hermetic build substrate for the ProbKB workspace: everything the
//! other crates used to pull from crates.io, reimplemented on `std` alone
//! so `cargo build --release && cargo test -q` works with the network
//! unplugged. Reproducible, seeded runs are what make KB-expansion results
//! trustworthy (the DeepDive line of work makes the same argument), and a
//! build that cannot resolve its registry cannot reproduce anything.
//!
//! | module | replaces | surface |
//! |---|---|---|
//! | [`rng`] | `rand` + `rand_chacha` | `StdRng` (ChaCha20), `Rng::{random, random_range}`, `SeedableRng::seed_from_u64` |
//! | [`json`] | `serde` + `serde_json` | [`json::Json`] value tree, parser, compact/pretty writers with round-trip floats |
//! | [`sync`] | `parking_lot` + `crossbeam` | panic-free [`sync::Mutex`]/[`sync::RwLock`], scoped fan-out helpers |
//! | [`check`] | `proptest` | seeded strategy combinators plus the [`proptest!`]/[`prop_assert!`] macros |
//! | [`microbench`] | `criterion` | warmup + sampled timing with median reporting for `harness = false` benches |
//! | [`crc`] | `crc32fast` | table-driven CRC-32 (IEEE) shared by `storage` framing and `pager` pages |
//!
//! Each module deliberately mirrors the *names* of the crate it replaces
//! (`StdRng`, `proptest!`, `prop::collection::vec`, …) so swapping a call
//! site is an import change, not a rewrite.

#![warn(missing_docs)]

pub mod check;
pub mod crc;
pub mod hash;
pub mod json;
pub mod microbench;
pub mod rng;
pub mod sync;
