//! Per-table statistics for the cost-based optimizer.
//!
//! The paper leans on PostgreSQL/Greenplum's planner, which in turn leans
//! on `ANALYZE`-style table statistics. This module is the equivalent for
//! our engine: per-table row counts and, per column, distinct-value
//! counts, null counts, and a most-common-value (MCV) sketch. The
//! [`crate::catalog::Catalog`] maintains these automatically — computed
//! lazily on first use (or eagerly via `ANALYZE`), updated incrementally
//! on inserts, rebuilt after deletes — and [`crate::optimizer`] reads
//! them to estimate cardinalities.
//!
//! Statistics are maintained from an exact per-column value-count map
//! (the workloads here are dictionary-encoded integer ids, so domains are
//! small), but the estimator-facing surface is deliberately sketch-like:
//! [`ColumnStats::distinct_count`], [`ColumnStats::null_count`], and the
//! top-[`MCV_SIZE`] [`ColumnStats::most_common`] list. Everything is
//! deterministic — ties in the MCV list break by value order — so plans
//! chosen from these statistics are reproducible run to run.

use std::sync::OnceLock;

use probkb_support::hash::FxHashMap;
use probkb_support::sync::map_chunks;

use crate::table::{Row, Table};
use crate::value::Value;

/// Number of entries kept in the most-common-value sketch, matching the
/// small MCV lists real planners keep per column.
pub const MCV_SIZE: usize = 8;

/// Statistics for one column: null count plus an exact value-count map
/// from which distinct counts and the MCV sketch are derived.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    counts: FxHashMap<Value, usize>,
    null_count: usize,
    non_null_count: usize,
    /// Memoized MCV sketch — deriving it sorts every distinct value, so
    /// it is computed once per mutation generation, not per read (the
    /// optimizer reads statistics on every plan).
    mcv_cache: OnceLock<Vec<(Value, usize)>>,
}

impl ColumnStats {
    /// Number of distinct non-null values observed.
    pub fn distinct_count(&self) -> usize {
        self.counts.len()
    }

    /// Number of NULLs observed.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Number of non-null values observed.
    pub fn non_null_count(&self) -> usize {
        self.non_null_count
    }

    /// The most-common-value sketch: up to [`MCV_SIZE`] `(value, count)`
    /// pairs, most frequent first, ties broken by value order so the
    /// sketch is deterministic.
    pub fn most_common(&self) -> Vec<(Value, usize)> {
        self.mcv_cache
            .get_or_init(|| {
                let mut entries: Vec<(Value, usize)> =
                    self.counts.iter().map(|(v, &n)| (v.clone(), n)).collect();
                entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                entries.truncate(MCV_SIZE);
                entries
            })
            .clone()
    }

    /// Record one value.
    pub fn add(&mut self, value: &Value) {
        self.mcv_cache.take();
        if value.is_null() {
            self.null_count += 1;
        } else {
            *self.counts.entry(value.clone()).or_insert(0) += 1;
            self.non_null_count += 1;
        }
    }

    /// Fold another column's statistics into this one (used to combine
    /// per-segment statistics into cluster-wide ones).
    pub fn merge(&mut self, other: &ColumnStats) {
        self.mcv_cache.take();
        self.null_count += other.null_count;
        self.non_null_count += other.non_null_count;
        for (v, n) in &other.counts {
            *self.counts.entry(v.clone()).or_insert(0) += n;
        }
    }
}

/// Statistics for one table: a row count plus [`ColumnStats`] per column.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    row_count: usize,
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute fresh statistics from a table (the `ANALYZE` path).
    pub fn analyze(table: &Table) -> TableStats {
        let mut stats = TableStats {
            row_count: 0,
            columns: vec![ColumnStats::default(); table.schema().width()],
        };
        // Stream block by block: counts are additive, so this matches a
        // whole-slice pass while a spilled table decodes one chunk at a
        // time instead of materializing.
        for block in table.blocks() {
            stats.add_rows(block.rows());
        }
        stats
    }

    /// [`TableStats::analyze`] on up to `threads` workers: row chunks are
    /// analyzed independently and merged. Counts are additive, so the
    /// result is identical to the serial analyze regardless of thread
    /// count.
    pub fn analyze_parallel(table: &Table, threads: usize) -> TableStats {
        TableStats::analyze_rows_parallel(table.rows(), table.schema().width(), threads)
    }

    /// Parallel analyze over a raw row slice of known `width` (the
    /// incremental stats-bump path, where the new rows are a table
    /// suffix rather than a whole table).
    pub fn analyze_rows_parallel(rows: &[Row], width: usize, threads: usize) -> TableStats {
        let empty = || TableStats {
            row_count: 0,
            columns: vec![ColumnStats::default(); width],
        };
        if threads <= 1 || rows.len() < 4096 {
            let mut stats = empty();
            stats.add_rows(rows);
            return stats;
        }
        let partials = map_chunks(rows, threads, |_, part| {
            let mut stats = empty();
            stats.add_rows(part);
            vec![stats]
        });
        let mut stats = empty();
        for partial in &partials {
            stats.merge(partial);
        }
        stats
    }

    /// Total rows observed.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of columns covered.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Statistics for column `i`, if covered.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }

    /// Fold newly inserted rows into the statistics (the incremental
    /// refresh run on every INSERT).
    pub fn add_rows(&mut self, rows: &[Row]) {
        for row in rows {
            self.row_count += 1;
            for (col, value) in self.columns.iter_mut().zip(row.iter()) {
                col.add(value);
            }
        }
    }

    /// Fold another table's statistics into this one. Used by the MPP
    /// layer to combine per-segment slices into a cluster-wide estimate;
    /// merging mismatched widths keeps the wider side's extra columns
    /// untouched.
    pub fn merge(&mut self, other: &TableStats) {
        self.row_count += other.row_count;
        if self.columns.len() < other.columns.len() {
            self.columns
                .resize(other.columns.len(), ColumnStats::default());
        }
        for (col, other_col) in self.columns.iter_mut().zip(other.columns.iter()) {
            col.merge(other_col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn table(rows: Vec<Vec<i64>>) -> Table {
        let width = rows.first().map(|r| r.len()).unwrap_or(1);
        let names: Vec<String> = (0..width).map(|i| format!("c{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Table::from_rows_unchecked(
            Schema::ints(&refs),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        )
    }

    #[test]
    fn analyze_counts_rows_and_distincts() {
        let t = table(vec![vec![1, 10], vec![1, 20], vec![2, 30]]);
        let s = TableStats::analyze(&t);
        assert_eq!(s.row_count(), 3);
        assert_eq!(s.width(), 2);
        assert_eq!(s.column(0).unwrap().distinct_count(), 2);
        assert_eq!(s.column(1).unwrap().distinct_count(), 3);
        assert!(s.column(2).is_none());
    }

    #[test]
    fn nulls_tracked_separately() {
        let schema = Schema::new(vec![Column::nullable("k", DataType::Int)]);
        let t = Table::from_rows_unchecked(
            schema,
            vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Null]],
        );
        let s = TableStats::analyze(&t);
        let c = s.column(0).unwrap();
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.non_null_count(), 1);
        assert_eq!(c.distinct_count(), 1);
    }

    #[test]
    fn mcv_is_sorted_capped_and_deterministic() {
        // 0 appears 9 times, 1..=9 once each: MCV leads with 0, then the
        // singleton values in value order, capped at MCV_SIZE entries.
        let mut rows = vec![vec![0i64]; 9];
        rows.extend((1..=9i64).map(|v| vec![v]));
        let s = TableStats::analyze(&table(rows));
        let mcv = s.column(0).unwrap().most_common();
        assert_eq!(mcv.len(), MCV_SIZE);
        assert_eq!(mcv[0], (Value::Int(0), 9));
        assert_eq!(mcv[1], (Value::Int(1), 1));
        assert_eq!(mcv[2], (Value::Int(2), 1));
    }

    #[test]
    fn add_rows_refreshes_incrementally() {
        let mut s = TableStats::analyze(&table(vec![vec![1]]));
        s.add_rows(&[vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert_eq!(s.row_count(), 3);
        assert_eq!(s.column(0).unwrap().distinct_count(), 2);
        assert_eq!(s.column(0).unwrap().most_common()[0], (Value::Int(1), 2));
    }

    #[test]
    fn merge_combines_segment_slices() {
        let a = TableStats::analyze(&table(vec![vec![1], vec![2]]));
        let mut b = TableStats::analyze(&table(vec![vec![2], vec![3]]));
        b.merge(&a);
        assert_eq!(b.row_count(), 4);
        assert_eq!(b.column(0).unwrap().distinct_count(), 3);
        assert_eq!(b.column(0).unwrap().most_common()[0], (Value::Int(2), 2));
    }

    #[test]
    fn empty_table_stats_are_zero() {
        let s = TableStats::analyze(&Table::empty(Schema::ints(&["a"])));
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.column(0).unwrap().distinct_count(), 0);
        assert!(s.column(0).unwrap().most_common().is_empty());
    }
}
