//! Table schemas: ordered, named, typed columns.

use std::fmt;
use std::sync::Arc;


use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name; unique within a schema.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
    /// Whether NULL values are permitted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column (e.g. fact weights during grounding, `I3` in `TΦ`).
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// An ordered list of columns. Schemas are immutable and cheaply cloneable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Arc<[Column]>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns: columns.into(),
        }
    }

    /// Shorthand: all-integer schema from names, non-nullable.
    pub fn ints(names: &[&str]) -> Self {
        Schema::new(
            names
                .iter()
                .map(|n| Column::new(*n, DataType::Int))
                .collect(),
        )
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Get a column by index.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns.get(index).ok_or(Error::ColumnOutOfBounds {
            index,
            width: self.columns.len(),
        })
    }

    /// Resolve a column name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Resolve several column names at once.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// All column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Concatenate two schemas (used by joins). Duplicate names on the right
    /// side are suffixed with `_r`, matching what SQL users do with aliases.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut cols: Vec<Column> = self.columns.to_vec();
        for c in right.columns.iter() {
            let mut c = c.clone();
            if cols.iter().any(|existing| existing.name == c.name) {
                c.name = format!("{}_r", c.name);
            }
            cols.push(c);
        }
        Schema::new(cols)
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let cols = indices
            .iter()
            .map(|&i| self.column(i).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(cols))
    }

    /// Validate a row against this schema: arity, types, nullability.
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.width() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "row has {} values, schema has {} columns",
                    row.len(),
                    self.width()
                ),
            });
        }
        for (value, col) in row.iter().zip(self.columns.iter()) {
            match value.data_type() {
                None => {
                    if !col.nullable {
                        return Err(Error::SchemaMismatch {
                            detail: format!("NULL in non-nullable column {}", col.name),
                        });
                    }
                }
                Some(dt) => {
                    if dt != col.dtype {
                        return Err(Error::SchemaMismatch {
                            detail: format!(
                                "column {} expects {}, got {}",
                                col.name, col.dtype, dt
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if c.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("w", DataType::Float),
            Column::new("name", DataType::Str),
        ])
    }

    #[test]
    fn index_resolution() {
        let s = schema();
        assert_eq!(s.index_of("w").unwrap(), 1);
        assert_eq!(s.indices_of(&["name", "id"]).unwrap(), vec![2, 0]);
        assert!(matches!(s.index_of("zzz"), Err(Error::UnknownColumn(_))));
    }

    #[test]
    fn validate_row_checks_arity_types_nullability() {
        let s = schema();
        assert!(s
            .validate_row(&[Value::Int(1), Value::Null, Value::str("a")])
            .is_ok());
        // wrong arity
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
        // null in non-nullable
        assert!(s
            .validate_row(&[Value::Null, Value::Null, Value::str("a")])
            .is_err());
        // wrong type
        assert!(s
            .validate_row(&[Value::str("x"), Value::Null, Value::str("a")])
            .is_err());
    }

    #[test]
    fn join_renames_duplicates() {
        let s = schema();
        let joined = s.join(&s);
        assert_eq!(joined.width(), 6);
        assert_eq!(
            joined.names(),
            vec!["id", "w", "name", "id_r", "w_r", "name_r"]
        );
    }

    #[test]
    fn project_selects_and_errors_out_of_bounds() {
        let s = schema();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["name", "id"]);
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn ints_shorthand() {
        let s = Schema::ints(&["a", "b"]);
        assert_eq!(s.width(), 2);
        assert_eq!(s.column(0).unwrap().dtype, DataType::Int);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            schema().to_string(),
            "(id INT, w FLOAT NULL, name TEXT)"
        );
    }
}
