//! EXPLAIN / EXPLAIN ANALYZE rendering of plans and execution metrics.
//!
//! Figure 4 of the paper shows Greenplum plans annotated with per-operator
//! durations; the MPP crate reuses these renderers and adds motion nodes.

use std::time::Duration;

use crate::exec::ExecMetrics;
use crate::plan::Plan;

/// Render a plan as an indented tree (EXPLAIN).
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    fn go(plan: &Plan, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&plan.describe());
        out.push('\n');
        for child in plan.children() {
            go(child, depth + 1, out);
        }
    }
    go(plan, 0, &mut out);
    out
}

/// Format a duration the way Figure 4 annotates operators (`0.85s`,
/// `0.3ms`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 0.001 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Render execution metrics as an annotated tree (EXPLAIN ANALYZE).
///
/// Every node shows actual rows next to the planner's estimate (`est=`),
/// so cardinality misestimates are visible at a glance. Nodes executed by
/// the morsel-driven parallel path additionally show the worker count and
/// each worker's busy time, Greenplum-style (the per-segment breakdown
/// Figure 4's plans imply):
///
/// ```text
/// Hash Join on left[0] = right[0]  (rows=600, est=600, time=1.20ms, workers=4 [0.3ms 0.3ms 0.3ms 0.3ms])
/// ```
pub fn explain_analyze(metrics: &ExecMetrics) -> String {
    let mut out = String::new();
    metrics.visit(&mut |node, depth| {
        out.push_str(&"  ".repeat(depth));
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&format!(
            "{}  (rows={}, est={}, time={}",
            node.description,
            node.rows_out,
            node.est_rows,
            fmt_duration(node.elapsed)
        ));
        if node.workers > 1 {
            let per_worker: Vec<String> = node
                .worker_elapsed
                .iter()
                .map(|d| fmt_duration(*d))
                .collect();
            out.push_str(&format!(
                ", workers={} [{}]",
                node.workers,
                per_worker.join(" ")
            ));
        }
        if let Some(buf) = &node.buffer {
            out.push_str(&format!(
                ", buf: pins={} hits={} misses={} evict={} spilled={}B",
                buf.pins, buf.hits, buf.misses, buf.evictions, buf.bytes_spilled
            ));
        }
        out.push_str(")\n");
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exec::Executor;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::value::Value;

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::scan("a").hash_join(Plan::scan("b"), vec![0], vec![0]);
        let text = explain(&plan);
        assert!(text.starts_with("Hash Join"));
        assert!(text.contains("-> Seq Scan on a"));
        assert!(text.contains("-> Seq Scan on b"));
    }

    #[test]
    fn explain_analyze_includes_rows_and_time() {
        let cat = Catalog::new();
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("t").distinct();
        let (_, metrics) = exec.execute(&plan).unwrap();
        let text = explain_analyze(&metrics);
        assert!(text.contains("HashDistinct"));
        assert!(text.contains("rows=2"));
        assert!(text.contains("est=2"));
        assert!(text.contains("time="));
    }

    #[test]
    fn explain_analyze_annotates_parallel_workers() {
        let cat = Catalog::new();
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..40i64).map(|i| vec![Value::Int(i % 4)]).collect(),
        );
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat).with_threads(4).with_parallel_threshold(1);
        let plan = Plan::scan("t").hash_join(Plan::scan("t"), vec![0], vec![0]);
        let (_, metrics) = exec.execute(&plan).unwrap();
        let text = explain_analyze(&metrics);
        assert!(text.contains("workers=4 ["), "got: {text}");
        // Scans stay serial and must not grow a workers annotation.
        let scan_line = text
            .lines()
            .find(|l| l.contains("Seq Scan"))
            .expect("scan line");
        assert!(!scan_line.contains("workers="));
    }

    #[test]
    fn buffer_annotation_golden_format() {
        use crate::prelude::BufferStats;
        // Golden: the exact rendering of buffer-pool counters. Change
        // this string only together with every consumer parsing it.
        let metrics = ExecMetrics {
            description: "Seq Scan on t".into(),
            rows_out: 7,
            est_rows: 7,
            elapsed: Duration::from_micros(100),
            wall: Duration::from_micros(100),
            workers: 1,
            worker_elapsed: Vec::new(),
            buffer: Some(BufferStats {
                pins: 12,
                hits: 10,
                misses: 2,
                evictions: 1,
                bytes_spilled: 16384,
            }),
            children: Vec::new(),
        };
        assert_eq!(
            explain_analyze(&metrics),
            "Seq Scan on t  (rows=7, est=7, time=100.0us, \
             buf: pins=12 hits=10 misses=2 evict=1 spilled=16384B)\n"
        );
    }

    #[test]
    fn buffer_annotation_absent_without_storage() {
        // In-memory-only catalogs must render exactly as before the
        // out-of-core layer existed: no `buf:` fragment anywhere.
        let cat = Catalog::new();
        cat.set_spill_policy(None);
        let t = Table::from_rows_unchecked(Schema::ints(&["k"]), vec![vec![Value::Int(1)]]);
        cat.create("t", t).unwrap();
        let (_, metrics) = Executor::new(&cat).execute(&Plan::scan("t")).unwrap();
        assert!(!explain_analyze(&metrics).contains("buf:"));
    }

    #[test]
    fn buffer_annotation_live_on_spilled_scan() {
        use crate::spill::{SpillPolicy, StorageContext};
        let cat = Catalog::new();
        let ctx = StorageContext::in_temp(64).unwrap();
        cat.set_spill_policy(Some(SpillPolicy {
            ctx,
            threshold_rows: 256,
        }));
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..10_000i64).map(|i| vec![Value::Int(i)]).collect(),
        );
        cat.create("t", t).unwrap();
        assert!(cat.get("t").unwrap().is_spilled());
        // Distinct streams the table's blocks, so the spilled chunks
        // must page back in and the pins show up in the annotation.
        let plan = Plan::scan("t").distinct();
        let (_, metrics) = Executor::new(&cat).execute(&plan).unwrap();
        let text = explain_analyze(&metrics);
        let buf = metrics.buffer.as_ref().expect("storage configured");
        assert!(text.contains("buf: pins="), "got: {text}");
        assert!(buf.pins > 0, "streaming a spilled table must pin pages");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(300)), "300.0us");
    }
}
