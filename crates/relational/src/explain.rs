//! EXPLAIN / EXPLAIN ANALYZE rendering of plans and execution metrics.
//!
//! Figure 4 of the paper shows Greenplum plans annotated with per-operator
//! durations; the MPP crate reuses these renderers and adds motion nodes.

use std::time::Duration;

use crate::exec::ExecMetrics;
use crate::plan::Plan;

/// Render a plan as an indented tree (EXPLAIN).
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    fn go(plan: &Plan, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&plan.describe());
        out.push('\n');
        for child in plan.children() {
            go(child, depth + 1, out);
        }
    }
    go(plan, 0, &mut out);
    out
}

/// Format a duration the way Figure 4 annotates operators (`0.85s`,
/// `0.3ms`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 0.001 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Render execution metrics as an annotated tree (EXPLAIN ANALYZE).
///
/// Every node shows actual rows next to the planner's estimate (`est=`),
/// so cardinality misestimates are visible at a glance. Nodes executed by
/// the morsel-driven parallel path additionally show the worker count and
/// each worker's busy time, Greenplum-style (the per-segment breakdown
/// Figure 4's plans imply):
///
/// ```text
/// Hash Join on left[0] = right[0]  (rows=600, est=600, time=1.20ms, workers=4 [0.3ms 0.3ms 0.3ms 0.3ms])
/// ```
pub fn explain_analyze(metrics: &ExecMetrics) -> String {
    let mut out = String::new();
    metrics.visit(&mut |node, depth| {
        out.push_str(&"  ".repeat(depth));
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&format!(
            "{}  (rows={}, est={}, time={}",
            node.description,
            node.rows_out,
            node.est_rows,
            fmt_duration(node.elapsed)
        ));
        if node.workers > 1 {
            let per_worker: Vec<String> = node
                .worker_elapsed
                .iter()
                .map(|d| fmt_duration(*d))
                .collect();
            out.push_str(&format!(
                ", workers={} [{}]",
                node.workers,
                per_worker.join(" ")
            ));
        }
        out.push_str(")\n");
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exec::Executor;
    use crate::schema::Schema;
    use crate::table::Table;
    use crate::value::Value;

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::scan("a").hash_join(Plan::scan("b"), vec![0], vec![0]);
        let text = explain(&plan);
        assert!(text.starts_with("Hash Join"));
        assert!(text.contains("-> Seq Scan on a"));
        assert!(text.contains("-> Seq Scan on b"));
    }

    #[test]
    fn explain_analyze_includes_rows_and_time() {
        let cat = Catalog::new();
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("t").distinct();
        let (_, metrics) = exec.execute(&plan).unwrap();
        let text = explain_analyze(&metrics);
        assert!(text.contains("HashDistinct"));
        assert!(text.contains("rows=2"));
        assert!(text.contains("est=2"));
        assert!(text.contains("time="));
    }

    #[test]
    fn explain_analyze_annotates_parallel_workers() {
        let cat = Catalog::new();
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..40i64).map(|i| vec![Value::Int(i % 4)]).collect(),
        );
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat).with_threads(4).with_parallel_threshold(1);
        let plan = Plan::scan("t").hash_join(Plan::scan("t"), vec![0], vec![0]);
        let (_, metrics) = exec.execute(&plan).unwrap();
        let text = explain_analyze(&metrics);
        assert!(text.contains("workers=4 ["), "got: {text}");
        // Scans stay serial and must not grow a workers annotation.
        let scan_line = text
            .lines()
            .find(|l| l.contains("Seq Scan"))
            .expect("scan line");
        assert!(!scan_line.contains("workers="));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(300)), "300.0us");
    }
}
