//! Spill policy and storage context: *when* tables move out of core
//! and *where* their pages live.
//!
//! A [`StorageContext`] owns one buffer pool ([`BufferManager`]) and a
//! spill directory; every spilled table allocates an ephemeral heap
//! file inside it. A [`SpillPolicy`] pairs a context with the row
//! threshold above which the catalog pushes a table out of core.
//!
//! The process-wide default ([`process_default`]) is driven by env,
//! read once:
//!
//! * `PROBKB_SPILL_ROWS` — presence enables spilling; value is the
//!   row threshold. Unset = everything stays in memory (the historical
//!   behavior).
//! * `PROBKB_BUFFER_PAGES` — buffer pool capacity in 8 KiB pages
//!   (default 1024 = 8 MiB), read by `probkb_pager::buffer`.
//! * `PROBKB_SPILL_DIR` — spill directory (default
//!   `$TMPDIR/probkb-spill-<pid>`).
//!
//! Crucially, the policy decides only *placement*, never *results*:
//! whether a table spills (and at what pool size) cannot change any
//! query output — the differential suites pin that byte-for-byte.
//! Tests inject explicit policies via [`set_process_default`] instead
//! of racing on env vars.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use probkb_pager::buffer::{env_pool_pages, BufferManager, BufferStats};
use probkb_pager::heap::HeapFile;
use probkb_support::sync::RwLock;

use crate::error::{Error, Result};

impl From<probkb_pager::Error> for Error {
    fn from(e: probkb_pager::Error) -> Self {
        Error::Storage(e.to_string())
    }
}

/// A buffer pool plus the directory its spill files live in.
pub struct StorageContext {
    buffer: Arc<BufferManager>,
    dir: PathBuf,
    seq: AtomicU64,
}

impl std::fmt::Debug for StorageContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageContext")
            .field("dir", &self.dir)
            .field("pool_pages", &self.buffer.capacity())
            .finish()
    }
}

impl StorageContext {
    /// A context spilling into `dir` (created if absent) through
    /// `buffer`.
    pub fn new(dir: impl AsRef<Path>, buffer: Arc<BufferManager>) -> Result<Arc<Self>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Storage(format!("create spill dir {}: {e}", dir.display())))?;
        Ok(Arc::new(StorageContext {
            buffer,
            dir,
            seq: AtomicU64::new(0),
        }))
    }

    /// A context with its own `pool_pages`-frame pool and a unique
    /// temp directory — the constructor tests and benches use to pin
    /// pool size explicitly.
    pub fn in_temp(pool_pages: usize) -> Result<Arc<Self>> {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "probkb-spill-{}-{n}",
            std::process::id()
        ));
        StorageContext::new(dir, BufferManager::new(pool_pages))
    }

    /// The buffer pool.
    pub fn buffer(&self) -> &Arc<BufferManager> {
        &self.buffer
    }

    /// Snapshot of the pool's activity counters.
    pub fn stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Allocate a fresh ephemeral heap file for one spilled table.
    pub fn new_heap(&self) -> Result<Arc<HeapFile>> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("t{n}.heap"));
        Ok(HeapFile::create(Arc::clone(&self.buffer), &path, true)?)
    }

    /// A fresh path for an ephemeral B-tree file.
    pub fn new_index_path(&self) -> PathBuf {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!("i{n}.bt"))
    }
}

impl Drop for StorageContext {
    fn drop(&mut self) {
        // Spill files delete themselves (ephemeral); reap the directory
        // if nothing is left in it.
        let _ = std::fs::remove_dir(&self.dir);
    }
}

/// A storage context plus the row count above which tables spill.
#[derive(Clone, Debug)]
pub struct SpillPolicy {
    /// Where spilled tables live.
    pub ctx: Arc<StorageContext>,
    /// Tables at or above this many rows are spilled by the catalog.
    pub threshold_rows: usize,
}

enum Override {
    Unset,
    Set(Option<SpillPolicy>),
}

fn override_cell() -> &'static RwLock<Override> {
    static CELL: OnceLock<RwLock<Override>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(Override::Unset))
}

fn env_default() -> &'static Option<SpillPolicy> {
    static ENV: OnceLock<Option<SpillPolicy>> = OnceLock::new();
    ENV.get_or_init(|| {
        let threshold = std::env::var("PROBKB_SPILL_ROWS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())?;
        let dir = std::env::var("PROBKB_SPILL_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| {
                std::env::temp_dir().join(format!("probkb-spill-{}", std::process::id()))
            });
        match StorageContext::new(dir, BufferManager::new(env_pool_pages())) {
            Ok(ctx) => Some(SpillPolicy {
                ctx,
                threshold_rows: threshold.max(1),
            }),
            // No usable spill dir: stay in memory rather than fail.
            Err(_) => None,
        }
    })
}

/// The spill policy new catalogs adopt. `None` = in-memory only.
pub fn process_default() -> Option<SpillPolicy> {
    if let Override::Set(p) = &*override_cell().read() {
        return p.clone();
    }
    env_default().clone()
}

/// Replace the process default (pass `None` to force in-memory, or
/// `Some(policy)` to spill through an explicit context). Intended for
/// tests and embedders; affects catalogs created *after* the call.
pub fn set_process_default(policy: Option<SpillPolicy>) {
    *override_cell().write() = Override::Set(policy);
}

/// Drop any override installed by [`set_process_default`], returning
/// to the env-derived default.
pub fn clear_process_default() {
    *override_cell().write() = Override::Unset;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_temp_creates_and_allocates() {
        let ctx = StorageContext::in_temp(16).unwrap();
        let h1 = ctx.new_heap().unwrap();
        let h2 = ctx.new_heap().unwrap();
        h1.append(b"a").unwrap();
        h2.append(b"b").unwrap();
        assert_ne!(ctx.new_index_path(), ctx.new_index_path());
        assert_eq!(ctx.buffer().capacity(), 16);
    }

    #[test]
    fn override_round_trips() {
        // Not parallel-safe with other tests of the default — this test
        // only checks the Set/Unset mechanics through a local policy.
        let ctx = StorageContext::in_temp(8).unwrap();
        set_process_default(Some(SpillPolicy {
            ctx,
            threshold_rows: 123,
        }));
        assert_eq!(process_default().unwrap().threshold_rows, 123);
        set_process_default(None);
        assert!(process_default().is_none());
        clear_process_default();
    }
}
