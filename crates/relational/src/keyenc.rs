//! Memcomparable key encoding for B-tree indexes.
//!
//! [`encode_value`] maps a [`Value`] to bytes whose lexicographic
//! order equals the value's order *within its type*; [`encode_key`]
//! concatenates column encodings, and because every encoding is
//! self-delimiting, the encoding of a key prefix is a byte prefix of
//! the full key — which is what turns a B-tree range scan into a
//! prefix probe ([`prefix_range`]).
//!
//! Type tags order NULL < INT < FLOAT < STR. (This differs from
//! `Value::cmp`, which compares mixed Int/Float numerically — indexed
//! columns are typed, so cross-type comparisons never decide a probe.)
//! Floats use the canonical bits of `Value`'s `Eq`/`Hash` (`-0.0` and
//! `0.0` encode identically), because indexes serve equality probes and
//! must agree with hash-map semantics, not `total_cmp`'s `-0.0 < 0.0`.
//!
//! Encodings:
//! * `Null` → `[0x00]`
//! * `Int(v)` → `[0x01]` + big-endian of `v ^ i64::MIN` (sign flip)
//! * `Float(v)` → `[0x02]` + big-endian of the canonical bits with the
//!   usual total-order transform (negative → all bits flipped,
//!   non-negative → sign bit set)
//! * `Str(s)` → `[0x03]` + bytes with `0x00` escaped as `0x00 0xFF`,
//!   terminated by `0x00 0x00`

use crate::value::Value;

/// Append the memcomparable form of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
        }
        Value::Float(f) => {
            out.push(0x02);
            let bits = Value::float_bits(*f);
            let ordered = if bits & (1u64 << 63) != 0 {
                !bits
            } else {
                bits | (1u64 << 63)
            };
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            for &b in s.as_bytes() {
                out.push(b);
                if b == 0x00 {
                    out.push(0xFF);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

/// The memcomparable form of a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 10);
    for v in values {
        encode_value(v, &mut out);
    }
    out
}

/// The half-open byte range `[prefix, successor)` covering exactly the
/// keys that start with `prefix`. `None` upper bound means unbounded
/// (the prefix was all `0xFF`).
pub fn prefix_range(prefix: &[u8]) -> (Vec<u8>, Option<Vec<u8>>) {
    let mut hi = prefix.to_vec();
    while let Some(&last) = hi.last() {
        if last == 0xFF {
            hi.pop();
        } else {
            *hi.last_mut().unwrap() = last + 1;
            return (prefix.to_vec(), Some(hi));
        }
    }
    (prefix.to_vec(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probkb_support::check::prelude::*;
    use probkb_support::rng::{Rng, StdRng};

    fn enc(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_value(v, &mut out);
        out
    }

    fn random_value(rng: &mut StdRng) -> Value {
        match rng.random_range(0u32..8) {
            0 => Value::Null,
            1..=3 => Value::Int(rng.random_range(0u64..2000) as i64 - 1000),
            4 | 5 => {
                let n = rng.random_range(0u64..2000) as i64 - 1000;
                Value::Float(n as f64 / 8.0)
            }
            _ => {
                let len = rng.random_range(0u32..6) as usize;
                let s: String = (0..len)
                    .map(|_| (b'a' + rng.random_range(0u32..4) as u8) as char)
                    .collect();
                Value::str(s)
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn same_type_order_is_preserved(seed in 0u64..1_000_000) {
            use probkb_support::rng::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let a = random_value(&mut rng);
                let b = random_value(&mut rng);
                if a.data_type() != b.data_type() {
                    continue;
                }
                let (ea, eb) = (enc(&a), enc(&b));
                prop_assert_eq!(
                    a.cmp(&b),
                    ea.cmp(&eb),
                    "{:?} vs {:?} -> {:?} vs {:?}",
                    a, b, ea, eb
                );
            }
        }

        #[test]
        fn composite_keys_order_like_rows(seed in 0u64..1_000_000) {
            use probkb_support::rng::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..30 {
                // Same-type columns, like a real index.
                let a: Vec<Value> = (0..3).map(|c| match c {
                    0 => Value::Int(rng.random_range(0u32..5) as i64),
                    1 => Value::str(format!("{}", rng.random_range(0u32..4))),
                    _ => Value::Int(rng.random_range(0u32..5) as i64),
                }).collect();
                let b: Vec<Value> = (0..3).map(|c| match c {
                    0 => Value::Int(rng.random_range(0u32..5) as i64),
                    1 => Value::str(format!("{}", rng.random_range(0u32..4))),
                    _ => Value::Int(rng.random_range(0u32..5) as i64),
                }).collect();
                prop_assert_eq!(a.cmp(&b), encode_key(&a).cmp(&encode_key(&b)));
            }
        }
    }

    #[test]
    fn int_ordering_spans_sign() {
        let vals = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(enc(&Value::Int(w[0])) < enc(&Value::Int(w[1])));
        }
    }

    #[test]
    fn float_ordering_spans_sign_and_zero() {
        let vals = [f64::NEG_INFINITY, -2.5, -0.0, 0.0, 1e-300, 3.25, f64::INFINITY];
        for i in 0..vals.len() {
            for j in i + 1..vals.len() {
                let (a, b) = (enc(&Value::Float(vals[i])), enc(&Value::Float(vals[j])));
                if vals[i] == vals[j] {
                    assert_eq!(a, b); // -0.0 and 0.0 normalize together
                } else {
                    assert!(a < b, "{} !< {}", vals[i], vals[j]);
                }
            }
        }
    }

    #[test]
    fn embedded_nul_strings_order_correctly() {
        let a = Value::str("a");
        let b = Value::str("a\0b");
        let c = Value::str("ab");
        assert!(enc(&a) < enc(&b));
        assert!(enc(&b) < enc(&c));
    }

    #[test]
    fn prefix_is_byte_prefix_of_full_key() {
        let full = encode_key(&[Value::Int(7), Value::str("x"), Value::Int(9)]);
        let pre = encode_key(&[Value::Int(7), Value::str("x")]);
        assert!(full.starts_with(&pre));
    }

    #[test]
    fn prefix_range_covers_exactly_the_prefix() {
        let pre = encode_key(&[Value::Int(7)]);
        let (lo, hi) = prefix_range(&pre);
        let hi = hi.unwrap();
        let inside = encode_key(&[Value::Int(7), Value::Int(0)]);
        let below = encode_key(&[Value::Int(6), Value::Int(i64::MAX)]);
        let above = encode_key(&[Value::Int(8)]);
        assert!(lo <= inside && inside < hi);
        assert!(below < lo);
        assert!(above >= hi);
        // All-0xFF prefix → unbounded.
        assert_eq!(prefix_range(&[0xFF, 0xFF]).1, None);
    }
}
