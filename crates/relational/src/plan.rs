//! Logical query plans.
//!
//! Plans are built with a small fluent API and executed by
//! [`crate::exec::Executor`]. Grounding queries (Queries 1-i, 2-i, 3 in the
//! paper) are expressed as these plan trees.

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::value::DataType;

/// Which input of an inner hash join the hash table is built on.
///
/// The optimizer pins `Left`/`Right` from cardinality estimates; `Auto`
/// leaves the choice to the executor (stats when available, materialized
/// input sizes otherwise). Semi/anti joins always build on the right and
/// ignore this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildSide {
    /// Executor decides at runtime.
    #[default]
    Auto,
    /// Build the hash table on the left input, probe with the right.
    Left,
    /// Build the hash table on the right input, probe with the left.
    Right,
}

/// Join flavours supported by the hash join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner equi-join; output is left schema ++ right schema.
    Inner,
    /// Left rows with at least one match; output is the left schema.
    LeftSemi,
    /// Left rows with no match; output is the left schema.
    LeftAnti,
}

/// Aggregate functions for the [`Plan::Aggregate`] operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(col)` — non-null values only.
    Count(usize),
    /// `SUM(col)`.
    Sum(usize),
    /// `MIN(col)`.
    Min(usize),
    /// `MAX(col)`.
    Max(usize),
    /// `AVG(col)`.
    Avg(usize),
}

/// An aggregate expression with its output column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Build an aggregate expression.
    pub fn new(func: AggFunc, name: impl Into<String>) -> Self {
        AggExpr {
            func,
            name: name.into(),
        }
    }
}

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan a named catalog table.
    Scan {
        /// Catalog table name.
        table: String,
    },
    /// An inline table (VALUES).
    Values {
        /// The inlined rows.
        table: Table,
    },
    /// Row filter (WHERE).
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate; rows where it is truthy pass.
        predicate: Expr,
    },
    /// Projection (SELECT list). Output column types are inferred from the
    /// expressions against the input schema.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Multi-key hash equi-join.
    HashJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// Right (build) input.
        right: Box<Plan>,
        /// Key column positions on the left input.
        left_keys: Vec<usize>,
        /// Key column positions on the right input.
        right_keys: Vec<usize>,
        /// Join flavour.
        kind: JoinKind,
        /// Build-side choice for inner joins (see [`BuildSide`]).
        build: BuildSide,
    },
    /// Grouped aggregation; with an empty `group_by` produces one global row.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping key column positions.
        group_by: Vec<usize>,
        /// Aggregates to compute per group.
        aggs: Vec<AggExpr>,
    },
    /// Full-row duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Bag union of two compatible inputs (UNION ALL).
    UnionAll {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Sort ascending by key columns.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort key column positions.
        keys: Vec<usize>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row cap.
        n: usize,
    },
}

impl Plan {
    /// Scan a catalog table.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    /// Inline a table.
    pub fn values(table: Table) -> Plan {
        Plan::Values { table }
    }

    /// Apply a filter.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Apply a projection.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (e, n.to_string()))
                .collect(),
        }
    }

    /// Project columns by position, keeping their names.
    pub fn project_cols(self, cols: &[usize], names: &[&str]) -> Plan {
        let exprs = cols
            .iter()
            .zip(names.iter())
            .map(|(&c, &n)| (Expr::col(c), n.to_string()))
            .collect();
        Plan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Inner hash join.
    pub fn hash_join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        self.join(right, left_keys, right_keys, JoinKind::Inner)
    }

    /// Hash join of any kind.
    pub fn join(
        self,
        right: Plan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    ) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            kind,
            build: BuildSide::Auto,
        }
    }

    /// Grouped aggregation.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Duplicate elimination.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Bag union.
    pub fn union_all(self, right: Plan) -> Plan {
        Plan::UnionAll {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Sort ascending by the listed columns.
    pub fn sort(self, keys: Vec<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Keep the first `n` rows.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Infer the output schema of this plan given a resolver for scans.
    ///
    /// `lookup` maps a table name to its schema; the executor supplies the
    /// catalog, tests can supply a closure.
    pub fn schema(&self, lookup: &dyn Fn(&str) -> Result<Schema>) -> Result<Schema> {
        match self {
            Plan::Scan { table } => lookup(table),
            Plan::Values { table } => Ok(table.schema().clone()),
            Plan::Filter { input, .. } => input.schema(lookup),
            Plan::Project { input, exprs } => {
                let in_schema = input.schema(lookup)?;
                let mut cols = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let (dtype, nullable) = infer_expr_type(e, &in_schema)?;
                    cols.push(Column {
                        name: name.clone(),
                        dtype,
                        nullable,
                    });
                }
                Ok(Schema::new(cols))
            }
            Plan::HashJoin {
                left, right, kind, ..
            } => {
                let l = left.schema(lookup)?;
                match kind {
                    JoinKind::Inner => Ok(l.join(&right.schema(lookup)?)),
                    JoinKind::LeftSemi | JoinKind::LeftAnti => Ok(l),
                }
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(lookup)?;
                let mut cols = Vec::new();
                for &g in group_by {
                    cols.push(in_schema.column(g)?.clone());
                }
                for agg in aggs {
                    let (dtype, nullable) = match agg.func {
                        AggFunc::CountStar | AggFunc::Count(_) => (DataType::Int, false),
                        AggFunc::Sum(c) | AggFunc::Min(c) | AggFunc::Max(c) => {
                            (in_schema.column(c)?.dtype, true)
                        }
                        AggFunc::Avg(_) => (DataType::Float, true),
                    };
                    cols.push(Column {
                        name: agg.name.clone(),
                        dtype,
                        nullable,
                    });
                }
                Ok(Schema::new(cols))
            }
            Plan::Distinct { input } => input.schema(lookup),
            Plan::UnionAll { left, right } => {
                let l = left.schema(lookup)?;
                let r = right.schema(lookup)?;
                if l.width() != r.width() {
                    return Err(Error::InvalidPlan(format!(
                        "UNION ALL width mismatch: {} vs {}",
                        l.width(),
                        r.width()
                    )));
                }
                Ok(l)
            }
            Plan::Sort { input, .. } => input.schema(lookup),
            Plan::Limit { input, .. } => input.schema(lookup),
        }
    }

    /// One-line description of this node for EXPLAIN output.
    pub fn describe(&self) -> String {
        match self {
            Plan::Scan { table } => format!("Seq Scan on {table}"),
            Plan::Values { table } => format!("Values ({} rows)", table.len()),
            Plan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            Plan::Project { exprs, .. } => {
                let list: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect();
                format!("Project: {}", list.join(", "))
            }
            Plan::HashJoin {
                left_keys,
                right_keys,
                kind,
                build,
                ..
            } => {
                let kind = match kind {
                    JoinKind::Inner => "Hash Join",
                    JoinKind::LeftSemi => "Hash Semi Join",
                    JoinKind::LeftAnti => "Hash Anti Join",
                };
                let side = match build {
                    BuildSide::Auto => "",
                    BuildSide::Left => ", build=left",
                    BuildSide::Right => ", build=right",
                };
                format!("{kind} on left{left_keys:?} = right{right_keys:?}{side}")
            }
            Plan::Aggregate { group_by, aggs, .. } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                format!("HashAggregate group_by={group_by:?} aggs={names:?}")
            }
            Plan::Distinct { .. } => "HashDistinct".to_string(),
            Plan::UnionAll { .. } => "Append (UNION ALL)".to_string(),
            Plan::Sort { keys, .. } => format!("Sort by {keys:?}"),
            Plan::Limit { n, .. } => format!("Limit {n}"),
        }
    }

    /// Children of this node, for tree walks.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::Values { .. } => vec![],
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Distinct { input }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => vec![input],
            Plan::HashJoin { left, right, .. } | Plan::UnionAll { left, right } => {
                vec![left, right]
            }
        }
    }
}

/// Infer the output type and nullability of an expression over a schema.
pub fn infer_expr_type(expr: &Expr, schema: &Schema) -> Result<(DataType, bool)> {
    use crate::expr::BinOp;
    match expr {
        Expr::Col(i) => {
            let col = schema.column(*i)?;
            Ok((col.dtype, col.nullable))
        }
        Expr::Lit(v) => Ok(match v.data_type() {
            Some(dt) => (dt, false),
            None => (DataType::Int, true), // bare NULL literal: nullable int
        }),
        Expr::Not(inner) => {
            let (_, n) = infer_expr_type(inner, schema)?;
            Ok((DataType::Int, n))
        }
        Expr::IsNull(_) => Ok((DataType::Int, false)),
        Expr::Bin { op, lhs, rhs } => {
            let (lt, ln) = infer_expr_type(lhs, schema)?;
            let (rt, rn) = infer_expr_type(rhs, schema)?;
            let nullable = ln || rn;
            match op {
                BinOp::And | BinOp::Or => Ok((DataType::Int, false)),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    Ok((DataType::Int, nullable))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    if lt == DataType::Int && rt == DataType::Int {
                        Ok((DataType::Int, nullable))
                    } else {
                        Ok((DataType::Float, nullable))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn lookup_fixed(schema: Schema) -> impl Fn(&str) -> Result<Schema> {
        move |_name: &str| Ok(schema.clone())
    }

    #[test]
    fn scan_schema_resolves_via_lookup() {
        let s = Schema::ints(&["a", "b"]);
        let plan = Plan::scan("t");
        let resolved = plan.schema(&lookup_fixed(s.clone())).unwrap();
        assert_eq!(resolved, s);
    }

    #[test]
    fn project_infers_types() {
        let s = Schema::ints(&["a", "b"]);
        let plan = Plan::scan("t").project(vec![
            (Expr::col(0), "a"),
            (Expr::col(0).eq(Expr::col(1)), "eq"),
            (Expr::lit(1.5f64), "w"),
        ]);
        let out = plan.schema(&lookup_fixed(s)).unwrap();
        assert_eq!(out.names(), vec!["a", "eq", "w"]);
        assert_eq!(out.column(2).unwrap().dtype, DataType::Float);
    }

    #[test]
    fn join_schema_kinds() {
        let s = Schema::ints(&["a"]);
        let inner = Plan::scan("t").hash_join(Plan::scan("t"), vec![0], vec![0]);
        assert_eq!(inner.schema(&lookup_fixed(s.clone())).unwrap().width(), 2);
        let semi = Plan::scan("t").join(Plan::scan("t"), vec![0], vec![0], JoinKind::LeftSemi);
        assert_eq!(semi.schema(&lookup_fixed(s)).unwrap().width(), 1);
    }

    #[test]
    fn union_width_mismatch_rejected() {
        let plan = Plan::values(Table::empty(Schema::ints(&["a"])))
            .union_all(Plan::values(Table::empty(Schema::ints(&["a", "b"]))));
        let lookup = |name: &str| -> Result<Schema> { Err(Error::UnknownTable(name.into())) };
        assert!(plan.schema(&lookup).is_err());
    }

    #[test]
    fn aggregate_schema() {
        let s = Schema::ints(&["g", "v"]);
        let plan = Plan::scan("t").aggregate(
            vec![0],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Min(1), "mn"),
                AggExpr::new(AggFunc::Avg(1), "av"),
            ],
        );
        let out = plan.schema(&lookup_fixed(s)).unwrap();
        assert_eq!(out.names(), vec!["g", "n", "mn", "av"]);
        assert_eq!(out.column(3).unwrap().dtype, DataType::Float);
    }

    #[test]
    fn describe_mentions_operator() {
        assert!(Plan::scan("TPi").describe().contains("Seq Scan on TPi"));
        let t = Table::from_rows_unchecked(Schema::ints(&["a"]), vec![vec![Value::Int(1)]]);
        assert!(Plan::values(t).describe().contains("Values (1 rows)"));
    }

    #[test]
    fn children_walk() {
        let plan = Plan::scan("a").hash_join(Plan::scan("b"), vec![0], vec![0]);
        assert_eq!(plan.children().len(), 2);
        assert!(Plan::scan("a").children().is_empty());
    }
}
