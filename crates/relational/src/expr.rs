//! Scalar expressions evaluated per row: column references, literals,
//! comparisons, boolean connectives, and arithmetic.

use std::fmt;

use crate::error::{Error, Result};
use crate::table::Row;
use crate::value::Value;

/// Binary operators supported in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Equality (`=`). NULL operands yield NULL (falsy).
    Eq,
    /// Inequality (`<>`).
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND with SQL three-valued collapse to falsy on NULL.
    And,
    /// Logical OR.
    Or,
    /// Addition (Int+Int → Int, otherwise Float).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to the input row's column by position.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation; NULL stays NULL.
    Not(Box<Expr>),
    /// `IS NULL` test; never NULL itself.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(index: usize) -> Expr {
        Expr::Col(index)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, other)
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `self IS NOT NULL`.
    pub fn is_not_null(self) -> Expr {
        self.is_null().not()
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// AND-fold a list of predicates; empty list means `TRUE`.
    pub fn conjunction(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::lit(1i64),
            1 => preds.pop().expect("len checked"),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, p| acc.and(p))
            }
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Col(i) => row.get(*i).cloned().ok_or(Error::ColumnOutOfBounds {
                index: *i,
                width: row.len(),
            }),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Not(inner) => {
                let v = inner.eval(row)?;
                Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Int((!other.is_truthy()) as i64),
                })
            }
            Expr::IsNull(inner) => Ok(Value::Int(inner.eval(row)?.is_null() as i64)),
            Expr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                Expr::eval_bin(*op, l, r)
            }
        }
    }

    fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value> {
        use BinOp::*;
        match op {
            And => Ok(Value::Int((l.is_truthy() && r.is_truthy()) as i64)),
            Or => Ok(Value::Int((l.is_truthy() || r.is_truthy()) as i64)),
            Eq | Ne | Lt | Le | Gt | Ge => {
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null); // SQL: comparisons with NULL are NULL
                }
                let ord = l.cmp(&r);
                let b = match op {
                    Eq => ord.is_eq(),
                    Ne => ord.is_ne(),
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Ok(Value::Int(b as i64))
            }
            Add | Sub | Mul => {
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match (&l, &r) {
                    (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
                        Add => a.wrapping_add(*b),
                        Sub => a.wrapping_sub(*b),
                        Mul => a.wrapping_mul(*b),
                        _ => unreachable!(),
                    })),
                    _ => {
                        let a = l.as_float().ok_or_else(|| Error::TypeMismatch {
                            detail: format!("cannot apply {op} to {l}"),
                        })?;
                        let b = r.as_float().ok_or_else(|| Error::TypeMismatch {
                            detail: format!("cannot apply {op} to {r}"),
                        })?;
                        Ok(Value::Float(match op {
                            Add => a + b,
                            Sub => a - b,
                            Mul => a * b,
                            _ => unreachable!(),
                        }))
                    }
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![Value::Int(3), Value::Float(1.5), Value::Null, Value::str("a")]
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap(), Value::Int(3));
        assert_eq!(Expr::lit(7i64).eval(&row()).unwrap(), Value::Int(7));
        assert!(Expr::col(10).eval(&row()).is_err());
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert!(Expr::col(0).eq(Expr::lit(3i64)).eval(&r).unwrap().is_truthy());
        assert!(Expr::col(0).gt(Expr::lit(2i64)).eval(&r).unwrap().is_truthy());
        assert!(!Expr::col(0).lt(Expr::lit(2i64)).eval(&r).unwrap().is_truthy());
        assert!(Expr::col(0).ge(Expr::lit(3i64)).eval(&r).unwrap().is_truthy());
        assert!(Expr::col(0).le(Expr::lit(3i64)).eval(&r).unwrap().is_truthy());
        assert!(Expr::col(0).ne(Expr::lit(4i64)).eval(&r).unwrap().is_truthy());
    }

    #[test]
    fn null_comparisons_are_null_and_falsy() {
        let r = row();
        let v = Expr::col(2).eq(Expr::lit(1i64)).eval(&r).unwrap();
        assert!(v.is_null());
        assert!(!v.is_truthy());
    }

    #[test]
    fn is_null_tests() {
        let r = row();
        assert!(Expr::col(2).is_null().eval(&r).unwrap().is_truthy());
        assert!(Expr::col(0).is_not_null().eval(&r).unwrap().is_truthy());
    }

    #[test]
    fn boolean_connectives() {
        let r = row();
        let t = Expr::lit(1i64);
        let f_ = Expr::lit(0i64);
        assert!(t.clone().and(t.clone()).eval(&r).unwrap().is_truthy());
        assert!(!t.clone().and(f_.clone()).eval(&r).unwrap().is_truthy());
        assert!(t.clone().or(f_.clone()).eval(&r).unwrap().is_truthy());
        assert!(!f_.clone().not().eval(&r).unwrap().is_null());
        assert!(f_.not().eval(&r).unwrap().is_truthy());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let r = row();
        assert!(
            Expr::col(0)
                .eq(Expr::lit(3i64))
                .eval(&r)
                .unwrap()
                .is_truthy()
        );
        let add = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::col(0)),
            rhs: Box::new(Expr::lit(4i64)),
        };
        assert_eq!(add.eval(&r).unwrap(), Value::Int(7));
        let fmul = Expr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(Expr::col(1)),
            rhs: Box::new(Expr::lit(2i64)),
        };
        assert_eq!(fmul.eval(&r).unwrap(), Value::Float(3.0));
        let nadd = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::col(2)),
            rhs: Box::new(Expr::lit(1i64)),
        };
        assert!(nadd.eval(&r).unwrap().is_null());
    }

    #[test]
    fn arithmetic_on_strings_errors() {
        let r = row();
        let bad = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::col(3)),
            rhs: Box::new(Expr::lit(1i64)),
        };
        assert!(bad.eval(&r).is_err());
    }

    #[test]
    fn conjunction_folds() {
        let r = row();
        assert!(Expr::conjunction(vec![]).eval(&r).unwrap().is_truthy());
        let c = Expr::conjunction(vec![
            Expr::col(0).eq(Expr::lit(3i64)),
            Expr::col(3).eq(Expr::lit("a")),
        ]);
        assert!(c.eval(&r).unwrap().is_truthy());
    }

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::col(0).eq(Expr::lit(3i64)).and(Expr::col(1).is_null());
        assert_eq!(e.to_string(), "((#0 = 3) AND #1 IS NULL)");
    }
}
