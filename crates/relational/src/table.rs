//! In-memory tables: a schema plus a vector of rows.
//!
//! The engine is batch/set-oriented like the SQL backends in the paper:
//! every operator consumes and produces whole `Table`s. This keeps the
//! executor simple and makes per-operator timing (Figure 4) trivial.

use std::collections::HashSet;
use std::fmt;


use crate::error::Result;
use crate::schema::Schema;
use crate::value::Value;

/// A row is an ordered list of values matching a schema.
pub type Row = Vec<Value>;

/// An in-memory relation.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a table from pre-validated rows. Every row is checked against
    /// the schema; use [`Table::from_rows_unchecked`] in hot paths that
    /// construct rows mechanically.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for row in &rows {
            schema.validate_row(row)?;
        }
        Ok(Table { schema, rows })
    }

    /// Build a table without validating rows. The caller guarantees each
    /// row matches the schema (e.g. rows produced by a projection of an
    /// already-valid table).
    pub fn from_rows_unchecked(schema: Schema, rows: Vec<Row>) -> Self {
        Table { schema, rows }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to the row store (used by DELETE and motions).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Consume the table, returning its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Append a validated row.
    pub fn push(&mut self, row: Row) -> Result<()> {
        self.schema.validate_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a row without validation (hot path).
    pub fn push_unchecked(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Append all rows of `other` (bag union, `∪B` in Algorithm 1).
    /// The schemas must be compatible; only the arity is checked here.
    pub fn extend_from(&mut self, other: Table) {
        debug_assert_eq!(self.schema.width(), other.schema.width());
        self.rows.extend(other.rows);
    }

    /// Extract the key of `row` at the given column indices.
    pub fn key_of(row: &[Value], cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| row[c].clone()).collect()
    }

    /// Remove duplicate rows, comparing only the listed columns and keeping
    /// the first occurrence. Used when merging newly inferred facts into
    /// `TΠ`: two facts are the same if they agree on `(R, x, C1, y, C2)`
    /// regardless of their `I` and `w` columns.
    pub fn dedup_by_cols(&mut self, cols: &[usize]) {
        let mut seen: probkb_support::hash::FxHashSet<Vec<Value>> =
            probkb_support::hash::FxHashSet::default();
        seen.reserve(self.rows.len());
        self.rows
            .retain(|row| seen.insert(Table::key_of(row, cols)));
    }

    /// Remove full-row duplicates (SQL `DISTINCT`), keeping first occurrence.
    pub fn dedup_rows(&mut self) {
        let all: Vec<usize> = (0..self.schema.width()).collect();
        self.dedup_by_cols(&all);
    }

    /// The set of distinct keys over the listed columns.
    pub fn distinct_keys(&self, cols: &[usize]) -> HashSet<Vec<Value>> {
        self.rows
            .iter()
            .map(|row| Table::key_of(row, cols))
            .collect()
    }

    /// Retain only rows whose key over `cols` is NOT in `keys`.
    /// This implements the anti-join used by `applyConstraints` (Query 3):
    /// `DELETE FROM T WHERE (T.x, T.C1) IN (...)`.
    pub fn delete_matching(&mut self, cols: &[usize], keys: &HashSet<Vec<Value>>) -> usize {
        let before = self.rows.len();
        self.rows
            .retain(|row| !keys.contains(&Table::key_of(row, cols)));
        before - self.rows.len()
    }

    /// Sort rows by the listed columns ascending (stable).
    pub fn sort_by_cols(&mut self, cols: &[usize]) {
        self.rows
            .sort_by(|a, b| Table::key_of(a, cols).cmp(&Table::key_of(b, cols)));
    }

    /// Approximate in-memory size, used by the MPP cost model.
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>() + 24)
            .sum()
    }

    /// Render the first `limit` rows as an aligned text grid for debugging
    /// and examples.
    pub fn display_head(&self, limit: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let shown: Vec<Vec<String>> = self
            .rows
            .iter()
            .take(limit)
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, n) in names.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", n, width = widths[i]));
        }
        out.push('\n');
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if self.rows.len() > limit {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_head(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn t3(rows: Vec<Vec<i64>>) -> Table {
        let schema = Schema::ints(&["a", "b", "c"]);
        Table::from_rows_unchecked(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        )
    }

    #[test]
    fn push_validates() {
        let mut t = Table::empty(Schema::ints(&["a"]));
        assert!(t.push(vec![Value::Int(1)]).is_ok());
        assert!(t.push(vec![Value::str("x")]).is_err());
        assert!(t.push(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_rows_validates_all() {
        let schema = Schema::ints(&["a"]);
        assert!(Table::from_rows(schema.clone(), vec![vec![Value::Int(1)]]).is_ok());
        assert!(Table::from_rows(schema, vec![vec![Value::Null]]).is_err());
    }

    #[test]
    fn dedup_by_cols_keeps_first() {
        let mut t = t3(vec![vec![1, 2, 10], vec![1, 2, 20], vec![1, 3, 30]]);
        t.dedup_by_cols(&[0, 1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][2], Value::Int(10)); // first kept
    }

    #[test]
    fn delete_matching_removes_keyed_rows() {
        let mut t = t3(vec![vec![1, 2, 3], vec![4, 5, 6], vec![1, 9, 9]]);
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(1)]);
        let removed = t.delete_matching(&[0], &keys);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn sort_by_cols_orders_rows() {
        let mut t = t3(vec![vec![3, 1, 0], vec![1, 2, 0], vec![1, 1, 0]]);
        t.sort_by_cols(&[0, 1]);
        let firsts: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 1, 3]);
        assert_eq!(t.rows()[0][1], Value::Int(1));
    }

    #[test]
    fn extend_from_is_bag_union() {
        let mut a = t3(vec![vec![1, 1, 1]]);
        let b = t3(vec![vec![1, 1, 1], vec![2, 2, 2]]);
        a.extend_from(b);
        assert_eq!(a.len(), 3); // duplicates preserved
    }

    #[test]
    fn distinct_keys_collects_set() {
        let t = t3(vec![vec![1, 2, 3], vec![1, 2, 9], vec![2, 2, 0]]);
        let keys = t.distinct_keys(&[0, 1]);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn display_head_truncates() {
        let t = t3((0..30).map(|i| vec![i, i, i]).collect());
        let s = t.display_head(5);
        assert!(s.contains("(30 rows total)"));
    }

    #[test]
    fn size_bytes_nonzero_and_monotonic() {
        let small = t3(vec![vec![1, 2, 3]]);
        let big = t3(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert!(small.size_bytes() > 0);
        assert!(big.size_bytes() > small.size_bytes());
        let _ = Column::new("x", DataType::Int); // silence unused import on some cfgs
    }
}
