//! Tables: a schema plus rows, resident in memory or spilled to
//! buffer-managed pages.
//!
//! The engine is batch/set-oriented like the SQL backends in the paper:
//! every operator consumes and produces whole `Table`s. A table's rows
//! live in one of two stores:
//!
//! * **Mem** — the historical `Vec<Row>`; and
//! * **Paged** — columnar [`crate::colstore`] chunks in an ephemeral
//!   [`HeapFile`] (out-of-core), plus an in-memory tail of rows not yet
//!   filling a chunk. The catalog moves tables between stores by
//!   [`crate::spill::SpillPolicy`]; operators stream either store with
//!   [`Table::blocks`].
//!
//! **Placement never changes results.** Chunk boundaries are a pure
//! function of the row list ([`CHUNK_ROWS`]-aligned), scan order equals
//! insertion order in both stores, and `Debug`/`rows()` render
//! identically — so any fingerprint of a spilled table is byte-equal
//! to its in-memory twin, at any buffer-pool size. The few operations
//! that need random or mutable access to the whole row list
//! (`rows()`, `rows_mut()`, sort/dedup/delete) transparently
//! materialize; storage-layer corruption on that path panics rather
//! than serving damaged rows (CRC failures are unrecoverable here, like
//! lock poisoning).

use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

use probkb_pager::heap::{HeapFile, Rid};

use crate::colstore::{decode_chunk, encode_chunk, DecodedChunk, CHUNK_ROWS};
use crate::error::Result;
use crate::schema::Schema;
use crate::spill::StorageContext;
use crate::value::Value;

/// A row is an ordered list of values matching a schema.
pub type Row = Vec<Value>;

#[derive(Debug, Clone)]
struct ChunkMeta {
    rid: Rid,
    rows: u32,
}

/// The out-of-core store: encoded chunks in a heap plus a row tail.
struct PagedStore {
    ctx: Arc<StorageContext>,
    heap: Arc<HeapFile>,
    chunks: Vec<ChunkMeta>,
    /// Rows resident in `chunks` (tail rows not included).
    spilled_rows: usize,
    /// `Value::size_bytes`-based size of the spilled rows, so
    /// [`Table::size_bytes`] stays byte-equal to the Mem computation.
    spilled_bytes: usize,
    /// Rows appended since the last chunk flush.
    tail: Vec<Row>,
    /// Lazily materialized full row list (compatibility path for
    /// callers needing `&[Row]`). Reset by any mutation.
    cache: OnceLock<Vec<Row>>,
}

impl Clone for PagedStore {
    fn clone(&self) -> Self {
        // Clones share the heap (chunks are immutable once written and
        // addressed by rid, so divergent clones simply reference
        // disjoint chunk sets); the materialize cache is not cloned.
        PagedStore {
            ctx: Arc::clone(&self.ctx),
            heap: Arc::clone(&self.heap),
            chunks: self.chunks.clone(),
            spilled_rows: self.spilled_rows,
            spilled_bytes: self.spilled_bytes,
            tail: self.tail.clone(),
            cache: OnceLock::new(),
        }
    }
}

impl PagedStore {
    fn decode_at(&self, idx: usize) -> DecodedChunk {
        let meta = &self.chunks[idx];
        let bytes = self
            .heap
            .get(meta.rid)
            .unwrap_or_else(|e| panic!("spilled chunk {idx} unreadable: {e}"));
        let chunk =
            decode_chunk(&bytes).unwrap_or_else(|e| panic!("spilled chunk {idx} corrupt: {e}"));
        assert_eq!(chunk.len(), meta.rows as usize, "chunk {idx} row count drifted");
        chunk
    }

    fn materialize(&self) -> Vec<Row> {
        let mut rows = Vec::with_capacity(self.spilled_rows + self.tail.len());
        for i in 0..self.chunks.len() {
            rows.extend_from_slice(self.decode_at(i).rows());
        }
        rows.extend(self.tail.iter().cloned());
        rows
    }

    fn cached(&self) -> &Vec<Row> {
        self.cache.get_or_init(|| self.materialize())
    }

    /// Encode full chunks out of the tail (leaving `< CHUNK_ROWS`
    /// rows), keeping chunk boundaries aligned regardless of append
    /// pattern.
    fn flush_tail(&mut self) -> Result<()> {
        while self.tail.len() >= CHUNK_ROWS {
            let rest = self.tail.split_off(CHUNK_ROWS);
            let chunk: Vec<Row> = std::mem::replace(&mut self.tail, rest);
            let bytes: usize = chunk
                .iter()
                .map(|r| r.iter().map(Value::size_bytes).sum::<usize>() + 24)
                .sum();
            let rec = encode_chunk(&chunk);
            let rid = self.heap.append(&rec)?;
            self.chunks.push(ChunkMeta {
                rid,
                rows: chunk.len() as u32,
            });
            self.spilled_rows += chunk.len();
            self.spilled_bytes += bytes;
        }
        self.cache = OnceLock::new();
        Ok(())
    }
}

enum Store {
    Mem(Vec<Row>),
    Paged(PagedStore),
}

impl Clone for Store {
    fn clone(&self) -> Self {
        match self {
            Store::Mem(rows) => Store::Mem(rows.clone()),
            Store::Paged(p) => Store::Paged(p.clone()),
        }
    }
}

/// A relation, resident in memory or spilled to pages.
#[derive(Clone)]
pub struct Table {
    schema: Schema,
    store: Store,
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Must render exactly like the historical
        // `#[derive(Debug)] struct Table { schema, rows: Vec<Row> }`:
        // grounding fingerprints are this string.
        f.debug_struct("Table")
            .field("schema", &self.schema)
            .field("rows", &self.rows())
            .finish()
    }
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            store: Store::Mem(Vec::new()),
        }
    }

    /// Build a table from pre-validated rows. Every row is checked against
    /// the schema; use [`Table::from_rows_unchecked`] in hot paths that
    /// construct rows mechanically.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for row in &rows {
            schema.validate_row(row)?;
        }
        Ok(Table {
            schema,
            store: Store::Mem(rows),
        })
    }

    /// Build a table without validating rows. The caller guarantees each
    /// row matches the schema (e.g. rows produced by a projection of an
    /// already-valid table).
    pub fn from_rows_unchecked(schema: Schema, rows: Vec<Row>) -> Self {
        Table {
            schema,
            store: Store::Mem(rows),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Mem(rows) => rows.len(),
            Store::Paged(p) => p.spilled_rows + p.tail.len(),
        }
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when rows live (at least partly) on disk pages.
    pub fn is_spilled(&self) -> bool {
        matches!(self.store, Store::Paged(_))
    }

    /// Rows resident in on-disk chunks (0 for in-memory tables).
    pub fn spilled_rows(&self) -> usize {
        match &self.store {
            Store::Mem(_) => 0,
            Store::Paged(p) => p.spilled_rows,
        }
    }

    /// The rows, in insertion order. For a spilled table this
    /// materializes (and caches) the full row list — the compatibility
    /// path; streaming consumers should prefer [`Table::blocks`].
    pub fn rows(&self) -> &[Row] {
        match &self.store {
            Store::Mem(rows) => rows,
            Store::Paged(p) => p.cached(),
        }
    }

    /// Stream the rows as blocks without materializing the whole
    /// table: one borrowed slice for Mem, one decoded chunk at a time
    /// (plus the tail slice) for Paged. Block boundaries for a given
    /// row list are deterministic, and concatenating blocks always
    /// yields insertion order.
    pub fn blocks(&self) -> Blocks<'_> {
        match &self.store {
            Store::Mem(rows) => Blocks {
                state: BlocksState::Slice(Some(rows)),
            },
            Store::Paged(p) => Blocks {
                state: BlocksState::Paged {
                    store: p,
                    next_chunk: 0,
                    tail_done: false,
                },
            },
        }
    }

    /// Random access to rows by position without materializing the
    /// whole table (caches one decoded chunk at a time).
    pub fn row_reader(&self) -> RowReader<'_> {
        RowReader {
            table: self,
            cached: None,
        }
    }

    /// Mutable access to the row store (used by DELETE and motions).
    /// A spilled table is pulled back into memory first; the catalog
    /// re-spills after the mutation.
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        self.ensure_mem();
        match &mut self.store {
            Store::Mem(rows) => rows,
            Store::Paged(_) => unreachable!("ensure_mem left table paged"),
        }
    }

    /// Consume the table, returning its rows.
    pub fn into_rows(self) -> Vec<Row> {
        match self.store {
            Store::Mem(rows) => rows,
            Store::Paged(p) => p.materialize(),
        }
    }

    fn ensure_mem(&mut self) {
        if let Store::Paged(p) = &self.store {
            self.store = Store::Mem(p.materialize());
        }
    }

    /// Move the rows out of core: encode full chunks into a fresh heap
    /// file from `ctx`, keeping the sub-chunk remainder as the tail.
    /// Normally driven by the catalog's [`crate::spill::SpillPolicy`].
    pub fn spill(&mut self, ctx: &Arc<StorageContext>) -> Result<()> {
        if self.is_spilled() {
            return self.flush_tail();
        }
        let rows = match &mut self.store {
            Store::Mem(rows) => std::mem::take(rows),
            Store::Paged(_) => unreachable!(),
        };
        let mut paged = PagedStore {
            ctx: Arc::clone(ctx),
            heap: ctx.new_heap()?,
            chunks: Vec::new(),
            spilled_rows: 0,
            spilled_bytes: 0,
            tail: rows,
            cache: OnceLock::new(),
        };
        let flush = paged.flush_tail();
        match flush {
            Ok(()) => {
                self.store = Store::Paged(paged);
                Ok(())
            }
            Err(e) => {
                // Leave the table in memory, intact.
                self.store = Store::Mem(paged.materialize());
                Err(e)
            }
        }
    }

    /// Encode any full chunks accumulated in a spilled table's tail.
    /// No-op for in-memory tables.
    pub fn flush_tail(&mut self) -> Result<()> {
        if let Store::Paged(p) = &mut self.store {
            p.flush_tail()?;
        }
        Ok(())
    }

    /// Append a validated row.
    pub fn push(&mut self, row: Row) -> Result<()> {
        self.schema.validate_row(&row)?;
        self.push_unchecked(row);
        Ok(())
    }

    /// Append a row without validation (hot path).
    pub fn push_unchecked(&mut self, row: Row) {
        match &mut self.store {
            Store::Mem(rows) => rows.push(row),
            Store::Paged(p) => {
                p.tail.push(row);
                p.cache = OnceLock::new();
            }
        }
    }

    /// Append all rows of `other` (bag union, `∪B` in Algorithm 1).
    /// The schemas must be compatible; only the arity is checked here.
    pub fn extend_from(&mut self, other: Table) {
        debug_assert_eq!(self.schema.width(), other.schema.width());
        self.extend_rows(other.into_rows());
    }

    /// Append pre-validated rows in bulk. Spilled tables buffer them in
    /// the tail (no unspill), to be chunked by the next flush.
    pub fn extend_rows(&mut self, incoming: Vec<Row>) {
        match &mut self.store {
            Store::Mem(rows) => rows.extend(incoming),
            Store::Paged(p) => {
                p.tail.extend(incoming);
                p.cache = OnceLock::new();
            }
        }
    }

    /// The rows from position `start` on, when they are contiguous in
    /// memory (always for Mem; for Paged only while the suffix still
    /// sits in the tail). `None` means the suffix spans disk chunks —
    /// fall back to [`Table::rows`].
    pub fn suffix_rows(&self, start: usize) -> Option<&[Row]> {
        match &self.store {
            Store::Mem(rows) => rows.get(start..),
            Store::Paged(p) => {
                if start >= p.spilled_rows {
                    p.tail.get(start - p.spilled_rows..)
                } else {
                    None
                }
            }
        }
    }

    /// Extract the key of `row` at the given column indices.
    pub fn key_of(row: &[Value], cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| row[c].clone()).collect()
    }

    /// Remove duplicate rows, comparing only the listed columns and keeping
    /// the first occurrence. Used when merging newly inferred facts into
    /// `TΠ`: two facts are the same if they agree on `(R, x, C1, y, C2)`
    /// regardless of their `I` and `w` columns.
    pub fn dedup_by_cols(&mut self, cols: &[usize]) {
        let mut seen: probkb_support::hash::FxHashSet<Vec<Value>> =
            probkb_support::hash::FxHashSet::default();
        seen.reserve(self.len());
        self.rows_mut()
            .retain(|row| seen.insert(Table::key_of(row, cols)));
    }

    /// Remove full-row duplicates (SQL `DISTINCT`), keeping first occurrence.
    pub fn dedup_rows(&mut self) {
        let all: Vec<usize> = (0..self.schema.width()).collect();
        self.dedup_by_cols(&all);
    }

    /// The set of distinct keys over the listed columns.
    pub fn distinct_keys(&self, cols: &[usize]) -> HashSet<Vec<Value>> {
        let mut keys = HashSet::new();
        for block in self.blocks() {
            keys.extend(block.rows().iter().map(|row| Table::key_of(row, cols)));
        }
        keys
    }

    /// Retain only rows whose key over `cols` is NOT in `keys`.
    /// This implements the anti-join used by `applyConstraints` (Query 3):
    /// `DELETE FROM T WHERE (T.x, T.C1) IN (...)`.
    pub fn delete_matching(&mut self, cols: &[usize], keys: &HashSet<Vec<Value>>) -> usize {
        let before = self.len();
        self.rows_mut()
            .retain(|row| !keys.contains(&Table::key_of(row, cols)));
        before - self.len()
    }

    /// Sort rows by the listed columns ascending (stable).
    pub fn sort_by_cols(&mut self, cols: &[usize]) {
        self.rows_mut()
            .sort_by(|a, b| Table::key_of(a, cols).cmp(&Table::key_of(b, cols)));
    }

    /// Approximate in-memory size, used by the MPP cost model. Computed
    /// from logical row contents, so spilling a table never changes it
    /// (placement must not perturb planning).
    pub fn size_bytes(&self) -> usize {
        match &self.store {
            Store::Mem(rows) => rows
                .iter()
                .map(|r| r.iter().map(Value::size_bytes).sum::<usize>() + 24)
                .sum(),
            Store::Paged(p) => {
                p.spilled_bytes
                    + p.tail
                        .iter()
                        .map(|r| r.iter().map(Value::size_bytes).sum::<usize>() + 24)
                        .sum::<usize>()
            }
        }
    }

    /// Render the first `limit` rows as an aligned text grid for debugging
    /// and examples.
    pub fn display_head(&self, limit: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut shown: Vec<Vec<String>> = Vec::new();
        'outer: for block in self.blocks() {
            for r in block.rows() {
                if shown.len() >= limit {
                    break 'outer;
                }
                shown.push(r.iter().map(|v| v.to_string()).collect());
            }
        }
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, n) in names.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", n, width = widths[i]));
        }
        out.push('\n');
        for row in &shown {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        if self.len() > limit {
            out.push_str(&format!("... ({} rows total)\n", self.len()));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_head(20))
    }
}

/// One streamed block of rows; see [`Table::blocks`].
pub enum Block<'a> {
    /// A borrowed slice (Mem store, or a Paged tail).
    Slice(&'a [Row]),
    /// A chunk decoded from disk.
    Chunk(DecodedChunk),
}

impl Block<'_> {
    /// The block's rows.
    pub fn rows(&self) -> &[Row] {
        match self {
            Block::Slice(rows) => rows,
            Block::Chunk(c) => c.rows(),
        }
    }

    /// Number of rows in the block.
    pub fn len(&self) -> usize {
        match self {
            Block::Slice(rows) => rows.len(),
            Block::Chunk(c) => c.len(),
        }
    }

    /// True when the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense `u32` id column, when this block carries one (only
    /// decoded chunks of interned-id columns do).
    pub fn dense_u32(&self, col: usize) -> Option<&[u32]> {
        match self {
            Block::Slice(_) => None,
            Block::Chunk(c) => c.dense_u32(col),
        }
    }
}

enum BlocksState<'a> {
    Slice(Option<&'a [Row]>),
    Paged {
        store: &'a PagedStore,
        next_chunk: usize,
        tail_done: bool,
    },
}

/// Iterator over a table's [`Block`]s.
pub struct Blocks<'a> {
    state: BlocksState<'a>,
}

impl<'a> Iterator for Blocks<'a> {
    type Item = Block<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.state {
            BlocksState::Slice(slot) => slot.take().map(Block::Slice),
            BlocksState::Paged {
                store,
                next_chunk,
                tail_done,
            } => {
                if *next_chunk < store.chunks.len() {
                    let c = store.decode_at(*next_chunk);
                    *next_chunk += 1;
                    Some(Block::Chunk(c))
                } else if !*tail_done {
                    *tail_done = true;
                    if store.tail.is_empty() {
                        None
                    } else {
                        Some(Block::Slice(&store.tail))
                    }
                } else {
                    None
                }
            }
        }
    }
}

/// Positional row access over either store; see [`Table::row_reader`].
pub struct RowReader<'a> {
    table: &'a Table,
    cached: Option<(usize, DecodedChunk)>,
}

impl RowReader<'_> {
    /// The row at `pos` (panics when out of bounds, like slice
    /// indexing).
    pub fn row(&mut self, pos: usize) -> &Row {
        match &self.table.store {
            Store::Mem(rows) => &rows[pos],
            Store::Paged(p) => {
                if let Some(cache) = p.cache.get() {
                    return &cache[pos];
                }
                if pos >= p.spilled_rows {
                    return &p.tail[pos - p.spilled_rows];
                }
                // Chunks are CHUNK_ROWS-aligned by construction.
                let idx = pos / CHUNK_ROWS;
                if self.cached.as_ref().map(|(i, _)| *i) != Some(idx) {
                    self.cached = Some((idx, p.decode_at(idx)));
                }
                &self.cached.as_ref().unwrap().1.rows()[pos % CHUNK_ROWS]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn t3(rows: Vec<Vec<i64>>) -> Table {
        let schema = Schema::ints(&["a", "b", "c"]);
        Table::from_rows_unchecked(
            schema,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        )
    }

    fn spilled(mut t: Table) -> Table {
        let ctx = StorageContext::in_temp(32).unwrap();
        t.spill(&ctx).unwrap();
        assert!(t.is_spilled());
        t
    }

    fn big(n: i64) -> Table {
        t3((0..n).map(|i| vec![i, i % 7, i * 3]).collect())
    }

    #[test]
    fn push_validates() {
        let mut t = Table::empty(Schema::ints(&["a"]));
        assert!(t.push(vec![Value::Int(1)]).is_ok());
        assert!(t.push(vec![Value::str("x")]).is_err());
        assert!(t.push(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_rows_validates_all() {
        let schema = Schema::ints(&["a"]);
        assert!(Table::from_rows(schema.clone(), vec![vec![Value::Int(1)]]).is_ok());
        assert!(Table::from_rows(schema, vec![vec![Value::Null]]).is_err());
    }

    #[test]
    fn dedup_by_cols_keeps_first() {
        let mut t = t3(vec![vec![1, 2, 10], vec![1, 2, 20], vec![1, 3, 30]]);
        t.dedup_by_cols(&[0, 1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][2], Value::Int(10)); // first kept
    }

    #[test]
    fn delete_matching_removes_keyed_rows() {
        let mut t = t3(vec![vec![1, 2, 3], vec![4, 5, 6], vec![1, 9, 9]]);
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(1)]);
        let removed = t.delete_matching(&[0], &keys);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn sort_by_cols_orders_rows() {
        let mut t = t3(vec![vec![3, 1, 0], vec![1, 2, 0], vec![1, 1, 0]]);
        t.sort_by_cols(&[0, 1]);
        let firsts: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![1, 1, 3]);
        assert_eq!(t.rows()[0][1], Value::Int(1));
    }

    #[test]
    fn extend_from_is_bag_union() {
        let mut a = t3(vec![vec![1, 1, 1]]);
        let b = t3(vec![vec![1, 1, 1], vec![2, 2, 2]]);
        a.extend_from(b);
        assert_eq!(a.len(), 3); // duplicates preserved
    }

    #[test]
    fn distinct_keys_collects_set() {
        let t = t3(vec![vec![1, 2, 3], vec![1, 2, 9], vec![2, 2, 0]]);
        let keys = t.distinct_keys(&[0, 1]);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn display_head_truncates() {
        let t = t3((0..30).map(|i| vec![i, i, i]).collect());
        let s = t.display_head(5);
        assert!(s.contains("(30 rows total)"));
    }

    #[test]
    fn size_bytes_nonzero_and_monotonic() {
        let small = t3(vec![vec![1, 2, 3]]);
        let big = t3(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert!(small.size_bytes() > 0);
        assert!(big.size_bytes() > small.size_bytes());
        let _ = Column::new("x", DataType::Int); // silence unused import on some cfgs
    }

    // ---- spilled-store behavior ----

    #[test]
    fn spill_preserves_rows_len_and_debug() {
        let mem = big(10_000);
        let sp = spilled(mem.clone());
        assert_eq!(sp.len(), mem.len());
        assert!(sp.spilled_rows() > 0);
        assert!(sp.spilled_rows() % CHUNK_ROWS == 0, "unaligned chunks");
        assert_eq!(sp.rows(), mem.rows());
        assert_eq!(format!("{:?}", sp), format!("{:?}", mem));
        assert_eq!(sp.size_bytes(), mem.size_bytes());
    }

    #[test]
    fn blocks_concatenate_to_insertion_order() {
        let mem = big(9000);
        let sp = spilled(mem.clone());
        let mut streamed: Vec<Row> = Vec::new();
        let mut nblocks = 0;
        for b in sp.blocks() {
            streamed.extend_from_slice(b.rows());
            nblocks += 1;
        }
        assert!(nblocks >= 3, "9000 rows should stream in multiple blocks");
        assert_eq!(streamed.as_slice(), mem.rows());
        // Mem tables stream as exactly one block.
        assert_eq!(mem.blocks().count(), 1);
    }

    #[test]
    fn spilled_chunks_carry_dense_ids() {
        let sp = spilled(big(CHUNK_ROWS as i64 * 2));
        let mut saw_chunk = false;
        for b in sp.blocks() {
            if let Block::Chunk(_) = b {
                saw_chunk = true;
                assert!(b.dense_u32(0).is_some(), "id column not dense");
            }
        }
        assert!(saw_chunk);
    }

    #[test]
    fn pushes_after_spill_land_in_tail_then_flush() {
        let mut t = spilled(big(CHUNK_ROWS as i64));
        assert_eq!(t.spilled_rows(), CHUNK_ROWS);
        for i in 0..CHUNK_ROWS as i64 + 10 {
            t.push_unchecked(vec![Value::Int(i), Value::Int(0), Value::Int(0)]);
        }
        assert_eq!(t.len(), 2 * CHUNK_ROWS + 10);
        assert_eq!(t.spilled_rows(), CHUNK_ROWS); // not yet flushed
        t.flush_tail().unwrap();
        assert_eq!(t.spilled_rows(), 2 * CHUNK_ROWS);
        let rows = t.rows();
        assert_eq!(rows.len(), 2 * CHUNK_ROWS + 10);
        assert_eq!(rows[2 * CHUNK_ROWS + 9][0], Value::Int(CHUNK_ROWS as i64 + 9));
    }

    #[test]
    fn mutation_unspills_and_preserves_semantics() {
        let mem = {
            let mut t = big(6000);
            let mut keys = HashSet::new();
            keys.insert(vec![Value::Int(3)]);
            t.delete_matching(&[1], &keys);
            t.sort_by_cols(&[1, 0]);
            t
        };
        let mut sp = spilled(big(6000));
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(3)]);
        sp.delete_matching(&[1], &keys);
        sp.sort_by_cols(&[1, 0]);
        assert!(!sp.is_spilled(), "mutation should unspill");
        assert_eq!(sp.rows(), mem.rows());
    }

    #[test]
    fn row_reader_matches_rows() {
        let mem = big(9500);
        let sp = spilled(mem.clone());
        let mut rd = sp.row_reader();
        for pos in [0usize, 1, 4095, 4096, 8191, 8192, 9499] {
            assert_eq!(rd.row(pos), &mem.rows()[pos], "pos {pos}");
        }
        // Backwards too (cache replacement).
        for pos in [9000usize, 100, 5000, 4000] {
            assert_eq!(rd.row(pos), &mem.rows()[pos], "pos {pos}");
        }
    }

    #[test]
    fn clone_of_spilled_table_is_independent() {
        let sp = spilled(big(5000));
        let mut clone = sp.clone();
        clone.push_unchecked(vec![Value::Int(-1), Value::Int(-1), Value::Int(-1)]);
        clone.flush_tail().unwrap();
        assert_eq!(clone.len(), 5001);
        assert_eq!(sp.len(), 5000);
        assert_eq!(sp.rows().len(), 5000);
    }

    #[test]
    fn into_rows_materializes_spilled() {
        let mem = big(4500);
        let sp = spilled(mem.clone());
        assert_eq!(sp.into_rows(), mem.into_rows());
    }
}
