//! A named-table catalog with interior mutability.
//!
//! Tables are stored behind `Arc` so scans are zero-copy snapshots; the
//! MPP layer gives each segment its own `Catalog`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use probkb_support::sync::RwLock;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;

/// A collection of named tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. Errors if the name is taken.
    pub fn create(&self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        let mut guard = self.tables.write();
        if guard.contains_key(&name) {
            return Err(Error::AlreadyExists(name));
        }
        guard.insert(name, Arc::new(table));
        Ok(())
    }

    /// Register or overwrite a table.
    pub fn create_or_replace(&self, name: impl Into<String>, table: Table) {
        self.tables.write().insert(name.into(), Arc::new(table));
    }

    /// Fetch a table snapshot.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// The schema of a named table.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        Ok(self.get(name)?.schema().clone())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().remove(name).is_some()
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// All table names, sorted for deterministic output.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Row count of a named table.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        Ok(self.get(name)?.len())
    }

    /// Append rows to a table (INSERT). Rows are validated.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let table = Arc::make_mut(slot);
        let n = rows.len();
        for row in rows {
            table.push(row)?;
        }
        Ok(n)
    }

    /// Append rows without validation (hot path for grounding merges).
    pub fn insert_rows_unchecked(&self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let table = Arc::make_mut(slot);
        let n = rows.len();
        table.rows_mut().extend(rows);
        Ok(n)
    }

    /// Delete rows whose key over `cols` appears in `keys`; returns the
    /// number of deleted rows. This is the `DELETE ... WHERE (..) IN (..)`
    /// used by Query 3 (`applyConstraints`).
    pub fn delete_matching(
        &self,
        name: &str,
        cols: &[usize],
        keys: &HashSet<Vec<Value>>,
    ) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        Ok(Arc::make_mut(slot).delete_matching(cols, keys))
    }

    /// Deduplicate a table in place over the listed columns.
    pub fn dedup_table(&self, name: &str, cols: &[usize]) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let table = Arc::make_mut(slot);
        let before = table.len();
        table.dedup_by_cols(cols);
        Ok(before - table.len())
    }

    /// Total approximate bytes across all tables.
    pub fn size_bytes(&self) -> usize {
        self.tables.read().values().map(|t| t.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<i64>) -> Table {
        Table::from_rows_unchecked(
            Schema::ints(&["a"]),
            rows.into_iter().map(|v| vec![Value::Int(v)]).collect(),
        )
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 2])).unwrap();
        assert!(cat.contains("t"));
        assert_eq!(cat.row_count("t").unwrap(), 2);
        assert!(matches!(
            cat.create("t", table(vec![])),
            Err(Error::AlreadyExists(_))
        ));
        assert!(cat.drop_table("t"));
        assert!(!cat.drop_table("t"));
        assert!(matches!(cat.get("t"), Err(Error::UnknownTable(_))));
    }

    #[test]
    fn snapshots_are_immutable_under_inserts() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1])).unwrap();
        let snap = cat.get("t").unwrap();
        cat.insert_rows("t", vec![vec![Value::Int(2)]]).unwrap();
        assert_eq!(snap.len(), 1); // old snapshot unchanged
        assert_eq!(cat.row_count("t").unwrap(), 2);
    }

    #[test]
    fn insert_validates() {
        let cat = Catalog::new();
        cat.create("t", table(vec![])).unwrap();
        assert!(cat.insert_rows("t", vec![vec![Value::str("x")]]).is_err());
        assert!(cat.insert_rows("missing", vec![]).is_err());
    }

    #[test]
    fn delete_matching_applies_keys() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 2, 3, 1])).unwrap();
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(1)]);
        let removed = cat.delete_matching("t", &[0], &keys).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(cat.row_count("t").unwrap(), 2);
    }

    #[test]
    fn dedup_table_counts_removed() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 1, 2])).unwrap();
        assert_eq!(cat.dedup_table("t", &[0]).unwrap(), 1);
        assert_eq!(cat.row_count("t").unwrap(), 2);
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.create("b", table(vec![])).unwrap();
        cat.create("a", table(vec![])).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
