//! A named-table catalog with interior mutability.
//!
//! Tables are stored behind `Arc` so scans are zero-copy snapshots; the
//! MPP layer gives each segment its own `Catalog`.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use probkb_support::sync::RwLock;

use crate::btree_index::BTreeIndex;
use crate::colstore::CHUNK_ROWS;
use crate::error::{Error, Result};
use crate::index::HashIndex;
use crate::schema::Schema;
use crate::spill::{process_default, SpillPolicy};
use crate::stats::TableStats;
use crate::table::{Row, Table};
use crate::value::Value;

/// A collection of named tables.
///
/// Alongside the tables themselves the catalog maintains planner
/// statistics ([`TableStats`]): computed lazily on first use (or via
/// [`Catalog::analyze`]), updated incrementally on inserts, and
/// invalidated by deletes and table replacement so they rebuild fresh.
///
/// It also holds secondary [`HashIndex`]es ([`Catalog::build_index`])
/// and disk-resident [`BTreeIndex`]es ([`Catalog::build_btree_index`]):
/// the executor probes a matching index instead of re-hashing a large
/// build side on every join over the same table. Indexes are maintained
/// incrementally by the append entry points and dropped by any mutation
/// that rewrites or removes rows, so a cached index is never stale.
///
/// When a [`SpillPolicy`] is active (the process default from
/// `PROBKB_SPILL_ROWS`, or one set via [`Catalog::set_spill_policy`]),
/// every mutation entry point re-evaluates the table's placement: tables
/// at or above the row threshold move out of core, and spilled tables
/// flush full chunks from their tails. Placement never changes results.
#[derive(Debug)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    stats: RwLock<HashMap<String, Arc<TableStats>>>,
    indexes: RwLock<HashMap<String, Vec<Arc<HashIndex>>>>,
    btree_indexes: RwLock<HashMap<String, Vec<Arc<BTreeIndex>>>>,
    spill: RwLock<Option<SpillPolicy>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog, adopting the process-default spill policy.
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            stats: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            btree_indexes: RwLock::new(HashMap::new()),
            spill: RwLock::new(process_default()),
        }
    }

    /// The catalog's spill policy, if any.
    pub fn spill_policy(&self) -> Option<SpillPolicy> {
        self.spill.read().clone()
    }

    /// Replace the catalog's spill policy (`None` keeps every table in
    /// memory from now on; already-spilled tables stay spilled).
    pub fn set_spill_policy(&self, policy: Option<SpillPolicy>) {
        *self.spill.write() = policy;
    }

    /// Re-evaluate one table's placement under the current policy:
    /// spill it when it crossed the threshold, or flush full chunks out
    /// of a spilled table's tail. Spill failures are non-fatal — the
    /// table simply stays (correct) in memory.
    fn maybe_spill(&self, name: &str) {
        let Some(policy) = self.spill_policy() else {
            return;
        };
        let mut guard = self.tables.write();
        let Some(slot) = guard.get_mut(name) else {
            return;
        };
        if slot.is_spilled() {
            if slot.len() - slot.spilled_rows() >= CHUNK_ROWS {
                let _ = Arc::make_mut(slot).flush_tail();
            }
        } else if slot.len() >= policy.threshold_rows {
            let _ = Arc::make_mut(slot).spill(&policy.ctx);
        }
    }

    /// Register a table. Errors if the name is taken.
    pub fn create(&self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        let mut guard = self.tables.write();
        if guard.contains_key(&name) {
            return Err(Error::AlreadyExists(name));
        }
        guard.insert(name.clone(), Arc::new(table));
        drop(guard);
        self.stats.write().remove(&name);
        self.indexes.write().remove(&name);
        self.btree_indexes.write().remove(&name);
        self.maybe_spill(&name);
        Ok(())
    }

    /// Register or overwrite a table.
    pub fn create_or_replace(&self, name: impl Into<String>, table: Table) {
        let name = name.into();
        self.tables.write().insert(name.clone(), Arc::new(table));
        self.stats.write().remove(&name);
        self.indexes.write().remove(&name);
        self.btree_indexes.write().remove(&name);
        self.maybe_spill(&name);
    }

    /// Fetch a table snapshot.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// The schema of a named table.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        Ok(self.get(name)?.schema().clone())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self.tables.write().remove(name).is_some();
        self.stats.write().remove(name);
        self.indexes.write().remove(name);
        self.btree_indexes.write().remove(name);
        existed
    }

    /// True if a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// All table names, sorted for deterministic output.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Row count of a named table.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        Ok(self.get(name)?.len())
    }

    /// Append rows to a table (INSERT). Rows are validated.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let table = Arc::make_mut(slot);
        let start = table.len();
        let mut outcome = Ok(rows.len());
        for row in rows {
            if let Err(e) = table.push(row) {
                outcome = Err(e);
                break;
            }
        }
        let snapshot = Arc::clone(slot);
        drop(guard);
        self.bump_stats(name, &snapshot, start);
        self.bump_indexes(name, &snapshot, start);
        self.maybe_spill(name);
        outcome
    }

    /// Append rows without validation (hot path for grounding merges).
    pub fn insert_rows_unchecked(&self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let table = Arc::make_mut(slot);
        let start = table.len();
        let n = rows.len();
        table.extend_rows(rows);
        let snapshot = Arc::clone(slot);
        drop(guard);
        self.bump_stats(name, &snapshot, start);
        self.bump_indexes(name, &snapshot, start);
        self.maybe_spill(name);
        Ok(n)
    }

    /// Bulk-append every row of `delta` to a table — the incremental-
    /// expansion merge path (`TΠ ← TΠ ∪ Δ`). Schema widths must agree.
    ///
    /// Like [`Catalog::insert_rows`], cached planner statistics are bumped
    /// incrementally with exactly the appended rows, so a post-delta
    /// EXPLAIN sees the new cardinalities instead of reordering joins from
    /// stale pre-delta estimates.
    pub fn append_table(&self, name: &str, delta: &Table) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        if slot.schema().width() != delta.schema().width() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "append_table({name}): width {} vs delta width {}",
                    slot.schema().width(),
                    delta.schema().width()
                ),
            });
        }
        let table = Arc::make_mut(slot);
        let start = table.len();
        let mut incoming = Vec::with_capacity(delta.len());
        for block in delta.blocks() {
            incoming.extend_from_slice(block.rows());
        }
        table.extend_rows(incoming);
        let snapshot = Arc::clone(slot);
        drop(guard);
        self.bump_stats(name, &snapshot, start);
        self.bump_indexes(name, &snapshot, start);
        self.maybe_spill(name);
        Ok(delta.len())
    }

    /// Delete rows whose key over `cols` appears in `keys`; returns the
    /// number of deleted rows. This is the `DELETE ... WHERE (..) IN (..)`
    /// used by Query 3 (`applyConstraints`).
    pub fn delete_matching(
        &self,
        name: &str,
        cols: &[usize],
        keys: &HashSet<Vec<Value>>,
    ) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let removed = Arc::make_mut(slot).delete_matching(cols, keys);
        drop(guard);
        if removed > 0 {
            self.stats.write().remove(name);
            self.indexes.write().remove(name);
            self.btree_indexes.write().remove(name);
        }
        // The delete pulled a spilled table back into memory; re-spill.
        self.maybe_spill(name);
        Ok(removed)
    }

    /// Deduplicate a table in place over the listed columns.
    pub fn dedup_table(&self, name: &str, cols: &[usize]) -> Result<usize> {
        let mut guard = self.tables.write();
        let slot = guard
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_string()))?;
        let table = Arc::make_mut(slot);
        let before = table.len();
        table.dedup_by_cols(cols);
        let removed = before - table.len();
        drop(guard);
        if removed > 0 {
            self.stats.write().remove(name);
            self.indexes.write().remove(name);
            self.btree_indexes.write().remove(name);
        }
        self.maybe_spill(name);
        Ok(removed)
    }

    /// Total approximate bytes across all tables.
    pub fn size_bytes(&self) -> usize {
        self.tables.read().values().map(|t| t.size_bytes()).sum()
    }

    /// Planner statistics for a named table, computed on first use and
    /// cached until the table shrinks or is replaced. Returns `None` for
    /// unknown tables.
    pub fn stats_of(&self, name: &str) -> Option<Arc<TableStats>> {
        if let Some(stats) = self.stats.read().get(name) {
            return Some(Arc::clone(stats));
        }
        let table = self.get(name).ok()?;
        let stats = Arc::new(TableStats::analyze(&table));
        self.stats
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&stats));
        Some(stats)
    }

    /// Recompute statistics for a named table from scratch (the explicit
    /// `ANALYZE` entry point).
    pub fn analyze(&self, name: &str) -> Result<Arc<TableStats>> {
        self.analyze_parallel(name, 1)
    }

    /// Install planner statistics for a table without scanning it.
    ///
    /// This is a planner *hint* for callers that already hold statistics
    /// describing the table well enough — e.g. a derived table that is a
    /// large subset of an analyzed base table, where re-analyzing would
    /// cost more than every query against it. Statistics only steer join
    /// ordering and build-side choice, never result correctness.
    pub fn set_stats(&self, name: &str, stats: Arc<TableStats>) {
        self.stats.write().insert(name.to_string(), stats);
    }

    /// [`Catalog::analyze`] on up to `threads` workers. Statistics are
    /// count-based and merged per chunk, so the result is identical to
    /// the serial analyze at any thread count.
    pub fn analyze_parallel(&self, name: &str, threads: usize) -> Result<Arc<TableStats>> {
        let table = self.get(name)?;
        let stats = Arc::new(TableStats::analyze_parallel(&table, threads));
        self.stats
            .write()
            .insert(name.to_string(), Arc::clone(&stats));
        Ok(stats)
    }

    /// Build (or rebuild) a secondary hash index over `key_cols` of a
    /// named table, on up to `threads` workers. The index is cached for
    /// [`Catalog::index_on`] / the executor's index-join path, maintained
    /// incrementally by appends, and dropped by destructive mutations.
    ///
    /// The executor canonicalizes a join's key columns to ascending order
    /// before looking for an index (equality conjunctions are
    /// order-insensitive), so pass `key_cols` ascending for it to match.
    pub fn build_index(
        &self,
        name: &str,
        key_cols: &[usize],
        threads: usize,
    ) -> Result<Arc<HashIndex>> {
        let table = self.get(name)?;
        if let Some(c) = key_cols.iter().find(|&&c| c >= table.schema().width()) {
            return Err(Error::InvalidPlan(format!(
                "build_index({name}): key column {c} out of range"
            )));
        }
        let index = Arc::new(HashIndex::build_parallel(&table, key_cols, threads));
        let mut guard = self.indexes.write();
        let list = guard.entry(name.to_string()).or_default();
        list.retain(|idx| idx.key_cols() != key_cols);
        list.push(Arc::clone(&index));
        Ok(index)
    }

    /// Install a pre-built index over a named table — the warm-start path
    /// for callers that computed an equivalent index ahead of time (e.g. a
    /// delta session indexing its base closure off the update critical
    /// path). The caller asserts the index matches what
    /// [`Catalog::build_index`] would produce for the current snapshot;
    /// row count and key-column range are checked here, and debug builds
    /// verify full equality against a fresh build.
    pub fn install_index(&self, name: &str, index: Arc<HashIndex>) -> Result<()> {
        let table = self.get(name)?;
        if let Some(c) = index
            .key_cols()
            .iter()
            .find(|&&c| c >= table.schema().width())
        {
            return Err(Error::InvalidPlan(format!(
                "install_index({name}): key column {c} out of range"
            )));
        }
        if index.rows_indexed() != table.len() {
            return Err(Error::InvalidPlan(format!(
                "install_index({name}): index covers {} rows, table has {}",
                index.rows_indexed(),
                table.len()
            )));
        }
        debug_assert_eq!(
            *index,
            HashIndex::build(&table, index.key_cols()),
            "install_index({name}): installed index diverges from a fresh build"
        );
        let mut guard = self.indexes.write();
        let list = guard.entry(name.to_string()).or_default();
        list.retain(|idx| idx.key_cols() != index.key_cols());
        list.push(index);
        Ok(())
    }

    /// The cached index of a table over exactly these key columns (same
    /// order), if one was built. Cached indexes are never stale: appends
    /// maintain them in place and every other mutation drops them.
    pub fn index_on(&self, name: &str, key_cols: &[usize]) -> Option<Arc<HashIndex>> {
        self.indexes
            .read()
            .get(name)?
            .iter()
            .find(|idx| idx.key_cols() == key_cols)
            .cloned()
    }

    /// Drop every cached index of a named table.
    pub fn drop_indexes(&self, name: &str) {
        self.indexes.write().remove(name);
    }

    /// Build (or rebuild) a disk-resident B-tree index over `key_cols`
    /// of a named table, with pages drawn from the catalog's spill
    /// context (or `ctx` when given explicitly). Cached like hash
    /// indexes: maintained by appends, dropped by destructive
    /// mutations. Requires a spill policy unless `ctx` is provided.
    pub fn build_btree_index(&self, name: &str, key_cols: &[usize]) -> Result<Arc<BTreeIndex>> {
        let Some(policy) = self.spill_policy() else {
            return Err(Error::Storage(format!(
                "build_btree_index({name}): no spill policy / storage context configured"
            )));
        };
        let table = self.get(name)?;
        if let Some(c) = key_cols.iter().find(|&&c| c >= table.schema().width()) {
            return Err(Error::InvalidPlan(format!(
                "build_btree_index({name}): key column {c} out of range"
            )));
        }
        let index = Arc::new(BTreeIndex::build(&policy.ctx, &table, key_cols)?);
        let mut guard = self.btree_indexes.write();
        let list = guard.entry(name.to_string()).or_default();
        list.retain(|idx| idx.key_cols() != key_cols);
        list.push(Arc::clone(&index));
        Ok(index)
    }

    /// The cached B-tree index of a table over exactly these key
    /// columns, if one was built.
    pub fn btree_index_on(&self, name: &str, key_cols: &[usize]) -> Option<Arc<BTreeIndex>> {
        self.btree_indexes
            .read()
            .get(name)?
            .iter()
            .find(|idx| idx.key_cols() == key_cols)
            .cloned()
    }

    /// Fold rows `start..` of `snapshot` into every cached index of the
    /// table, keeping them consistent across append-only growth.
    fn bump_indexes(&self, name: &str, snapshot: &Table, start: usize) {
        if snapshot.len() <= start {
            return;
        }
        self.bump_btree_indexes(name, snapshot, start);
        let mut guard = self.indexes.write();
        let Some(list) = guard.get_mut(name) else {
            return;
        };
        if list.len() <= 1 || snapshot.len() - start < 4096 {
            for idx in list {
                Arc::make_mut(idx).extend_from(snapshot, start);
            }
            return;
        }
        // Large append over several indexes: each index folds the suffix
        // in on its own scoped thread. The indexes are disjoint, so this
        // is bit-identical to the serial loop.
        std::thread::scope(|scope| {
            for idx in list.iter_mut() {
                let idx = Arc::make_mut(idx);
                scope.spawn(move || idx.extend_from(snapshot, start));
            }
        });
    }

    /// Same, for the disk-resident B-tree indexes. An index whose
    /// incremental fold fails (storage error) is dropped rather than
    /// left stale — the executor then falls back to other strategies.
    fn bump_btree_indexes(&self, name: &str, snapshot: &Table, start: usize) {
        let mut guard = self.btree_indexes.write();
        let Some(list) = guard.get_mut(name) else {
            return;
        };
        list.retain(|idx| idx.extend_from(snapshot, start).is_ok());
        if list.is_empty() {
            guard.remove(name);
        }
    }

    /// Incrementally fold rows `start..` of `snapshot` into cached stats.
    /// A cache miss stays a miss — the next [`Catalog::stats_of`] will
    /// analyze the whole table anyway.
    fn bump_stats(&self, name: &str, snapshot: &Table, start: usize) {
        if snapshot.len() <= start {
            return;
        }
        if let Entry::Occupied(mut entry) = self.stats.write().entry(name.to_string()) {
            let stats = Arc::make_mut(entry.get_mut());
            // Appends land in the in-memory tail, so the suffix is
            // normally borrowable without materializing spilled chunks.
            let materialized;
            let suffix = match snapshot.suffix_rows(start) {
                Some(s) => s,
                None => {
                    materialized = snapshot.rows();
                    &materialized[start..]
                }
            };
            if suffix.len() < 4096 {
                stats.add_rows(suffix);
            } else {
                // Large append: analyze the suffix in parallel and merge —
                // counts are additive, so this matches add_rows exactly.
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                let partial =
                    TableStats::analyze_rows_parallel(suffix, snapshot.schema().width(), threads);
                stats.merge(&partial);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<i64>) -> Table {
        Table::from_rows_unchecked(
            Schema::ints(&["a"]),
            rows.into_iter().map(|v| vec![Value::Int(v)]).collect(),
        )
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 2])).unwrap();
        assert!(cat.contains("t"));
        assert_eq!(cat.row_count("t").unwrap(), 2);
        assert!(matches!(
            cat.create("t", table(vec![])),
            Err(Error::AlreadyExists(_))
        ));
        assert!(cat.drop_table("t"));
        assert!(!cat.drop_table("t"));
        assert!(matches!(cat.get("t"), Err(Error::UnknownTable(_))));
    }

    #[test]
    fn snapshots_are_immutable_under_inserts() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1])).unwrap();
        let snap = cat.get("t").unwrap();
        cat.insert_rows("t", vec![vec![Value::Int(2)]]).unwrap();
        assert_eq!(snap.len(), 1); // old snapshot unchanged
        assert_eq!(cat.row_count("t").unwrap(), 2);
    }

    #[test]
    fn insert_validates() {
        let cat = Catalog::new();
        cat.create("t", table(vec![])).unwrap();
        assert!(cat.insert_rows("t", vec![vec![Value::str("x")]]).is_err());
        assert!(cat.insert_rows("missing", vec![]).is_err());
    }

    #[test]
    fn delete_matching_applies_keys() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 2, 3, 1])).unwrap();
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(1)]);
        let removed = cat.delete_matching("t", &[0], &keys).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(cat.row_count("t").unwrap(), 2);
    }

    #[test]
    fn dedup_table_counts_removed() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 1, 2])).unwrap();
        assert_eq!(cat.dedup_table("t", &[0]).unwrap(), 1);
        assert_eq!(cat.row_count("t").unwrap(), 2);
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.create("b", table(vec![])).unwrap();
        cat.create("a", table(vec![])).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn stats_computed_on_first_use_and_bumped_on_insert() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 2, 2])).unwrap();
        let s = cat.stats_of("t").unwrap();
        assert_eq!(s.row_count(), 3);
        assert_eq!(s.column(0).unwrap().distinct_count(), 2);
        // Inserts refresh the cached stats incrementally.
        cat.insert_rows("t", vec![vec![Value::Int(3)]]).unwrap();
        let s = cat.stats_of("t").unwrap();
        assert_eq!(s.row_count(), 4);
        assert_eq!(s.column(0).unwrap().distinct_count(), 3);
        assert!(cat.stats_of("missing").is_none());
    }

    #[test]
    fn append_table_bumps_cached_stats() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 2])).unwrap();
        // Warm the stats cache, then append a delta table in bulk.
        assert_eq!(cat.stats_of("t").unwrap().row_count(), 2);
        let appended = cat.append_table("t", &table(vec![2, 3, 4])).unwrap();
        assert_eq!(appended, 3);
        assert_eq!(cat.row_count("t").unwrap(), 5);
        let s = cat.stats_of("t").unwrap();
        assert_eq!(s.row_count(), 5);
        assert_eq!(s.column(0).unwrap().distinct_count(), 4);
        // Width mismatch and unknown tables are rejected.
        let wide = Table::from_rows_unchecked(
            Schema::ints(&["a", "b"]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
        assert!(cat.append_table("t", &wide).is_err());
        assert!(cat.append_table("missing", &table(vec![1])).is_err());
    }

    #[test]
    fn stats_never_go_stale_after_delete_or_replace() {
        let cat = Catalog::new();
        cat.create("t", table(vec![1, 1, 2, 3])).unwrap();
        assert_eq!(cat.stats_of("t").unwrap().row_count(), 4);
        let mut keys = HashSet::new();
        keys.insert(vec![Value::Int(1)]);
        cat.delete_matching("t", &[0], &keys).unwrap();
        let s = cat.stats_of("t").unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.column(0).unwrap().distinct_count(), 2);
        cat.create_or_replace("t", table(vec![9]));
        assert_eq!(cat.stats_of("t").unwrap().row_count(), 1);
        cat.dedup_table("t", &[0]).unwrap(); // no rows removed: cache kept
        assert_eq!(cat.stats_of("t").unwrap().row_count(), 1);
        assert!(cat.drop_table("t"));
        assert!(cat.stats_of("t").is_none());
    }

    #[test]
    fn explicit_analyze_rebuilds_from_scratch() {
        let cat = Catalog::new();
        cat.create("t", table(vec![])).unwrap();
        // Edge cases: empty table, then single row, then all-duplicates.
        assert_eq!(cat.stats_of("t").unwrap().row_count(), 0);
        cat.insert_rows("t", vec![vec![Value::Int(5)]]).unwrap();
        assert_eq!(cat.analyze("t").unwrap().row_count(), 1);
        cat.insert_rows("t", vec![vec![Value::Int(5)], vec![Value::Int(5)]])
            .unwrap();
        let s = cat.analyze("t").unwrap();
        assert_eq!(s.row_count(), 3);
        assert_eq!(s.column(0).unwrap().distinct_count(), 1);
        assert!(cat.analyze("missing").is_err());
    }
}
