//! Hash indexes over table columns.
//!
//! Grounding repeatedly probes `TΠ` by `(R, C1, C2)`-style keys; a hash
//! index amortizes that across iterations. Indexes are built over a table
//! snapshot and are invalidated by replacing them after mutations (the
//! grounding driver rebuilds per iteration, matching how the paper's SQL
//! engine re-plans each batch query).

use probkb_support::hash::{fx_map_with_capacity, FxHashMap};
use probkb_support::sync::map_chunks;

use crate::table::{Row, Table};
use crate::value::Value;

/// A hash index mapping key tuples to row positions in a table snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: FxHashMap<Vec<Value>, Vec<usize>>,
    rows_indexed: usize,
}

impl HashIndex {
    /// Build an index over `table` keyed by `key_cols`. Rows with NULL in
    /// any key column are excluded (they can never equi-match).
    pub fn build(table: &Table, key_cols: &[usize]) -> Self {
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = fx_map_with_capacity(table.len());
        let mut i = 0usize;
        for block in table.blocks() {
            for row in block.rows() {
                let key = Table::key_of(row, key_cols);
                if !key.iter().any(Value::is_null) {
                    map.entry(key).or_default().push(i);
                }
                i += 1;
            }
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
            rows_indexed: table.len(),
        }
    }

    /// Build an index on up to `threads` workers: each worker indexes a
    /// contiguous row chunk (global row positions), and chunk maps are
    /// merged in chunk order — so every key's posting list stays in
    /// ascending row order and the result is identical to
    /// [`HashIndex::build`].
    pub fn build_parallel(table: &Table, key_cols: &[usize], threads: usize) -> Self {
        if threads <= 1 || table.len() < 2 {
            return HashIndex::build(table, key_cols);
        }
        let indices: Vec<usize> = (0..table.len()).collect();
        let partials: Vec<FxHashMap<Vec<Value>, Vec<usize>>> =
            map_chunks(&indices, threads, |_, part| {
                let mut map: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
                for &i in part {
                    let key = Table::key_of(&table.rows()[i], key_cols);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    map.entry(key).or_default().push(i);
                }
                vec![map]
            });
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = fx_map_with_capacity(table.len());
        for partial in partials {
            for (key, rows) in partial {
                map.entry(key).or_default().extend(rows);
            }
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
            rows_indexed: table.len(),
        }
    }

    /// Fold rows `from_row..` of `table` into the index — the incremental
    /// maintenance path for append-only tables. Appended row positions are
    /// strictly larger than anything already indexed, so every posting
    /// list stays in ascending row order and the result is identical to
    /// rebuilding from scratch.
    pub fn extend_from(&mut self, table: &Table, from_row: usize) {
        self.map.reserve(table.len().saturating_sub(from_row));
        let mut pos = 0usize;
        for block in table.blocks() {
            let rows = block.rows();
            if pos + rows.len() > from_row {
                for (off, row) in rows.iter().enumerate() {
                    let i = pos + off;
                    if i < from_row {
                        continue;
                    }
                    let key = Table::key_of(row, &self.key_cols);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    self.map.entry(key).or_default().push(i);
                }
            }
            pos += rows.len();
        }
        self.rows_indexed = table.len();
    }

    /// Rebase the index onto a permutation of its snapshot's rows:
    /// `perm[old_position] = new_position`. Posting lists are re-sorted
    /// ascending, so the result equals an index built from the permuted
    /// table — without rehashing or cloning any key. Used to transfer a
    /// prebuilt index onto a table holding the same rows in a different
    /// order (e.g. a delta replay that renumbers facts).
    pub fn remap_positions(&mut self, perm: &[usize]) {
        for list in self.map.values_mut() {
            for p in list.iter_mut() {
                *p = perm[*p];
            }
            list.sort_unstable();
        }
    }

    /// The key columns this index covers.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of rows in the snapshot the index was built from.
    pub fn rows_indexed(&self) -> usize {
        self.rows_indexed
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Look up the row positions matching a key.
    pub fn get(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Look up using the key extracted from `probe_row` at `probe_cols`.
    pub fn probe(&self, probe_row: &Row, probe_cols: &[usize]) -> &[usize] {
        let key = Table::key_of(probe_row, probe_cols);
        if key.iter().any(Value::is_null) {
            return &[];
        }
        self.get(&key)
    }

    /// True if a key exists in the index.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        Table::from_rows(
            Schema::new(vec![
                Column::new("r", DataType::Int),
                Column::nullable("x", DataType::Int),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(2), Value::Int(10)],
                vec![Value::Int(3), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let t = table();
        let idx = HashIndex::build(&t, &[0]);
        assert_eq!(idx.get(&[Value::Int(1)]), &[0, 1]);
        assert_eq!(idx.get(&[Value::Int(2)]), &[2]);
        assert_eq!(idx.get(&[Value::Int(99)]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.rows_indexed(), 4);
        assert_eq!(idx.key_cols(), &[0]);
    }

    #[test]
    fn null_keys_excluded() {
        let t = table();
        let idx = HashIndex::build(&t, &[1]);
        // Row 3 has NULL x and is not indexed.
        assert!(!idx.contains(&[Value::Null]));
        assert_eq!(idx.get(&[Value::Int(10)]), &[0, 2]);
    }

    #[test]
    fn probe_extracts_key_from_row() {
        let t = table();
        let idx = HashIndex::build(&t, &[0, 1]);
        let probe = vec![Value::Int(1), Value::Int(20)];
        assert_eq!(idx.probe(&probe, &[0, 1]), &[1]);
        let null_probe = vec![Value::Int(1), Value::Null];
        assert_eq!(idx.probe(&null_probe, &[0, 1]), &[] as &[usize]);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let big = Table::from_rows_unchecked(
            Schema::ints(&["r", "x"]),
            (0..500i64)
                .map(|i| vec![Value::Int(i % 7), Value::Int(i % 23)])
                .collect(),
        );
        let serial = HashIndex::build(&big, &[0, 1]);
        for threads in [1, 2, 8] {
            let par = HashIndex::build_parallel(&big, &[0, 1], threads);
            assert_eq!(par.distinct_keys(), serial.distinct_keys());
            assert_eq!(par.rows_indexed(), serial.rows_indexed());
            for (key, rows) in &serial.map {
                assert_eq!(par.get(key), rows.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn remap_positions_matches_permuted_build() {
        let t = table();
        let mut idx = HashIndex::build(&t, &[0]);
        // Reverse the rows: position i -> 3 - i.
        let perm = [3usize, 2, 1, 0];
        idx.remap_positions(&perm);
        let reversed = Table::from_rows_unchecked(
            t.schema().clone(),
            t.rows().iter().rev().cloned().collect(),
        );
        assert_eq!(idx, HashIndex::build(&reversed, &[0]));
    }

    #[test]
    fn composite_keys_distinguish() {
        let t = table();
        let idx = HashIndex::build(&t, &[0, 1]);
        assert_eq!(idx.distinct_keys(), 3);
        assert!(idx.contains(&[Value::Int(2), Value::Int(10)]));
        assert!(!idx.contains(&[Value::Int(2), Value::Int(20)]));
    }
}
