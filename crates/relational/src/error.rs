//! Error type shared by the relational engine.

use std::fmt;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A row's arity or types did not match the target schema.
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An expression was evaluated against incompatible operand types.
    TypeMismatch {
        /// Human-readable description of the offending expression.
        detail: String,
    },
    /// A column index was out of bounds for the schema it was applied to.
    ColumnOutOfBounds {
        /// The requested column index.
        index: usize,
        /// The number of columns in the schema.
        width: usize,
    },
    /// A plan was structurally invalid (e.g. join key arity mismatch).
    InvalidPlan(String),
    /// An object (table, view, index) already exists.
    AlreadyExists(String),
    /// The out-of-core storage layer failed (I/O error, corrupt page or
    /// chunk, exhausted buffer pool). Carries the underlying rendering.
    Storage(String),
    /// A requested operation is recognized but not implemented. The
    /// structured fields let callers (e.g. the server's error path)
    /// report *what* is unsupported and *why* without string matching.
    Unsupported {
        /// The operation or feature requested (e.g. `"retract"`).
        feature: String,
        /// Why it is unsupported, and what to do instead.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(name) => write!(f, "unknown table: {name}"),
            Error::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            Error::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            Error::TypeMismatch { detail } => write!(f, "type mismatch: {detail}"),
            Error::ColumnOutOfBounds { index, width } => {
                write!(f, "column index {index} out of bounds for width {width}")
            }
            Error::InvalidPlan(detail) => write!(f, "invalid plan: {detail}"),
            Error::AlreadyExists(name) => write!(f, "object already exists: {name}"),
            Error::Storage(detail) => write!(f, "storage error: {detail}"),
            Error::Unsupported { feature, reason } => {
                write!(f, "unsupported operation {feature}: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_each_variant() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::UnknownTable("t".into()), "unknown table: t"),
            (Error::UnknownColumn("c".into()), "unknown column: c"),
            (
                Error::SchemaMismatch { detail: "d".into() },
                "schema mismatch: d",
            ),
            (
                Error::TypeMismatch { detail: "d".into() },
                "type mismatch: d",
            ),
            (
                Error::ColumnOutOfBounds { index: 4, width: 2 },
                "column index 4 out of bounds for width 2",
            ),
            (Error::InvalidPlan("p".into()), "invalid plan: p"),
            (Error::AlreadyExists("x".into()), "object already exists: x"),
            (Error::Storage("s".into()), "storage error: s"),
            (
                Error::Unsupported {
                    feature: "retract".into(),
                    reason: "r".into(),
                },
                "unsupported operation retract: r",
            ),
        ];
        for (err, expect) in cases {
            assert_eq!(err.to_string(), expect);
        }
    }
}
