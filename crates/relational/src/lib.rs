//! # probkb-relational
//!
//! An in-memory, set-oriented relational engine: the PostgreSQL stand-in
//! that ProbKB's grounding algorithm runs on.
//!
//! The engine deliberately mirrors how the paper uses its RDBMS:
//!
//! * batch (whole-table) operators — scans, multi-key hash joins, grouped
//!   aggregates, `DISTINCT`, `UNION ALL`, keyed `DELETE` — because the
//!   paper's core claim is that *set-oriented* execution of rule batches
//!   beats per-rule query loops;
//! * a [`plan::Plan`] tree built with a fluent API, executed by
//!   [`exec::Executor`], which records per-node wall-clock time and
//!   cardinalities so [`explain::explain_analyze`] can render the
//!   Figure-4-style annotated plans;
//! * a [`catalog::Catalog`] of named tables with snapshot isolation for
//!   reads (the MPP layer gives every segment its own catalog).
//!
//! ## Quick example
//!
//! ```
//! use probkb_relational::prelude::*;
//!
//! let cat = Catalog::new();
//! let facts = Table::from_rows(
//!     Schema::ints(&["rel", "subj", "obj"]),
//!     vec![
//!         vec![Value::Int(1), Value::Int(10), Value::Int(20)],
//!         vec![Value::Int(1), Value::Int(11), Value::Int(20)],
//!     ],
//! ).unwrap();
//! cat.create("facts", facts).unwrap();
//!
//! // SELECT subj FROM facts WHERE rel = 1
//! let plan = Plan::scan("facts")
//!     .filter(Expr::col(0).eq(Expr::lit(1i64)))
//!     .project_cols(&[1], &["subj"]);
//! let out = Executor::new(&cat).execute_table(&plan).unwrap();
//! assert_eq!(out.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod btree_index;
pub mod catalog;
pub mod colstore;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod index;
pub mod keyenc;
pub mod optimizer;
pub mod plan;
pub mod schema;
pub mod spill;
pub mod stats;
pub mod table;
pub mod value;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::btree_index::BTreeIndex;
    pub use crate::catalog::Catalog;
    pub use crate::error::{Error, Result};
    pub use crate::exec::{ExecMetrics, Executor};
    pub use crate::explain::{explain, explain_analyze, fmt_duration};
    pub use crate::expr::{BinOp, Expr};
    pub use crate::index::HashIndex;
    pub use crate::optimizer::{default_optimize, estimate, optimize, Estimate, StatsSource};
    pub use crate::plan::{AggExpr, AggFunc, BuildSide, JoinKind, Plan};
    pub use crate::schema::{Column, Schema};
    pub use crate::spill::{
        clear_process_default, process_default, set_process_default, SpillPolicy, StorageContext,
    };
    pub use crate::stats::{ColumnStats, TableStats};
    pub use crate::table::{Block, Row, Table};
    pub use crate::value::{DataType, Value};
    pub use probkb_pager::buffer::BufferStats;
}
