//! Disk-resident B-tree indexes over table columns.
//!
//! The out-of-core sibling of [`crate::index::HashIndex`]: key tuples
//! are serialized with the order-preserving [`crate::keyenc`] codec and
//! stored in a buffer-managed [`BTree`], so the index itself pages in
//! and out instead of pinning a `HashMap` of the whole key space in
//! RAM. Because the pager's tree holds *unique* keys, each entry's key
//! is the encoded tuple followed by the row position as a big-endian
//! `u64` suffix — duplicates become adjacent distinct keys, and a
//! prefix range scan returns their positions already in ascending row
//! order (the same order `HashIndex` posting lists guarantee).
//!
//! Equality semantics match `HashIndex`: rows with NULL in any key
//! column are not indexed, and NULL probes match nothing. Unlike the
//! hash index, point probes here are *prefix scans*, so the index also
//! answers value-range queries ([`BTreeIndex::range_probe`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use probkb_pager::btree::BTree;

use crate::error::Result;
use crate::keyenc::{encode_key, prefix_range};
use crate::spill::StorageContext;
use crate::table::{Row, Table};
use crate::value::Value;

/// A B-tree index mapping key tuples to row positions in a table
/// snapshot, resident in buffer-managed pages.
pub struct BTreeIndex {
    tree: BTree,
    key_cols: Vec<usize>,
    rows_indexed: AtomicUsize,
}

impl std::fmt::Debug for BTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeIndex")
            .field("key_cols", &self.key_cols)
            .field("rows_indexed", &self.rows_indexed())
            .field("entries", &self.tree.len())
            .field("pages", &self.tree.page_count())
            .finish()
    }
}

impl BTreeIndex {
    /// Build an index over `table` keyed by `key_cols`, with pages
    /// allocated from `ctx`. Rows with NULL in any key column are
    /// excluded (they can never equi-match).
    pub fn build(ctx: &Arc<StorageContext>, table: &Table, key_cols: &[usize]) -> Result<Self> {
        let tree = BTree::create(Arc::clone(ctx.buffer()), &ctx.new_index_path(), true)?;
        let idx = BTreeIndex {
            tree,
            key_cols: key_cols.to_vec(),
            rows_indexed: AtomicUsize::new(0),
        };
        idx.extend_from(table, 0)?;
        Ok(idx)
    }

    /// Fold rows `from_row..` of `table` into the index — incremental
    /// maintenance for append-only tables, identical to rebuilding.
    /// Takes `&self` (the tree serializes internally) so the catalog can
    /// maintain a shared index; concurrent probes may observe a prefix
    /// of an in-flight append, which the executor tolerates by filtering
    /// positions against its own table snapshot length.
    pub fn extend_from(&self, table: &Table, from_row: usize) -> Result<()> {
        // Stage the encoded entries in key order. A from-scratch build
        // bulk-loads the sorted run bottom-up ([`BTree::load_sorted`]:
        // every page written once, no descents, no splits); incremental
        // extensions insert in key order, which lands each key at or
        // right of the previous leaf instead of descending to a random
        // one. Identical outcome either way (the tree is a set of
        // unique keys — the position suffix disambiguates duplicates).
        let mut entries: Vec<(Vec<u8>, u64)> =
            Vec::with_capacity(table.len().saturating_sub(from_row));
        let mut pos = 0usize;
        for block in table.blocks() {
            let rows = block.rows();
            if pos + rows.len() > from_row {
                for (off, row) in rows.iter().enumerate() {
                    let at = pos + off;
                    if at < from_row {
                        continue;
                    }
                    let key = Table::key_of(row, &self.key_cols);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    let mut enc = encode_key(&key);
                    enc.extend_from_slice(&(at as u64).to_be_bytes());
                    entries.push((enc, at as u64));
                }
            }
            pos += rows.len();
        }
        entries.sort_unstable();
        if from_row == 0 && self.tree.is_empty() {
            self.tree.load_sorted(&entries)?;
        } else {
            for (enc, at) in entries {
                self.tree.insert(&enc, at)?;
            }
        }
        self.rows_indexed.store(table.len(), Ordering::Release);
        Ok(())
    }

    /// The key columns this index covers.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of rows in the snapshot the index was built from.
    pub fn rows_indexed(&self) -> usize {
        self.rows_indexed.load(Ordering::Acquire)
    }

    /// Number of indexed entries (rows minus NULL-keyed rows).
    pub fn entries(&self) -> u64 {
        self.tree.len()
    }

    /// Pages occupied by the tree (observability).
    pub fn page_count(&self) -> u32 {
        self.tree.page_count()
    }

    /// Row positions whose key equals `key`, ascending.
    pub fn get(&self, key: &[Value]) -> Result<Vec<usize>> {
        if key.iter().any(Value::is_null) {
            return Ok(Vec::new());
        }
        let (lo, hi) = prefix_range(&encode_key(key));
        self.scan_positions(&lo, hi.as_deref())
    }

    /// Look up using the key extracted from `probe_row` at `probe_cols`.
    pub fn probe(&self, probe_row: &Row, probe_cols: &[usize]) -> Result<Vec<usize>> {
        self.get(&Table::key_of(probe_row, probe_cols))
    }

    /// Row positions whose key tuple lies in `[lo, hi]` (both ends
    /// inclusive, compared by [`Value`] order within each column).
    /// `lo`/`hi` may be shorter than the indexed key — they then bound
    /// the leading columns only.
    pub fn range_probe(&self, lo: &[Value], hi: &[Value]) -> Result<Vec<usize>> {
        let enc_lo = encode_key(lo);
        // Upper bound: everything with `hi` as a tuple prefix stays in.
        let (_, enc_hi) = prefix_range(&encode_key(hi));
        self.scan_positions(&enc_lo, enc_hi.as_deref())
    }

    /// True if any row carries this key.
    pub fn contains(&self, key: &[Value]) -> Result<bool> {
        Ok(!self.get(key)?.is_empty())
    }

    fn scan_positions(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        self.tree.for_each_range(lo, hi, &mut |_, v| {
            out.push(v as usize);
            true
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::HashIndex;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn ctx() -> Arc<StorageContext> {
        StorageContext::in_temp(64).unwrap()
    }

    fn table() -> Table {
        Table::from_rows(
            Schema::new(vec![
                Column::new("r", DataType::Int),
                Column::nullable("x", DataType::Int),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(2), Value::Int(10)],
                vec![Value::Int(3), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup_matches_hash_index() {
        let t = table();
        let ctx = ctx();
        let bt = BTreeIndex::build(&ctx, &t, &[0]).unwrap();
        let hi = HashIndex::build(&t, &[0]);
        for r in 0..5i64 {
            let key = vec![Value::Int(r)];
            assert_eq!(bt.get(&key).unwrap(), hi.get(&key), "key {r}");
        }
        assert_eq!(bt.rows_indexed(), 4);
        assert_eq!(bt.entries(), 4);
    }

    #[test]
    fn null_keys_excluded_and_null_probe_empty() {
        let t = table();
        let bt = BTreeIndex::build(&ctx(), &t, &[1]).unwrap();
        assert_eq!(bt.entries(), 3); // NULL x row skipped
        assert!(bt.get(&[Value::Null]).unwrap().is_empty());
        assert_eq!(bt.get(&[Value::Int(10)]).unwrap(), vec![0, 2]);
    }

    #[test]
    fn range_probe_inclusive_bounds() {
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..100i64).map(|i| vec![Value::Int(i)]).collect(),
        );
        let bt = BTreeIndex::build(&ctx(), &t, &[0]).unwrap();
        let got = bt.range_probe(&[Value::Int(10)], &[Value::Int(13)]).unwrap();
        assert_eq!(got, vec![10, 11, 12, 13]);
        // Prefix bound on a composite index.
        let t2 = Table::from_rows_unchecked(
            Schema::ints(&["a", "b"]),
            (0..20i64).map(|i| vec![Value::Int(i / 5), Value::Int(i)]).collect(),
        );
        let bt2 = BTreeIndex::build(&ctx(), &t2, &[0, 1]).unwrap();
        let got = bt2.range_probe(&[Value::Int(1)], &[Value::Int(2)]).unwrap();
        assert_eq!(got, (5..15).collect::<Vec<usize>>());
    }

    #[test]
    fn duplicates_return_ascending_positions() {
        let t = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..1000i64).map(|i| vec![Value::Int(i % 7)]).collect(),
        );
        let ctx = ctx();
        let bt = BTreeIndex::build(&ctx, &t, &[0]).unwrap();
        let hi = HashIndex::build(&t, &[0]);
        for k in 0..7i64 {
            let key = vec![Value::Int(k)];
            assert_eq!(bt.get(&key).unwrap(), hi.get(&key), "k={k}");
        }
    }

    #[test]
    fn extend_from_matches_full_rebuild_and_works_spilled() {
        let ctx = ctx();
        let mut t = Table::from_rows_unchecked(
            Schema::ints(&["k", "v"]),
            (0..5000i64).map(|i| vec![Value::Int(i % 31), Value::Int(i)]).collect(),
        );
        t.spill(&ctx).unwrap();
        assert!(t.is_spilled());
        let bt = BTreeIndex::build(&ctx, &t, &[0]).unwrap();
        for i in 5000..5600i64 {
            t.push_unchecked(vec![Value::Int(i % 31), Value::Int(i)]);
        }
        t.flush_tail().unwrap();
        bt.extend_from(&t, 5000).unwrap();
        let fresh = BTreeIndex::build(&ctx, &t, &[0]).unwrap();
        let hi = HashIndex::build(&t, &[0]);
        for k in 0..31i64 {
            let key = vec![Value::Int(k)];
            assert_eq!(bt.get(&key).unwrap(), hi.get(&key), "k={k}");
            assert_eq!(fresh.get(&key).unwrap(), hi.get(&key), "k={k}");
        }
    }

    #[test]
    fn string_and_mixed_keys() {
        let t = Table::from_rows_unchecked(
            Schema::new(vec![
                Column::new("s", DataType::Str),
                Column::new("n", DataType::Int),
            ]),
            vec![
                vec![Value::str("apple"), Value::Int(1)],
                vec![Value::str("app"), Value::Int(2)],
                vec![Value::str("apple"), Value::Int(1)],
                vec![Value::str("banana"), Value::Int(3)],
            ],
        );
        let bt = BTreeIndex::build(&ctx(), &t, &[0, 1]).unwrap();
        assert_eq!(
            bt.get(&[Value::str("apple"), Value::Int(1)]).unwrap(),
            vec![0, 2]
        );
        // "app" must not match as a prefix of "apple" (terminator).
        assert_eq!(bt.get(&[Value::str("app"), Value::Int(2)]).unwrap(), vec![1]);
        // Range results come back in key order: "app" sorts before
        // "apple", and equal keys yield ascending positions.
        let r = bt
            .range_probe(&[Value::str("app")], &[Value::str("apple")])
            .unwrap();
        assert_eq!(r, vec![1, 0, 2]);
    }
}
