//! Scalar values and data types.
//!
//! The grounding workload stores dictionary-encoded identifiers (integers)
//! and rule weights (floats), so the value lattice is deliberately small:
//! `Null`, `Int`, `Float`, and `Str`. Strings are reference-counted so that
//! copying rows through joins and motions stays cheap.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;


/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (dictionary-encoded ids, counters).
    Int,
    /// 64-bit float (MLN weights, probabilities).
    Float,
    /// Interned UTF-8 string (entity/relation surface forms).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
        }
    }
}

/// A scalar value stored in a table cell.
///
/// `Value` implements total equality, ordering, and hashing so it can be
/// used directly as a hash-join or group-by key. Floats compare by their
/// bit pattern for hashing (with `-0.0` normalized to `0.0` and all NaNs
/// collapsed), which is exactly what a database engine needs for grouping.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Note that join and group-by operators treat NULL keys as
    /// non-matching, per SQL semantics; `Eq` on `Value` itself treats two
    /// NULLs as equal so rows can be deduplicated.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// String value.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is truthy in a WHERE clause (non-null, non-zero,
    /// non-empty). NULL is falsy, matching SQL's three-valued logic
    /// collapsing to "not selected".
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Canonical bit pattern for float hashing/equality (also the basis
    /// of the order-preserving key encoding in `keyenc`).
    pub(crate) fn float_bits(v: f64) -> u64 {
        if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0u64 // normalize -0.0
        } else {
            v.to_bits()
        }
    }

    /// Approximate heap + inline size of this value in bytes, used by the
    /// MPP network cost model to charge motions by volume.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 16 + s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::float_bits(*a) == Value::float_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                Value::float_bits(*v).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL sorts first, then by type tag (Int < Float < Str),
    /// with Int/Float compared numerically when mixed.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn value_size_is_pinned() {
        // Rows are `Vec<Value>`, so every byte here multiplies across
        // hundreds of millions of fields at Table-2 scale, and the
        // columnar chunk codec budgets around this layout. 24 bytes =
        // discriminant padded to one word + the 16-byte `Arc<str>` fat
        // pointer. If a new variant grows this, box its payload.
        assert_eq!(std::mem::size_of::<Value>(), 24);
        assert_eq!(std::mem::size_of::<Option<Value>>(), 24);
    }

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nulls_are_equal_for_dedup() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn nans_collapse() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_null_first_then_numeric_then_str() {
        let mut vals = vec![
            Value::str("a"),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(1),
                Value::Float(2.5),
                Value::Int(3),
                Value::str("a"),
            ]
        );
    }

    #[test]
    fn accessors_and_widening() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn truthiness_matches_sql_where_semantics() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::str("t").is_truthy());
    }

    #[test]
    fn from_option_maps_none_to_null() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(3i64).into();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn size_bytes_counts_string_payload() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert_eq!(Value::str("abcd").size_bytes(), 20);
    }
}
