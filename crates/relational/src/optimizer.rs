//! Cost-based plan optimization over table statistics.
//!
//! The paper leans on PostgreSQL/Greenplum's optimizer to pick good join
//! plans for each structural rule partition; this module is our stand-in.
//! It consists of:
//!
//! * a **cardinality estimator** ([`estimate`]) over [`crate::plan::Plan`]
//!   trees, driven by the [`crate::stats`] kept fresh by the catalog —
//!   equality selectivity via most-common-value sketches, join output via
//!   distinct counts;
//! * a **cost model** ([`cost`]): every operator pays its input and output
//!   cardinalities, so plans with smaller intermediates win;
//! * an **optimizer pass** ([`optimize`]) that reorders inner-join chains
//!   (exhaustive for ≤ 4 relations, greedy beyond), fixes each join's
//!   build side from estimates ([`crate::plan::BuildSide`]), pushes
//!   single-side filters below joins, and prunes unused columns out of
//!   join inputs when a column projection sits on top of a chain.
//!
//! The pass is **semantics-preserving and fail-safe**: any estimation
//! error falls back to the original plan, reordered chains are wrapped in
//! a restoring projection so the output schema (column order *and* names)
//! is unchanged, and everything is a pure function of the plan and the
//! (deterministic) statistics, so optimized runs are reproducible.
//!
//! Gating: [`default_optimize`] reads `PROBKB_OPTIMIZE` once per process
//! (default **on**); the unoptimized path stays available as a
//! differential oracle.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::ExecMetrics;
use crate::expr::{BinOp, Expr};
use crate::plan::{BuildSide, JoinKind, Plan};
use crate::schema::Schema;
use crate::stats::TableStats;
use crate::value::Value;

/// Process-wide default for the cost-based optimizer, read **once** from
/// the `PROBKB_OPTIMIZE` environment variable and cached. Unset or
/// unparsable means **enabled**; `0`, `false`, `off`, or `no` disable it,
/// keeping the hand-written plans as a differential oracle. Callers that
/// need a different setting mid-process (differential tests) should use
/// an explicit override such as `Executor::with_optimize`.
pub fn default_optimize() -> bool {
    static OPTIMIZE: OnceLock<bool> = OnceLock::new();
    *OPTIMIZE.get_or_init(|| {
        match std::env::var("PROBKB_OPTIMIZE") {
            Ok(v) => {
                let v = v.trim().to_ascii_lowercase();
                !matches!(v.as_str(), "0" | "false" | "off" | "no")
            }
            Err(_) => true,
        }
    })
}

/// Where the estimator finds statistics and schemas for base tables.
///
/// The single-node path implements this with [`Catalog`]; the MPP layer
/// implements it on its cluster handle by merging per-segment statistics
/// into cluster-wide ones.
pub trait StatsSource {
    /// Statistics for a named base table, if available.
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>>;
    /// Schema of a named base table.
    fn table_schema(&self, name: &str) -> Result<Schema>;
}

impl StatsSource for Catalog {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.stats_of(name)
    }

    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.schema_of(name)
    }
}

/// Row estimate for a scan of a table the estimator knows nothing about.
const DEFAULT_UNKNOWN_ROWS: f64 = 1000.0;
/// Fallback equality selectivity when neither side is a plain column.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Selectivity of `<`, `<=`, `>`, `>=` (the classic planner constant).
const INEQ_SEL: f64 = 1.0 / 3.0;

/// Estimated statistics for one output column of a plan node.
#[derive(Debug, Clone)]
pub struct ColEst {
    /// Estimated distinct non-null values.
    pub distinct: f64,
    /// Estimated fraction of NULL values.
    pub null_frac: f64,
    /// Most-common values as `(value, fraction of rows)`.
    pub mcvs: Vec<(Value, f64)>,
}

impl ColEst {
    /// A column the estimator knows nothing about beyond the row count.
    fn opaque(rows: f64) -> ColEst {
        ColEst {
            distinct: rows.max(0.0),
            null_frac: 0.0,
            mcvs: Vec::new(),
        }
    }

    /// Cap the distinct count by a (smaller) row count.
    fn capped(mut self, rows: f64) -> ColEst {
        self.distinct = self.distinct.min(rows.max(0.0));
        self
    }
}

/// A cardinality estimate for one plan node's output.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Per-column estimates, in output order.
    pub cols: Vec<ColEst>,
}

impl Estimate {
    /// Number of output columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    fn from_stats(stats: &TableStats) -> Estimate {
        let rows = stats.row_count() as f64;
        let cols = (0..stats.width())
            .map(|i| {
                let c = stats.column(i).expect("column within width");
                ColEst {
                    distinct: c.distinct_count() as f64,
                    null_frac: if rows > 0.0 {
                        c.null_count() as f64 / rows
                    } else {
                        0.0
                    },
                    mcvs: c
                        .most_common()
                        .into_iter()
                        .map(|(v, n)| (v, n as f64 / rows.max(1.0)))
                        .collect(),
                }
            })
            .collect();
        Estimate { rows, cols }
    }

    fn unknown(width: usize) -> Estimate {
        Estimate {
            rows: DEFAULT_UNKNOWN_ROWS,
            cols: (0..width)
                .map(|_| ColEst::opaque(DEFAULT_UNKNOWN_ROWS))
                .collect(),
        }
    }

    fn scaled(&self, rows: f64) -> Estimate {
        let rows = rows.max(0.0);
        Estimate {
            rows,
            cols: self.cols.iter().map(|c| c.clone().capped(rows)).collect(),
        }
    }
}

/// Estimate the output cardinality (and per-column statistics) of a plan.
pub fn estimate(plan: &Plan, src: &dyn StatsSource) -> Result<Estimate> {
    match plan {
        Plan::Scan { table } => match src.table_stats(table) {
            Some(stats) => Ok(Estimate::from_stats(&stats)),
            None => Ok(Estimate::unknown(src.table_schema(table)?.width())),
        },
        Plan::Values { table } => Ok(Estimate::from_stats(&TableStats::analyze(table))),
        Plan::Filter { input, predicate } => {
            let child = estimate(input, src)?;
            let sel = selectivity(predicate, &child);
            Ok(child.scaled(child.rows * sel))
        }
        Plan::Project { input, exprs } => {
            let child = estimate(input, src)?;
            let rows = child.rows;
            let cols = exprs
                .iter()
                .map(|(e, _)| match e {
                    Expr::Col(i) => child
                        .cols
                        .get(*i)
                        .cloned()
                        .unwrap_or_else(|| ColEst::opaque(rows)),
                    Expr::Lit(v) => ColEst {
                        distinct: if v.is_null() { 0.0 } else { 1.0 },
                        null_frac: if v.is_null() { 1.0 } else { 0.0 },
                        mcvs: if v.is_null() {
                            Vec::new()
                        } else {
                            vec![(v.clone(), 1.0)]
                        },
                    },
                    _ => ColEst::opaque(rows),
                })
                .collect();
            Ok(Estimate { rows, cols })
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            ..
        } => {
            let l = estimate(left, src)?;
            let r = estimate(right, src)?;
            Ok(estimate_join(&l, &r, left_keys, right_keys, *kind))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let child = estimate(input, src)?;
            let rows = if group_by.is_empty() {
                1.0
            } else {
                let groups: f64 = group_by
                    .iter()
                    .map(|&g| {
                        child
                            .cols
                            .get(g)
                            .map(|c| c.distinct.max(1.0))
                            .unwrap_or(1.0)
                    })
                    .product();
                groups.min(child.rows)
            };
            let mut cols: Vec<ColEst> = group_by
                .iter()
                .map(|&g| {
                    child
                        .cols
                        .get(g)
                        .cloned()
                        .unwrap_or_else(|| ColEst::opaque(rows))
                        .capped(rows)
                })
                .collect();
            cols.extend(aggs.iter().map(|_| ColEst::opaque(rows)));
            Ok(Estimate { rows, cols })
        }
        Plan::Distinct { input } => {
            let child = estimate(input, src)?;
            let combos: f64 = child.cols.iter().map(|c| c.distinct.max(1.0)).product();
            Ok(child.scaled(combos.min(child.rows)))
        }
        Plan::UnionAll { left, right } => {
            let l = estimate(left, src)?;
            let r = estimate(right, src)?;
            let rows = l.rows + r.rows;
            let cols = l
                .cols
                .iter()
                .zip(r.cols.iter())
                .map(|(a, b)| ColEst {
                    distinct: (a.distinct + b.distinct).min(rows),
                    null_frac: if rows > 0.0 {
                        (a.null_frac * l.rows + b.null_frac * r.rows) / rows
                    } else {
                        0.0
                    },
                    mcvs: Vec::new(),
                })
                .collect();
            Ok(Estimate { rows, cols })
        }
        Plan::Sort { input, .. } => estimate(input, src),
        Plan::Limit { input, n } => {
            let child = estimate(input, src)?;
            Ok(child.scaled(child.rows.min(*n as f64)))
        }
    }
}

fn estimate_join(
    l: &Estimate,
    r: &Estimate,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
) -> Estimate {
    let mut sel = 1.0f64;
    let mut containment = 1.0f64;
    for (&a, &b) in left_keys.iter().zip(right_keys.iter()) {
        let ld = l.cols.get(a).map(|c| c.distinct).unwrap_or(l.rows).max(1.0);
        let rd = r.cols.get(b).map(|c| c.distinct).unwrap_or(r.rows).max(1.0);
        sel /= ld.max(rd);
        containment *= (rd / ld).min(1.0);
    }
    match kind {
        JoinKind::Inner => {
            let rows = (l.rows * r.rows * sel).max(0.0);
            let mut cols: Vec<ColEst> =
                l.cols.iter().map(|c| c.clone().capped(rows)).collect();
            cols.extend(r.cols.iter().map(|c| c.clone().capped(rows)));
            Estimate { rows, cols }
        }
        JoinKind::LeftSemi => l.scaled(l.rows * containment),
        JoinKind::LeftAnti => l.scaled(l.rows * (1.0 - containment)),
    }
}

/// Estimated fraction of input rows a predicate keeps.
fn selectivity(pred: &Expr, input: &Estimate) -> f64 {
    let s = match pred {
        Expr::Lit(v) => {
            if v.is_truthy() {
                1.0
            } else {
                0.0
            }
        }
        Expr::Col(_) => 0.5,
        Expr::Not(inner) => 1.0 - selectivity(inner, input),
        Expr::IsNull(inner) => match inner.as_ref() {
            Expr::Col(i) => input.cols.get(*i).map(|c| c.null_frac).unwrap_or(0.1),
            _ => 0.1,
        },
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::And => selectivity(lhs, input) * selectivity(rhs, input),
            BinOp::Or => {
                let a = selectivity(lhs, input);
                let b = selectivity(rhs, input);
                a + b - a * b
            }
            BinOp::Eq => eq_selectivity(lhs, rhs, input),
            BinOp::Ne => 1.0 - eq_selectivity(lhs, rhs, input),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => INEQ_SEL,
            BinOp::Add | BinOp::Sub | BinOp::Mul => 0.5,
        },
    };
    s.clamp(0.0, 1.0)
}

fn eq_selectivity(lhs: &Expr, rhs: &Expr, input: &Estimate) -> f64 {
    match (lhs, rhs) {
        (Expr::Col(i), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(i)) => {
            col_eq_lit(input.cols.get(*i), v)
        }
        (Expr::Col(i), Expr::Col(j)) => {
            let di = input.cols.get(*i).map(|c| c.distinct).unwrap_or(1.0).max(1.0);
            let dj = input.cols.get(*j).map(|c| c.distinct).unwrap_or(1.0).max(1.0);
            1.0 / di.max(dj)
        }
        _ => DEFAULT_EQ_SEL,
    }
}

/// `col = literal` selectivity: exact MCV frequency when the literal is in
/// the sketch, otherwise the residual mass spread over the residual
/// distinct values (the PostgreSQL formula).
fn col_eq_lit(col: Option<&ColEst>, v: &Value) -> f64 {
    let Some(col) = col else {
        return DEFAULT_EQ_SEL;
    };
    if v.is_null() {
        return 0.0; // `= NULL` never matches
    }
    if let Some((_, frac)) = col.mcvs.iter().find(|(mv, _)| mv == v) {
        return *frac;
    }
    let mcv_mass: f64 = col.mcvs.iter().map(|(_, f)| f).sum();
    let rest = (1.0 - mcv_mass - col.null_frac).max(0.0);
    let rest_distinct = (col.distinct - col.mcvs.len() as f64).max(1.0);
    rest / rest_distinct
}

/// Additive cost of a plan: every operator pays its estimated input and
/// output cardinalities. Absolute numbers are meaningless; only the
/// ordering between candidate plans matters.
pub fn cost(plan: &Plan, src: &dyn StatsSource) -> Result<f64> {
    let mut total = estimate(plan, src)?.rows;
    for child in plan.children() {
        total += estimate(child, src)?.rows;
        total += cost(child, src)?;
    }
    Ok(total)
}

/// Fill the `est_rows` field of an [`ExecMetrics`] tree from the plan that
/// produced it, so `EXPLAIN ANALYZE` can print `est=` next to `rows=`.
/// The metrics tree mirrors the plan tree node for node.
pub fn annotate_estimates(metrics: &mut ExecMetrics, plan: &Plan, src: &dyn StatsSource) {
    if let Ok(est) = estimate(plan, src) {
        metrics.est_rows = est.rows.round() as usize;
    }
    for (m, p) in metrics.children.iter_mut().zip(plan.children()) {
        annotate_estimates(m, p, src);
    }
}

/// Optimize a plan against the statistics in `src`.
///
/// Semantics-preserving by construction: reordered join chains are wrapped
/// in a projection restoring the original column order and names, and any
/// estimation failure falls back to the input plan unchanged.
pub fn optimize(plan: &Plan, src: &dyn StatsSource) -> Plan {
    try_optimize(plan, src).unwrap_or_else(|_| plan.clone())
}

fn is_inner_join(plan: &Plan) -> bool {
    matches!(
        plan,
        Plan::HashJoin {
            kind: JoinKind::Inner,
            ..
        }
    )
}

fn try_optimize(plan: &Plan, src: &dyn StatsSource) -> Result<Plan> {
    match plan {
        // A pure-column projection over a join chain: fuse it into the
        // chain rewrite so unused leaf columns can be pruned.
        Plan::Project { input, exprs }
            if is_inner_join(input) && exprs.iter().all(|(e, _)| matches!(e, Expr::Col(_))) =>
        {
            rewrite_chain(input, Some(exprs), src)
        }
        // A filter over a join: push single-side conjuncts below the join.
        Plan::Filter { input, predicate } if is_inner_join(input) => {
            push_filter(input, predicate, src)
        }
        Plan::HashJoin {
            kind: JoinKind::Inner,
            ..
        } => rewrite_chain(plan, None, src),
        Plan::Scan { .. } | Plan::Values { .. } => Ok(plan.clone()),
        Plan::Filter { input, predicate } => Ok(Plan::Filter {
            input: Box::new(try_optimize(input, src)?),
            predicate: predicate.clone(),
        }),
        Plan::Project { input, exprs } => Ok(Plan::Project {
            input: Box::new(try_optimize(input, src)?),
            exprs: exprs.clone(),
        }),
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            build,
        } => Ok(Plan::HashJoin {
            left: Box::new(try_optimize(left, src)?),
            right: Box::new(try_optimize(right, src)?),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            kind: *kind,
            build: *build,
        }),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(Plan::Aggregate {
            input: Box::new(try_optimize(input, src)?),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }),
        Plan::Distinct { input } => Ok(Plan::Distinct {
            input: Box::new(try_optimize(input, src)?),
        }),
        Plan::UnionAll { left, right } => Ok(Plan::UnionAll {
            left: Box::new(try_optimize(left, src)?),
            right: Box::new(try_optimize(right, src)?),
        }),
        Plan::Sort { input, keys } => Ok(Plan::Sort {
            input: Box::new(try_optimize(input, src)?),
            keys: keys.clone(),
        }),
        Plan::Limit { input, n } => Ok(Plan::Limit {
            input: Box::new(try_optimize(input, src)?),
            n: *n,
        }),
    }
}

fn collect_cols(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Col(i) => out.push(*i),
        Expr::Lit(_) => {}
        Expr::Not(x) | Expr::IsNull(x) => collect_cols(x, out),
        Expr::Bin { lhs, rhs, .. } => {
            collect_cols(lhs, out);
            collect_cols(rhs, out);
        }
    }
}

fn shift_cols(e: &Expr, by: usize) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(i - by),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Not(x) => Expr::Not(Box::new(shift_cols(x, by))),
        Expr::IsNull(x) => Expr::IsNull(Box::new(shift_cols(x, by))),
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op: *op,
            lhs: Box::new(shift_cols(lhs, by)),
            rhs: Box::new(shift_cols(rhs, by)),
        },
    }
}

fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Bin {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        split_conjuncts(lhs, out);
        split_conjuncts(rhs, out);
    } else {
        out.push(e.clone());
    }
}

/// Push the single-side conjuncts of `predicate` below an inner join,
/// then optimize the resulting join chain. Conjuncts referencing both
/// sides (or nothing resolvable) stay above the join.
fn push_filter(join: &Plan, predicate: &Expr, src: &dyn StatsSource) -> Result<Plan> {
    let Plan::HashJoin {
        left,
        right,
        left_keys,
        right_keys,
        kind,
        build,
    } = join
    else {
        return Err(Error::InvalidPlan("push_filter expects a join".into()));
    };
    let lookup = |n: &str| src.table_schema(n);
    let lw = left.schema(&lookup)?.width();
    let total = lw + right.schema(&lookup)?.width();

    let mut conjuncts = Vec::new();
    split_conjuncts(predicate, &mut conjuncts);
    let (mut l_push, mut r_push, mut keep) = (Vec::new(), Vec::new(), Vec::new());
    for c in conjuncts {
        let mut cols = Vec::new();
        collect_cols(&c, &mut cols);
        if cols.iter().any(|&i| i >= total) {
            keep.push(c); // out-of-range reference: leave it to fail at eval
        } else if cols.iter().all(|&i| i < lw) {
            l_push.push(c);
        } else if cols.iter().all(|&i| i >= lw) {
            r_push.push(shift_cols(&c, lw));
        } else {
            keep.push(c);
        }
    }

    if l_push.is_empty() && r_push.is_empty() {
        // Nothing moves; optimize the chain and keep the filter on top.
        let inner = rewrite_chain(join, None, src)?;
        return Ok(inner.filter(predicate.clone()));
    }
    let new_left = if l_push.is_empty() {
        (**left).clone()
    } else {
        (**left).clone().filter(Expr::conjunction(l_push))
    };
    let new_right = if r_push.is_empty() {
        (**right).clone()
    } else {
        (**right).clone().filter(Expr::conjunction(r_push))
    };
    let pushed = Plan::HashJoin {
        left: Box::new(new_left),
        right: Box::new(new_right),
        left_keys: left_keys.clone(),
        right_keys: right_keys.clone(),
        kind: *kind,
        build: *build,
    };
    let inner = rewrite_chain(&pushed, None, src)?;
    Ok(if keep.is_empty() {
        inner
    } else {
        inner.filter(Expr::conjunction(keep))
    })
}

/// One leaf of a flattened inner-join chain.
struct Leaf {
    plan: Plan,
    est: Estimate,
    width: usize,
}

/// An equi-join predicate between two leaves, in leaf-local coordinates.
struct ChainPred {
    a_leaf: usize,
    a_col: usize,
    b_leaf: usize,
    b_col: usize,
}

fn flatten(
    plan: &Plan,
    src: &dyn StatsSource,
    leaves: &mut Vec<Leaf>,
    preds: &mut Vec<ChainPred>,
) -> Result<()> {
    match plan {
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind: JoinKind::Inner,
            ..
        } => {
            if left_keys.len() != right_keys.len() {
                // Leave malformed plans untouched so execution still
                // reports the arity error instead of silently "fixing" it.
                return Err(Error::InvalidPlan("join key arity mismatch".into()));
            }
            let l_start = leaves.len();
            flatten(left, src, leaves, preds)?;
            let l_end = leaves.len();
            flatten(right, src, leaves, preds)?;
            for (&lk, &rk) in left_keys.iter().zip(right_keys.iter()) {
                let (al, ac) = locate(leaves, l_start, l_end, lk)?;
                let (bl, bc) = locate(leaves, l_end, leaves.len(), rk)?;
                preds.push(ChainPred {
                    a_leaf: al,
                    a_col: ac,
                    b_leaf: bl,
                    b_col: bc,
                });
            }
            Ok(())
        }
        _ => {
            let optimized = try_optimize(plan, src)?;
            let est = estimate(&optimized, src)?;
            let width = est.cols.len();
            leaves.push(Leaf {
                plan: optimized,
                est,
                width,
            });
            Ok(())
        }
    }
}

/// Map a column index local to a subtree's concatenated output onto the
/// owning leaf and its local column.
fn locate(leaves: &[Leaf], start: usize, end: usize, mut col: usize) -> Result<(usize, usize)> {
    for (idx, leaf) in leaves[start..end].iter().enumerate() {
        if col < leaf.width {
            return Ok((start + idx, col));
        }
        col -= leaf.width;
    }
    Err(Error::InvalidPlan("join key column out of range".into()))
}

fn distinct_of(leaves: &[Leaf], leaf: usize, col: usize) -> f64 {
    leaves[leaf]
        .est
        .cols
        .get(col)
        .map(|c| c.distinct)
        .unwrap_or(leaves[leaf].est.rows)
}

/// The key pairs and selectivity of joining leaf `j` onto a chain.
struct Step {
    /// `((chain_leaf, chain_col), (j, j_col))` per applicable predicate,
    /// in original predicate order.
    pairs: Vec<((usize, usize), (usize, usize))>,
    sel: f64,
}

fn join_step(
    leaves: &[Leaf],
    preds: &[ChainPred],
    in_chain: &[bool],
    j: usize,
    chain_rows: f64,
) -> Step {
    let leaf_rows = leaves[j].est.rows;
    let mut pairs = Vec::new();
    let mut sel = 1.0f64;
    for p in preds {
        let (chain_end, leaf_end) = if in_chain[p.a_leaf] && p.b_leaf == j {
            ((p.a_leaf, p.a_col), (p.b_leaf, p.b_col))
        } else if in_chain[p.b_leaf] && p.a_leaf == j {
            ((p.b_leaf, p.b_col), (p.a_leaf, p.a_col))
        } else {
            continue;
        };
        let dc = distinct_of(leaves, chain_end.0, chain_end.1)
            .min(chain_rows)
            .max(1.0);
        let dl = distinct_of(leaves, leaf_end.0, leaf_end.1)
            .min(leaf_rows)
            .max(1.0);
        sel /= dc.max(dl);
        pairs.push((chain_end, leaf_end));
    }
    Step { pairs, sel }
}

/// Cost of executing the chain in the given leaf order: each step pays the
/// build side, the probe side, and the output.
fn simulate(order: &[usize], leaves: &[Leaf], preds: &[ChainPred]) -> f64 {
    let mut in_chain = vec![false; leaves.len()];
    in_chain[order[0]] = true;
    let mut rows = leaves[order[0]].est.rows;
    let mut cost = 0.0;
    for &j in &order[1..] {
        let step = join_step(leaves, preds, &in_chain, j, rows);
        let leaf_rows = leaves[j].est.rows;
        let out = rows * leaf_rows * step.sel;
        cost += rows.min(leaf_rows) + rows.max(leaf_rows) + out;
        rows = out;
        in_chain[j] = true;
    }
    cost
}

fn next_permutation(arr: &mut [usize]) -> bool {
    if arr.len() < 2 {
        return false;
    }
    let mut i = arr.len() - 1;
    while i > 0 && arr[i - 1] >= arr[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = arr.len() - 1;
    while arr[j] <= arr[i - 1] {
        j -= 1;
    }
    arr.swap(i - 1, j);
    arr[i..].reverse();
    true
}

/// Exhaustive left-deep order search. Permutations are visited in
/// lexicographic order starting from the identity, and only a strictly
/// cheaper order replaces the incumbent — cost ties keep the original
/// plan's order, which keeps EXPLAIN output stable.
fn exhaustive_order(leaves: &[Leaf], preds: &[ChainPred]) -> Vec<usize> {
    let n = leaves.len();
    let mut best: Vec<usize> = (0..n).collect();
    let mut best_cost = simulate(&best, leaves, preds);
    let mut perm: Vec<usize> = (0..n).collect();
    while next_permutation(&mut perm) {
        let c = simulate(&perm, leaves, preds);
        if c < best_cost {
            best_cost = c;
            best = perm.clone();
        }
    }
    best
}

fn connected(preds: &[ChainPred], set: &[usize], j: usize) -> bool {
    preds.iter().any(|p| {
        (p.a_leaf == j && set.contains(&p.b_leaf)) || (p.b_leaf == j && set.contains(&p.a_leaf))
    })
}

/// Greedy left-deep order for chains of more than four relations: seed
/// with the cheapest connected pair, then repeatedly append the connected
/// leaf with the cheapest resulting chain. Falls back to the original
/// order if the join graph is disconnected.
fn greedy_order(leaves: &[Leaf], preds: &[ChainPred]) -> Vec<usize> {
    let n = leaves.len();
    let identity: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::new();
    let mut best_cost = f64::INFINITY;
    for i in 0..n {
        for j in 0..n {
            if i == j || !connected(preds, &[i], j) {
                continue;
            }
            let c = simulate(&[i, j], leaves, preds);
            if c < best_cost {
                best_cost = c;
                order = vec![i, j];
            }
        }
    }
    if order.is_empty() {
        return identity;
    }
    let mut used = vec![false; n];
    used[order[0]] = true;
    used[order[1]] = true;
    while order.len() < n {
        let mut pick: Option<(f64, usize)> = None;
        for j in 0..n {
            if used[j] || !connected(preds, &order, j) {
                continue;
            }
            let mut cand = order.clone();
            cand.push(j);
            let c = simulate(&cand, leaves, preds);
            if pick.as_ref().is_none_or(|(pc, _)| c < *pc) {
                pick = Some((c, j));
            }
        }
        let Some((_, j)) = pick else {
            return identity; // disconnected graph: keep the original order
        };
        order.push(j);
        used[j] = true;
    }
    order
}

/// Rewrite an inner-join chain: flatten, pick an order, prune unused leaf
/// columns when a projection is fused in, rebuild left-deep with
/// stats-chosen build sides, and restore the original output columns.
fn rewrite_chain(
    join: &Plan,
    fused: Option<&Vec<(Expr, String)>>,
    src: &dyn StatsSource,
) -> Result<Plan> {
    let mut leaves = Vec::new();
    let mut preds = Vec::new();
    flatten(join, src, &mut leaves, &mut preds)?;
    let n = leaves.len();
    if n < 2 {
        return Err(Error::InvalidPlan(
            "join chain with fewer than two inputs".into(),
        ));
    }

    let order: Vec<usize> = if n <= 2 {
        // Two inputs: both orders cost the same under this model, so keep
        // the original; only the build side is (re)chosen below.
        (0..n).collect()
    } else if n <= 4 {
        exhaustive_order(&leaves, &preds)
    } else {
        greedy_order(&leaves, &preds)
    };

    // Offsets of each leaf in the ORIGINAL concatenated output.
    let mut leaf_offset = Vec::with_capacity(n);
    let mut total_width = 0usize;
    for leaf in &leaves {
        leaf_offset.push(total_width);
        total_width += leaf.width;
    }
    let locate_global = |g: usize| -> Result<(usize, usize)> { locate(&leaves, 0, n, g) };

    // Which leaf columns survive pruning (all of them without fusion).
    let mut needed: Vec<Vec<bool>> = leaves
        .iter()
        .map(|l| vec![fused.is_none(); l.width])
        .collect();
    if let Some(exprs) = fused {
        for p in &preds {
            needed[p.a_leaf][p.a_col] = true;
            needed[p.b_leaf][p.b_col] = true;
        }
        for (e, _) in exprs {
            let Expr::Col(g) = e else {
                return Err(Error::InvalidPlan("fused projection must be columns".into()));
            };
            let (l, c) = locate_global(*g)?;
            needed[l][c] = true;
        }
    }

    // Prune leaves, building old-local → new-local column remaps.
    let lookup = |nm: &str| src.table_schema(nm);
    let mut pruned: Vec<Plan> = Vec::with_capacity(n);
    let mut pruned_width: Vec<usize> = Vec::with_capacity(n);
    let mut remap: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, leaf) in leaves.iter().enumerate() {
        let mut kept: Vec<usize> = (0..leaf.width).filter(|&c| needed[i][c]).collect();
        if kept.is_empty() {
            kept.push(0); // degenerate leaf: keep one column so rows survive
        }
        let mut map = vec![usize::MAX; leaf.width];
        for (pos, &c) in kept.iter().enumerate() {
            map[c] = pos;
        }
        if kept.len() == leaf.width {
            pruned.push(leaf.plan.clone());
        } else {
            let schema = leaf.plan.schema(&lookup)?;
            let names = schema.names();
            let kept_names: Vec<&str> = kept.iter().map(|&c| names[c]).collect();
            pruned.push(leaf.plan.clone().project_cols(&kept, &kept_names));
        }
        pruned_width.push(kept.len());
        remap.push(map);
    }

    // Rebuild the chain left-deep in the chosen order.
    let mut chain_plan = pruned[order[0]].clone();
    let mut chain_rows = leaves[order[0]].est.rows;
    let mut chain_offsets: HashMap<usize, usize> = HashMap::new();
    chain_offsets.insert(order[0], 0);
    let mut chain_width = pruned_width[order[0]];
    let mut in_chain = vec![false; n];
    in_chain[order[0]] = true;
    for &j in &order[1..] {
        let step = join_step(&leaves, &preds, &in_chain, j, chain_rows);
        let mut lks = Vec::with_capacity(step.pairs.len());
        let mut rks = Vec::with_capacity(step.pairs.len());
        for ((cl, cc), (_, jc)) in &step.pairs {
            lks.push(chain_offsets[cl] + remap[*cl][*cc]);
            rks.push(remap[j][*jc]);
        }
        let leaf_rows = leaves[j].est.rows;
        let build = if chain_rows <= leaf_rows {
            BuildSide::Left
        } else {
            BuildSide::Right
        };
        chain_plan = Plan::HashJoin {
            left: Box::new(chain_plan),
            right: Box::new(pruned[j].clone()),
            left_keys: lks,
            right_keys: rks,
            kind: JoinKind::Inner,
            build,
        };
        chain_rows *= leaf_rows * step.sel;
        chain_offsets.insert(j, chain_width);
        chain_width += pruned_width[j];
        in_chain[j] = true;
    }

    // Output projection.
    match fused {
        Some(exprs) => {
            let mut out_exprs = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let Expr::Col(g) = e else {
                    return Err(Error::InvalidPlan("fused projection must be columns".into()));
                };
                let (l, c) = locate_global(*g)?;
                out_exprs.push((Expr::col(chain_offsets[&l] + remap[l][c]), name.clone()));
            }
            Ok(Plan::Project {
                input: Box::new(chain_plan),
                exprs: out_exprs,
            })
        }
        None => {
            let identity = order.iter().enumerate().all(|(i, &x)| i == x);
            if identity {
                return Ok(chain_plan); // no columns moved: no restoration needed
            }
            let orig_schema = join.schema(&lookup)?;
            let names = orig_schema.names();
            let mut out_exprs = Vec::with_capacity(total_width);
            for (g, name) in names.iter().enumerate().take(total_width) {
                let (l, c) = locate_global(g)?;
                out_exprs.push((Expr::col(chain_offsets[&l] + remap[l][c]), name.to_string()));
            }
            Ok(Plan::Project {
                input: Box::new(chain_plan),
                exprs: out_exprs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explain;
    use crate::table::Table;

    fn ints(name: &str, cat: &Catalog, cols: &[&str], rows: Vec<Vec<i64>>) {
        let t = Table::from_rows_unchecked(
            Schema::ints(cols),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect(),
        );
        cat.create(name, t).unwrap();
    }

    /// a: 100 rows, b: 200 rows, c: 2 rows; a joins b on k1 and c on k2.
    fn chain_catalog() -> Catalog {
        let cat = Catalog::new();
        ints(
            "a",
            &cat,
            &["k1", "k2", "v"],
            (0..100).map(|i| vec![i % 10, i % 5, i]).collect(),
        );
        ints(
            "b",
            &cat,
            &["k", "w"],
            (0..200).map(|i| vec![i % 10, i]).collect(),
        );
        ints("c", &cat, &["k", "u"], vec![vec![0, 77], vec![1, 88]]);
        cat
    }

    fn chain_plan() -> Plan {
        Plan::scan("a")
            .hash_join(Plan::scan("b"), vec![0], vec![0])
            .hash_join(Plan::scan("c"), vec![1], vec![0])
    }

    #[test]
    fn estimates_scan_rows_from_stats() {
        let cat = chain_catalog();
        let est = estimate(&Plan::scan("a"), &cat).unwrap();
        assert_eq!(est.rows, 100.0);
        assert_eq!(est.cols[0].distinct, 10.0);
        assert_eq!(est.cols[2].distinct, 100.0);
    }

    #[test]
    fn filter_selectivity_uses_mcv_sketch() {
        let cat = Catalog::new();
        // 90 rows of value 7 plus 10 singletons: `= 7` is in the MCV
        // sketch with fraction 0.9.
        let mut rows: Vec<Vec<i64>> = vec![vec![7]; 90];
        rows.extend((0..10).map(|i| vec![100 + i]));
        ints("skew", &cat, &["k"], rows);
        let plan = Plan::scan("skew").filter(Expr::col(0).eq(Expr::lit(7i64)));
        let est = estimate(&plan, &cat).unwrap();
        assert!((est.rows - 90.0).abs() < 1e-6, "est.rows = {}", est.rows);
    }

    #[test]
    fn join_reorder_prefers_selective_leaf() {
        let cat = chain_catalog();
        let optimized = optimize(&chain_plan(), &cat);
        let text = explain(&optimized);
        let pos_b = text.find("Seq Scan on b").expect("b scanned");
        let pos_c = text.find("Seq Scan on c").expect("c scanned");
        assert!(
            pos_c < pos_b,
            "2-row c should join before 200-row b:\n{text}"
        );
    }

    #[test]
    fn reordered_chain_restores_schema_and_rows() {
        let cat = chain_catalog();
        let plan = chain_plan();
        let optimized = optimize(&plan, &cat);
        let lookup = |n: &str| cat.schema_of(n);
        assert_eq!(
            plan.schema(&lookup).unwrap().names(),
            optimized.schema(&lookup).unwrap().names()
        );
        let exec = crate::exec::Executor::new(&cat).with_optimize(false);
        let mut base = exec.execute_table(&plan).unwrap();
        let mut opt = exec.execute_table(&optimized).unwrap();
        base.sort_by_cols(&(0..base.schema().width()).collect::<Vec<_>>());
        opt.sort_by_cols(&(0..opt.schema().width()).collect::<Vec<_>>());
        assert_eq!(format!("{:?}", base.rows()), format!("{:?}", opt.rows()));
    }

    #[test]
    fn optimize_is_identity_on_non_joins() {
        let cat = chain_catalog();
        let plan = Plan::scan("a")
            .filter(Expr::col(2).gt(Expr::lit(10i64)))
            .distinct()
            .sort(vec![0])
            .limit(5);
        assert_eq!(explain(&optimize(&plan, &cat)), explain(&plan));
    }

    #[test]
    fn pushes_single_side_filters_below_join() {
        let cat = chain_catalog();
        // Column 4 (= b.w) lives wholly on the right side of the join.
        let plan = Plan::scan("a")
            .hash_join(Plan::scan("b"), vec![0], vec![0])
            .filter(Expr::col(4).lt(Expr::lit(50i64)));
        let optimized = optimize(&plan, &cat);
        let text = explain(&optimized);
        assert!(
            text.starts_with("Hash Join"),
            "filter should sink below the join:\n{text}"
        );
        let exec = crate::exec::Executor::new(&cat).with_optimize(false);
        let base = exec.execute_table(&plan).unwrap();
        let opt = exec.execute_table(&optimized).unwrap();
        assert_eq!(base.len(), opt.len());
    }

    #[test]
    fn fused_projection_prunes_join_inputs() {
        let cat = chain_catalog();
        let plan = chain_plan().project_cols(&[2, 6], &["v", "u"]);
        let optimized = optimize(&plan, &cat);
        let lookup = |n: &str| cat.schema_of(n);
        assert_eq!(optimized.schema(&lookup).unwrap().names(), vec!["v", "u"]);
        // b contributes no output columns beyond its join key, so its
        // 2-wide scan is pruned to just that key.
        let text = explain(&optimized);
        assert!(text.contains("Project"), "pruned leaves project:\n{text}");
        let exec = crate::exec::Executor::new(&cat).with_optimize(false);
        let mut base = exec.execute_table(&plan).unwrap();
        let mut opt = exec.execute_table(&optimized).unwrap();
        base.sort_by_cols(&[0, 1]);
        opt.sort_by_cols(&[0, 1]);
        assert_eq!(format!("{:?}", base.rows()), format!("{:?}", opt.rows()));
    }

    #[test]
    fn cost_orders_plans_by_intermediate_size() {
        let cat = chain_catalog();
        // Joining 2-row c first shrinks the intermediate result; the worst
        // left-deep order pays the full a ⋈ b blow-up.
        let good = Plan::scan("a")
            .hash_join(Plan::scan("c"), vec![1], vec![0])
            .hash_join(Plan::scan("b"), vec![0], vec![0]);
        let bad = chain_plan();
        assert!(cost(&good, &cat).unwrap() < cost(&bad, &cat).unwrap());
    }

    #[test]
    fn unknown_tables_fall_back_to_defaults() {
        let cat = Catalog::new();
        assert!(estimate(&Plan::scan("missing"), &cat).is_err());
        // optimize is fail-safe: the broken plan comes back unchanged.
        let plan = Plan::scan("missing").hash_join(Plan::scan("also_missing"), vec![0], vec![0]);
        let optimized = optimize(&plan, &cat);
        assert_eq!(explain(&optimized), explain(&plan));
    }
}
