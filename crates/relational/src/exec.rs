//! The plan executor.
//!
//! Executes [`Plan`] trees bottom-up, materializing a [`Table`] per
//! operator (set-oriented execution, like the SQL engines the paper runs
//! on). Every node records its own wall-clock time and output cardinality
//! so `EXPLAIN ANALYZE`-style output (Figure 4) can be rendered from any
//! execution.
//!
//! ## Morsel-driven parallelism
//!
//! With [`Executor::with_threads`] > 1 (default: the `PROBKB_THREADS`
//! environment variable, read once per process), operators over inputs of
//! at least [`Executor::with_parallel_threshold`] rows run on a fork-join
//! pool instead of the caller's thread:
//!
//! * **Hash join** — the build side is partitioned by key hash so every
//!   distinct key lives wholly in one partition; partitions are built
//!   concurrently, then probe-side chunks are scanned in parallel with
//!   per-chunk outputs concatenated in chunk order.
//! * **Aggregate** — each worker folds its chunk into a partial group map;
//!   partials are merged in chunk order. Only exact / order-insensitive
//!   aggregates (COUNT, integer SUM, MIN, MAX) take this path — float SUM
//!   and AVG accumulate in IEEE-754 addition order, which is not
//!   associative, so they stay serial.
//! * **Filter / Project** — chunked row maps, outputs in chunk order.
//!
//! Because chunking is contiguous and concatenation preserves chunk order,
//! every parallel operator produces rows in **exactly** the order the
//! serial path does: same-seed runs are byte-identical at any thread
//! count. The differential suite in `tests/proptest_parallel.rs` holds
//! this line.

use std::collections::hash_map::Entry;

use probkb_support::hash::{fx_map_with_capacity, FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use probkb_pager::buffer::BufferStats;
use probkb_support::sync::{default_threads, map_chunks, map_indices};

use crate::btree_index::BTreeIndex;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::index::HashIndex;
use crate::optimizer;
use crate::plan::{AggExpr, AggFunc, BuildSide, JoinKind, Plan};
use crate::schema::Schema;
use crate::spill::StorageContext;
use crate::table::{Row, Table};
use crate::value::Value;

/// Joins whose build keys turned out to be all-`Int` and took the dense
/// `[i64; 3]` fast path instead of hashing boxed `Vec<Value>` keys.
static DENSE_INT_JOINS: AtomicU64 = AtomicU64::new(0);
/// Probe blocks whose join keys were read straight out of dense `u32`
/// id columns of a decoded chunk (no `Value` boxing on the probe path).
static DENSE_U32_PROBE_BLOCKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of serial inner joins that engaged the dense
/// integer-key fast path. Monotonic; used by regression tests to assert
/// the id-interned grounding joins stay on the unboxed path.
pub fn dense_int_join_count() -> u64 {
    DENSE_INT_JOINS.load(Ordering::Relaxed)
}

/// Process-wide count of probe blocks served from dense `u32` id
/// columns without materializing `Value`s for key extraction.
pub fn dense_u32_probe_block_count() -> u64 {
    DENSE_U32_PROBE_BLOCKS.load(Ordering::Relaxed)
}

/// Per-node execution statistics, mirroring the plan tree.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Operator description (e.g. `Seq Scan on TPi`).
    pub description: String,
    /// Rows produced by this node.
    pub rows_out: usize,
    /// Rows the planner estimated this node would produce, annotated
    /// after execution so `EXPLAIN ANALYZE` can show `est=` next to
    /// `rows=` and make misestimates visible.
    pub est_rows: usize,
    /// Time spent in this node's own operator work, excluding children.
    pub elapsed: Duration,
    /// Wall-clock time of this node *including* its children, measured by
    /// a single timer spanning the node's whole execution. This is what
    /// [`ExecMetrics::total_elapsed`] reports: summing child times would
    /// double-count children that ran concurrently.
    pub wall: Duration,
    /// Worker threads that executed this node (1 = serial path).
    pub workers: usize,
    /// Per-worker busy time when `workers > 1`, in chunk order.
    pub worker_elapsed: Vec<Duration>,
    /// Buffer-pool activity during this node's execution (children
    /// included, like [`ExecMetrics::wall`]): pages pinned, cache
    /// hits/misses, evictions, and bytes spilled to disk. `None` when
    /// the catalog has no out-of-core storage configured.
    pub buffer: Option<BufferStats>,
    /// Child metrics, in plan order.
    pub children: Vec<ExecMetrics>,
}

impl ExecMetrics {
    /// Total time including children: the wall-clock of the single timer
    /// that spanned this node's execution. Not a sum over the tree —
    /// concurrent children overlap in time, and adding their individual
    /// clocks would count the overlap twice.
    pub fn total_elapsed(&self) -> Duration {
        self.wall
    }

    /// Visit every node depth-first.
    pub fn visit(&self, f: &mut dyn FnMut(&ExecMetrics, usize)) {
        fn go(node: &ExecMetrics, depth: usize, f: &mut dyn FnMut(&ExecMetrics, usize)) {
            f(node, depth);
            for c in &node.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }
}

/// Parallelism telemetry for one operator: how many workers ran and how
/// long each was busy. The serial path reports one worker and no per-
/// worker breakdown.
struct Par {
    workers: usize,
    worker_elapsed: Vec<Duration>,
}

impl Par {
    fn serial() -> Par {
        Par {
            workers: 1,
            worker_elapsed: Vec::new(),
        }
    }
}

/// A prebuilt index usable by the join fast path: in-memory hash or
/// disk-resident B-tree. Both return match positions in ascending row
/// order, so either one reproduces the hash-join output exactly.
enum SideIndex {
    Hash(Arc<HashIndex>),
    BTree(Arc<BTreeIndex>),
}

/// A join input resolved to a catalog table with a usable prebuilt index:
/// the index's key columns match the join keys (mapped through `cols`
/// when the input is a pruned projection over the scan).
struct IndexedSide {
    name: String,
    table: Arc<Table>,
    index: SideIndex,
    /// Output-position → base-column map for a projected scan; `None`
    /// for a bare scan (identity).
    cols: Option<Vec<usize>>,
    /// Key-pair permutation that sorts this side's key columns into the
    /// index's (ascending) column order; applied to the probe keys so the
    /// pairs stay aligned.
    perm: Vec<usize>,
}

/// Either a shared snapshot (scans) or an operator-owned table.
enum Batch {
    Shared(Arc<Table>),
    Owned(Table),
}

impl Batch {
    fn table(&self) -> &Table {
        match self {
            Batch::Shared(t) => t,
            Batch::Owned(t) => t,
        }
    }

    fn into_table(self) -> Table {
        match self {
            Batch::Shared(t) => (*t).clone(),
            Batch::Owned(t) => t,
        }
    }
}

/// Below this many input rows an operator stays serial: forking threads
/// costs more than the scan itself. Chosen from the `joins` thread-scaling
/// microbench; tests set 0 via [`Executor::with_parallel_threshold`] to
/// force the parallel path on tiny inputs.
const PARALLEL_THRESHOLD: usize = 256;

/// Executes plans against a catalog.
///
/// `threads` > 1 enables the morsel-driven parallel operators (see the
/// module docs) for inputs of at least `parallel_threshold` rows. The
/// default budget is read once per process from `PROBKB_THREADS` (unset →
/// 1, the serial engine). Results are identical to serial execution at
/// any thread count.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    threads: usize,
    parallel_threshold: usize,
    optimize: bool,
    /// The catalog's storage context at construction time; drives the
    /// per-node buffer-pool deltas in [`ExecMetrics::buffer`].
    storage: Option<Arc<StorageContext>>,
}

impl<'a> Executor<'a> {
    /// Build an executor over a catalog with the process-default thread
    /// budget (`PROBKB_THREADS`, read once; unset → serial) and the
    /// process-default optimizer setting (`PROBKB_OPTIMIZE`, read once;
    /// unset → on).
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor {
            catalog,
            threads: default_threads(),
            parallel_threshold: PARALLEL_THRESHOLD,
            optimize: optimizer::default_optimize(),
            storage: catalog.spill_policy().map(|p| p.ctx),
        }
    }

    /// Set the worker-thread budget. `0` is clamped to `1` (serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable the cost-based optimizer pass for this executor.
    /// Disabled, plans run exactly as written — the differential oracle
    /// the plan-equivalence tests compare against.
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Set the minimum input rows before an operator goes parallel.
    /// Differential tests set this to 0 so small randomized tables still
    /// exercise the parallel path.
    pub fn with_parallel_threshold(mut self, rows: usize) -> Self {
        self.parallel_threshold = rows;
        self
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers to use for an operator over `rows` input rows.
    fn workers_for(&self, rows: usize) -> usize {
        if self.threads > 1 && rows > 0 && rows >= self.parallel_threshold {
            self.threads
        } else {
            1
        }
    }

    /// Pick the build side for an inner join whose plan left it on `Auto`.
    /// With the optimizer enabled this consults table statistics — the
    /// estimated cardinality of each child plan — falling back to the
    /// materialized row counts when no estimate is available; with the
    /// optimizer off it is the old smaller-materialized-input heuristic.
    fn auto_build_on_left(&self, left: &Plan, right: &Plan, lt: &Table, rt: &Table) -> bool {
        if self.optimize {
            if let (Ok(le), Ok(re)) = (
                optimizer::estimate(left, self.catalog),
                optimizer::estimate(right, self.catalog),
            ) {
                return le.rows <= re.rows;
            }
        }
        lt.len() <= rt.len()
    }

    /// Execute a plan, returning the result and per-node metrics.
    ///
    /// With [`Executor::with_optimize`] enabled (the default), the plan
    /// first goes through [`optimizer::optimize`] — join reordering,
    /// build-side selection, and filter/projection pushdown — before
    /// execution. Either way the metrics tree is annotated with the
    /// planner's cardinality estimates (`est_rows`).
    pub fn execute(&self, plan: &Plan) -> Result<(Table, ExecMetrics)> {
        let optimized;
        let plan = if self.optimize {
            optimized = optimizer::optimize(plan, self.catalog);
            &optimized
        } else {
            plan
        };
        let (batch, mut metrics) = self.run(plan)?;
        optimizer::annotate_estimates(&mut metrics, plan, self.catalog);
        Ok((batch.into_table(), metrics))
    }

    /// Execute a plan, returning only the result table.
    pub fn execute_table(&self, plan: &Plan) -> Result<Table> {
        Ok(self.execute(plan)?.0)
    }

    fn run(&self, plan: &Plan) -> Result<(Batch, ExecMetrics)> {
        // One timer spans the whole node, children included — the only
        // double-count-free way to report total time once children can
        // run concurrently. Buffer-pool counters get the same spanning
        // treatment: each node reports the delta over its subtree.
        let entry = Instant::now();
        let before = self.storage.as_ref().map(|s| s.stats());
        let (batch, mut metrics) = self.run_node(plan)?;
        metrics.wall = entry.elapsed();
        if let Some(before) = before {
            let after = self.storage.as_ref().expect("storage unset mid-run").stats();
            metrics.buffer = Some(after.since(&before));
        }
        Ok((batch, metrics))
    }

    fn run_node(&self, plan: &Plan) -> Result<(Batch, ExecMetrics)> {
        match plan {
            Plan::Scan { table } => {
                let start = Instant::now();
                let t = self.catalog.get(table)?;
                let rows_out = t.len();
                Ok((
                    Batch::Shared(t),
                    leaf_metrics(plan, rows_out, start.elapsed()),
                ))
            }
            Plan::Values { table } => Ok((
                Batch::Owned(table.clone()),
                leaf_metrics(plan, table.len(), Duration::ZERO),
            )),
            Plan::Filter { input, predicate } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let src = batch.table();
                let workers = self.workers_for(src.len());
                let (rows, par) = try_par_map_table(src, workers, |part| {
                    let mut out = Vec::new();
                    for row in part {
                        if predicate.eval(row)?.is_truthy() {
                            out.push(row.clone());
                        }
                    }
                    Ok(out)
                })?;
                let table = Table::from_rows_unchecked(src.schema().clone(), rows);
                Ok(self.done(plan, table, start, par, vec![child]))
            }
            Plan::Project { input, exprs } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let src = batch.table();
                let lookup = |name: &str| self.catalog.schema_of(name);
                let schema = plan.schema(&lookup)?;
                let workers = self.workers_for(src.len());
                let (rows, par) = try_par_map_table(src, workers, |part| {
                    let mut out = Vec::with_capacity(part.len());
                    for row in part {
                        let mut r = Vec::with_capacity(exprs.len());
                        for (e, _) in exprs {
                            r.push(e.eval(row)?);
                        }
                        out.push(r);
                    }
                    Ok(out)
                })?;
                let table = Table::from_rows_unchecked(schema, rows);
                Ok(self.done(plan, table, start, par, vec![child]))
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                build,
            } => {
                if left_keys.len() != right_keys.len() {
                    return Err(Error::InvalidPlan(format!(
                        "join key arity mismatch: {} vs {}",
                        left_keys.len(),
                        right_keys.len()
                    )));
                }
                // Index-join fast path: when a side is a (projected) scan
                // of a table with a prebuilt index on exactly these join
                // keys, probe the index with the other side instead of
                // re-hashing the scanned table. This overrides the plan's
                // build-side choice — a prebuilt hash costs nothing.
                if *kind == JoinKind::Inner {
                    let li = self.indexed_side(left, left_keys);
                    let ri = self.indexed_side(right, right_keys);
                    let pick = match (li, ri) {
                        (Some(l), Some(r)) => {
                            // Both indexed: probe into the larger one.
                            if l.table.len() >= r.table.len() {
                                Some((true, l))
                            } else {
                                Some((false, r))
                            }
                        }
                        (Some(l), None) => Some((true, l)),
                        (None, Some(r)) => Some((false, r)),
                        (None, None) => None,
                    };
                    if let Some((build_on_left, side)) = pick {
                        return self.index_join(
                            plan,
                            left,
                            right,
                            left_keys,
                            right_keys,
                            build_on_left,
                            side,
                        );
                    }
                }
                let (lb, lm) = self.run(left)?;
                let (rb, rm) = self.run(right)?;
                let start = Instant::now();
                let lt = lb.table();
                let rt = rb.table();
                let build_on_left = match build {
                    BuildSide::Left => true,
                    BuildSide::Right => false,
                    BuildSide::Auto => self.auto_build_on_left(left, right, lt, rt),
                };
                let probe_len = match kind {
                    JoinKind::Inner => lt.len().max(rt.len()),
                    JoinKind::LeftSemi | JoinKind::LeftAnti => lt.len(),
                };
                let workers = self.workers_for(probe_len);
                let (table, par) = if workers > 1 {
                    par_hash_join(lt, rt, left_keys, right_keys, *kind, build_on_left, workers)
                } else {
                    (
                        hash_join_build(lt, rt, left_keys, right_keys, *kind, build_on_left),
                        Par::serial(),
                    )
                };
                Ok(self.done(plan, table, start, par, vec![lm, rm]))
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let lookup = |name: &str| self.catalog.schema_of(name);
                let schema = plan.schema(&lookup)?;
                let src = batch.table();
                let workers = self.workers_for(src.len());
                let (table, par) = if workers > 1 && aggs_order_insensitive(src, aggs) {
                    par_aggregate_table(src, group_by, aggs, schema, workers)?
                } else {
                    (aggregate_table(src, group_by, aggs, schema)?, Par::serial())
                };
                Ok(self.done(plan, table, start, par, vec![child]))
            }
            Plan::Distinct { input } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let mut table = batch.into_table();
                table.dedup_rows();
                Ok(self.done(plan, table, start, Par::serial(), vec![child]))
            }
            Plan::UnionAll { left, right } => {
                let (lb, lm) = self.run(left)?;
                let (rb, rm) = self.run(right)?;
                let start = Instant::now();
                let lt = lb.table();
                let rt = rb.table();
                if lt.schema().width() != rt.schema().width() {
                    return Err(Error::InvalidPlan(format!(
                        "UNION ALL width mismatch: {} vs {}",
                        lt.schema().width(),
                        rt.schema().width()
                    )));
                }
                let mut table = lb.into_table();
                table.extend_from(rb.into_table());
                Ok(self.done(plan, table, start, Par::serial(), vec![lm, rm]))
            }
            Plan::Sort { input, keys } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let mut table = batch.into_table();
                table.sort_by_cols(keys);
                Ok(self.done(plan, table, start, Par::serial(), vec![child]))
            }
            Plan::Limit { input, n } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let src = batch.table();
                let mut rows: Vec<Row> = Vec::with_capacity((*n).min(src.len()));
                'blocks: for block in src.blocks() {
                    for row in block.rows() {
                        if rows.len() >= *n {
                            break 'blocks;
                        }
                        rows.push(row.clone());
                    }
                }
                let table = Table::from_rows_unchecked(src.schema().clone(), rows);
                Ok(self.done(plan, table, start, Par::serial(), vec![child]))
            }
        }
    }

    /// Resolve a join input to a catalog table with a usable prebuilt
    /// index on the given (input-local) join key columns. Eligible inputs
    /// are a bare [`Plan::Scan`] or a pure-column [`Plan::Project`]
    /// directly over one — the shape the optimizer's leaf pruning emits —
    /// with the key columns mapped back to base-table positions.
    fn indexed_side(&self, plan: &Plan, keys: &[usize]) -> Option<IndexedSide> {
        let (name, cols) = match plan {
            Plan::Scan { table } => (table.as_str(), None),
            Plan::Project { input, exprs } => {
                let Plan::Scan { table } = input.as_ref() else {
                    return None;
                };
                let mut map = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    match e {
                        Expr::Col(c) => map.push(*c),
                        _ => return None,
                    }
                }
                (table.as_str(), Some(map))
            }
            _ => return None,
        };
        let table = self.catalog.get(name).ok()?;
        let base_keys: Vec<usize> = keys
            .iter()
            .map(|&k| match &cols {
                Some(m) => m.get(k).copied(),
                None => Some(k),
            })
            .collect::<Option<Vec<usize>>>()?;
        // Equality conjunctions are order-insensitive: canonicalize to the
        // index's ascending column order so any key permutation matches.
        let mut perm: Vec<usize> = (0..base_keys.len()).collect();
        perm.sort_by_key(|&i| base_keys[i]);
        let sorted_keys: Vec<usize> = perm.iter().map(|&i| base_keys[i]).collect();
        // Defensive freshness checks; the catalog should never serve a
        // stale index, but a wrong join result is never worth the risk.
        // A hash index must cover the snapshot exactly. A B-tree index
        // may run ahead of the snapshot (a concurrent append extends it
        // in place) — the probe filters positions back to the snapshot —
        // but must never lag behind it.
        let index = match self.catalog.index_on(name, &sorted_keys) {
            Some(h) if h.rows_indexed() == table.len() => SideIndex::Hash(h),
            _ => match self.catalog.btree_index_on(name, &sorted_keys) {
                Some(b) if b.rows_indexed() >= table.len() => SideIndex::BTree(b),
                _ => return None,
            },
        };
        Some(IndexedSide {
            name: name.to_string(),
            table,
            index,
            cols,
            perm,
        })
    }

    /// Inner join where `side` (the build input) is served by a prebuilt
    /// index: the probe input executes normally and each probe row looks
    /// up its matches. Output rows, layout (`left ++ right`), and order
    /// are identical to the hash-join path with the same build side —
    /// posting lists hold row positions in ascending order, exactly the
    /// insertion order of a freshly built hash table.
    #[allow(clippy::too_many_arguments)]
    fn index_join(
        &self,
        plan: &Plan,
        left: &Plan,
        right: &Plan,
        left_keys: &[usize],
        right_keys: &[usize],
        build_on_left: bool,
        side: IndexedSide,
    ) -> Result<(Batch, ExecMetrics)> {
        let (probe_plan, probe_keys, build_plan) = if build_on_left {
            (right, right_keys, left)
        } else {
            (left, left_keys, right)
        };
        let (pb, pm) = self.run(probe_plan)?;
        let start = Instant::now();
        let probe = pb.table();
        let lookup = |name: &str| self.catalog.schema_of(name);
        let build_schema = build_plan.schema(&lookup)?;
        let schema = if build_on_left {
            build_schema.join(probe.schema())
        } else {
            probe.schema().join(&build_schema)
        };
        let width = schema.width();
        let probe_cols: Vec<usize> = side.perm.iter().map(|&i| probe_keys[i]).collect();
        let snapshot_len = side.table.len();
        let workers = self.workers_for(probe.len());
        let (rows, par) = try_par_map_table(probe, workers, |chunk| {
            // One positional reader per chunk: spilled build tables are
            // paged in one columnar chunk at a time instead of being
            // materialized wholesale.
            let mut reader = side.table.row_reader();
            let mut emit_build = |bi: usize, out: &mut Row| {
                let base = reader.row(bi);
                match &side.cols {
                    Some(cols) => {
                        for &c in cols {
                            out.push(base[c].clone());
                        }
                    }
                    None => out.extend_from_slice(base),
                }
            };
            let mut out = Vec::new();
            let mut btree_matches;
            for prow in chunk {
                let matches: &[usize] = match &side.index {
                    SideIndex::Hash(h) => h.probe(prow, &probe_cols),
                    SideIndex::BTree(b) => {
                        btree_matches = b.probe(prow, &probe_cols)?;
                        // The tree may index rows appended after this
                        // snapshot; they are invisible to this query.
                        btree_matches.retain(|&bi| bi < snapshot_len);
                        &btree_matches
                    }
                };
                for &bi in matches {
                    let mut row: Row = Vec::with_capacity(width);
                    if build_on_left {
                        emit_build(bi, &mut row);
                        row.extend_from_slice(prow);
                    } else {
                        row.extend_from_slice(prow);
                        emit_build(bi, &mut row);
                    }
                    out.push(row);
                }
            }
            Ok(out)
        })?;
        let table = Table::from_rows_unchecked(schema, rows);
        let build_metrics = ExecMetrics {
            description: format!("Index Probe on {}", side.name),
            rows_out: 0,
            est_rows: 0,
            elapsed: Duration::ZERO,
            wall: Duration::ZERO,
            workers: 1,
            worker_elapsed: Vec::new(),
            buffer: None,
            children: vec![],
        };
        let children = if build_on_left {
            vec![build_metrics, pm]
        } else {
            vec![pm, build_metrics]
        };
        let metrics = ExecMetrics {
            description: format!("{} [index: {}]", plan.describe(), side.name),
            rows_out: table.len(),
            est_rows: 0,
            elapsed: start.elapsed(),
            wall: Duration::ZERO, // set by `run` from the node-entry timer
            workers: par.workers,
            worker_elapsed: par.worker_elapsed,
            buffer: None, // filled by `run` from the spanning delta
            children,
        };
        Ok((Batch::Owned(table), metrics))
    }

    fn done(
        &self,
        plan: &Plan,
        table: Table,
        start: Instant,
        par: Par,
        children: Vec<ExecMetrics>,
    ) -> (Batch, ExecMetrics) {
        let metrics = ExecMetrics {
            description: plan.describe(),
            rows_out: table.len(),
            est_rows: 0, // annotated by `execute` from the plan estimates
            elapsed: start.elapsed(),
            wall: Duration::ZERO, // set by `run` from the node-entry timer
            workers: par.workers,
            worker_elapsed: par.worker_elapsed,
            buffer: None, // filled by `run` from the spanning delta
            children,
        };
        (Batch::Owned(table), metrics)
    }
}

fn leaf_metrics(plan: &Plan, rows_out: usize, elapsed: Duration) -> ExecMetrics {
    ExecMetrics {
        description: plan.describe(),
        rows_out,
        est_rows: 0, // annotated by `execute` from the plan estimates
        elapsed,
        wall: Duration::ZERO, // set by `run` from the node-entry timer
        workers: 1,
        worker_elapsed: Vec::new(),
        buffer: None, // filled by `run` from the spanning delta
        children: vec![],
    }
}

/// Chunked fallible row map: run `f` over contiguous row chunks on up to
/// `workers` threads, concatenating per-chunk outputs in chunk order (so
/// the result is row-for-row identical to a serial pass) and recording
/// each worker's busy time.
fn try_par_map_rows<F>(rows: &[Row], workers: usize, f: F) -> Result<(Vec<Row>, Par)>
where
    F: Fn(&[Row]) -> Result<Vec<Row>> + Sync,
{
    let chunks = map_chunks(rows, workers, |_, part| {
        let busy = Instant::now();
        let out = f(part);
        vec![(out, busy.elapsed())]
    });
    let mut out = Vec::with_capacity(rows.len());
    let mut worker_elapsed = Vec::with_capacity(chunks.len());
    for (result, busy) in chunks {
        out.extend(result?);
        worker_elapsed.push(busy);
    }
    let workers = worker_elapsed.len().max(1);
    Ok((
        out,
        Par {
            workers,
            worker_elapsed,
        },
    ))
}

/// [`try_par_map_rows`] over a whole table, streamed block by block so
/// spilled inputs never materialize more than one decoded chunk at a
/// time. An in-memory table is a single block, making this byte- and
/// telemetry-identical to the historical whole-slice call; for a paged
/// table the per-block outputs (and worker clocks) concatenate in block
/// order, which is insertion order.
fn try_par_map_table<F>(table: &Table, workers: usize, f: F) -> Result<(Vec<Row>, Par)>
where
    F: Fn(&[Row]) -> Result<Vec<Row>> + Sync,
{
    let mut out = Vec::new();
    let mut worker_elapsed = Vec::new();
    for block in table.blocks() {
        let (rows, par) = try_par_map_rows(block.rows(), workers, &f)?;
        out.extend(rows);
        worker_elapsed.extend(par.worker_elapsed);
    }
    let workers = worker_elapsed.len().max(1);
    Ok((
        out,
        Par {
            workers,
            worker_elapsed,
        },
    ))
}

/// Infallible sibling of [`try_par_map_table`] for operators whose row
/// closures cannot error (joins).
fn par_map_table<F>(table: &Table, workers: usize, f: F) -> (Vec<Row>, Par)
where
    F: Fn(&[Row]) -> Vec<Row> + Sync,
{
    try_par_map_table(table, workers, |part| Ok(f(part))).expect("infallible row map")
}

/// Hash of a join key, used to route rows to build partitions.
/// [`FxHasher`] has no per-instance random state, so partition routing
/// is deterministic across runs, platforms, and thread counts.
fn key_hash(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// One hash table per build partition; a key's partition is
/// `key_hash % len`, so every distinct key lives wholly in one partition.
type BuildPartitions = Vec<FxHashMap<Vec<Value>, Vec<usize>>>;

/// Partition the build side of a join by key hash and build the
/// per-partition hash tables concurrently. Row indices within each table
/// stay in global row order, preserving the serial join's match order.
fn build_partitions(build: &Table, keys: &[usize], workers: usize) -> BuildPartitions {
    let nparts = workers.max(1);
    // Pass 1 (parallel): route each row to a partition. NULL keys never
    // equi-match, so they are dropped here, exactly as the serial build
    // skips them.
    let part_of: Vec<usize> = map_chunks(build.rows(), workers, |_, chunk| {
        chunk
            .iter()
            .map(|row| {
                let key = Table::key_of(row, keys);
                if key.iter().any(Value::is_null) {
                    usize::MAX
                } else {
                    (key_hash(&key) % nparts as u64) as usize
                }
            })
            .collect()
    });
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); nparts];
    for (i, &p) in part_of.iter().enumerate() {
        if p != usize::MAX {
            buckets[p].push(i);
        }
    }
    // Pass 2 (parallel): one hash table per partition.
    map_indices(nparts, workers, |p| {
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = fx_map_with_capacity(buckets[p].len());
        for &i in &buckets[p] {
            map.entry(Table::key_of(&build.rows()[i], keys))
                .or_default()
                .push(i);
        }
        map
    })
}

fn partition_lookup<'p>(parts: &'p BuildPartitions, key: &[Value]) -> Option<&'p Vec<usize>> {
    let p = (key_hash(key) % parts.len() as u64) as usize;
    parts[p].get(key)
}

/// Morsel-driven parallel hash join. The caller passes the inner-join
/// build side (semi/anti always build on the right); NULL-key semantics
/// match [`hash_join`], and chunk-ordered probe concatenation makes the
/// output row-for-row identical to the serial path.
fn par_hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    build_on_left: bool,
    workers: usize,
) -> (Table, Par) {
    match kind {
        JoinKind::Inner => {
            let (build, build_keys, probe, probe_keys) = if build_on_left {
                (left, left_keys, right, right_keys)
            } else {
                (right, right_keys, left, left_keys)
            };
            let parts = build_partitions(build, build_keys, workers);
            let schema = left.schema().join(right.schema());
            let (rows, par) = par_map_table(probe, workers, |chunk| {
                let mut out = Vec::new();
                for prow in chunk {
                    let key = Table::key_of(prow, probe_keys);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = partition_lookup(&parts, &key) {
                        for &bi in matches {
                            // Output layout is always `left ++ right`.
                            if build_on_left {
                                let mut row = build.rows()[bi].clone();
                                row.extend_from_slice(prow);
                                out.push(row);
                            } else {
                                let mut row = prow.clone();
                                row.extend_from_slice(&build.rows()[bi]);
                                out.push(row);
                            }
                        }
                    }
                }
                out
            });
            (Table::from_rows_unchecked(schema, rows), par)
        }
        JoinKind::LeftSemi | JoinKind::LeftAnti => {
            let parts = build_partitions(right, right_keys, workers);
            let want_match = kind == JoinKind::LeftSemi;
            let (rows, par) = par_map_table(left, workers, |chunk| {
                let mut out = Vec::new();
                for lrow in chunk {
                    let key = Table::key_of(lrow, left_keys);
                    let matched = !key.iter().any(Value::is_null)
                        && partition_lookup(&parts, &key).is_some();
                    if matched == want_match {
                        out.push(lrow.clone());
                    }
                }
                out
            });
            (Table::from_rows_unchecked(left.schema().clone(), rows), par)
        }
    }
}

/// Multi-key hash equi-join with the default build-side heuristic: for
/// inner joins the hash table is built on whichever input has fewer
/// *materialized* rows. Note this is a fallback, not a cost-based choice —
/// the executor's plan-aware path ([`Plan::HashJoin`]'s `build` field plus
/// statistics-based `Auto` resolution) picks the side from cardinality
/// estimates and only degenerates to this heuristic when no estimates
/// exist. Rows with a NULL in any key column never match (SQL semantics).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
) -> Table {
    hash_join_build(
        left,
        right,
        left_keys,
        right_keys,
        kind,
        left.len() <= right.len(),
    )
}

/// [`hash_join`] with an explicit inner-join build side (`build_on_left`;
/// ignored for semi/anti joins, which always build on the right). The
/// output row layout is always `left ++ right` regardless of which side
/// the hash table is built on.
fn hash_join_build(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
    build_on_left: bool,
) -> Table {
    match kind {
        JoinKind::Inner => {
            let schema = left.schema().join(right.schema());
            if build_on_left {
                serial_inner_join(left, right, left_keys, right_keys, true, schema)
            } else {
                serial_inner_join(right, left, right_keys, left_keys, false, schema)
            }
        }
        JoinKind::LeftSemi | JoinKind::LeftAnti => {
            let mut build: FxHashMap<Vec<Value>, Vec<usize>> =
                fx_map_with_capacity(right.len());
            let mut i = 0usize;
            for block in right.blocks() {
                for row in block.rows() {
                    let key = Table::key_of(row, right_keys);
                    if !key.iter().any(Value::is_null) {
                        build.entry(key).or_default().push(i);
                    }
                    i += 1;
                }
            }
            let want_match = kind == JoinKind::LeftSemi;
            let mut rows = Vec::new();
            for block in left.blocks() {
                for lrow in block.rows() {
                    let key = Table::key_of(lrow, left_keys);
                    let matched =
                        !key.iter().any(Value::is_null) && build.contains_key(&key);
                    if matched == want_match {
                        rows.push(lrow.clone());
                    }
                }
            }
            Table::from_rows_unchecked(left.schema().clone(), rows)
        }
    }
}

/// Join keys the dense fast path can carry inline.
const DENSE_KEY_ARITY: usize = 3;

/// Try to build the inner-join hash table with inline `[i64; 3]` keys:
/// succeeds when every build-side key value is `Int` (NULL rows are
/// skipped, exactly like the generic build). Returns `None` — fall back
/// to boxed `Vec<Value>` keys — on any other type. `Value` equality is
/// strictly typed (`Int(2) != Float(2.0)`), so when this map exists a
/// non-`Int` probe value can never match and the fast path is
/// result-identical to the generic one.
fn dense_int_build(rows: &[Row], keys: &[usize]) -> Option<FxHashMap<[i64; 3], Vec<usize>>> {
    if keys.is_empty() || keys.len() > DENSE_KEY_ARITY {
        return None;
    }
    let mut map: FxHashMap<[i64; 3], Vec<usize>> = fx_map_with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        match dense_key(row, keys) {
            DenseKey::Key(k) => map.entry(k).or_default().push(i),
            DenseKey::Null => {}
            DenseKey::NotInt => return None,
        }
    }
    Some(map)
}

enum DenseKey {
    Key([i64; 3]),
    /// A NULL in a key column: the row never equi-matches.
    Null,
    /// A non-integer key value.
    NotInt,
}

fn dense_key(row: &[Value], keys: &[usize]) -> DenseKey {
    let mut k = [0i64; 3];
    for (j, &c) in keys.iter().enumerate() {
        match &row[c] {
            Value::Int(v) => k[j] = *v,
            Value::Null => return DenseKey::Null,
            _ => return DenseKey::NotInt,
        }
    }
    DenseKey::Key(k)
}

/// Serial inner join with the build/probe roles already assigned.
/// Output layout is `left ++ right`; `build_is_left` says which side of
/// the output the build row lands on. When the build keys are all
/// integers (the id-interned grounding case) the hash table uses inline
/// `[i64; 3]` keys, and probe blocks that expose dense `u32` id columns
/// are keyed straight from the column arrays — no `Value` clone or hash
/// of boxed keys anywhere on the probe path.
fn serial_inner_join(
    build: &Table,
    probe: &Table,
    build_keys: &[usize],
    probe_keys: &[usize],
    build_is_left: bool,
    schema: Schema,
) -> Table {
    let build_rows = build.rows();
    let mut rows: Vec<Row> = Vec::new();
    let emit = |bi: usize, prow: &[Value], rows: &mut Vec<Row>| {
        if build_is_left {
            let mut out = build_rows[bi].clone();
            out.extend_from_slice(prow);
            rows.push(out);
        } else {
            let mut out = prow.to_vec();
            out.extend_from_slice(&build_rows[bi]);
            rows.push(out);
        }
    };
    if let Some(dense) = dense_int_build(build_rows, build_keys) {
        DENSE_INT_JOINS.fetch_add(1, Ordering::Relaxed);
        for block in probe.blocks() {
            let prows = block.rows();
            let dense_cols: Option<Vec<&[u32]>> =
                probe_keys.iter().map(|&c| block.dense_u32(c)).collect();
            if let Some(cols) = dense_cols {
                // Keys come straight out of the columnar id arrays.
                DENSE_U32_PROBE_BLOCKS.fetch_add(1, Ordering::Relaxed);
                for (i, prow) in prows.iter().enumerate() {
                    let mut k = [0i64; 3];
                    for (j, col) in cols.iter().enumerate() {
                        k[j] = col[i] as i64;
                    }
                    if let Some(matches) = dense.get(&k) {
                        for &bi in matches {
                            emit(bi, prow, &mut rows);
                        }
                    }
                }
            } else {
                for prow in prows {
                    // NULL never matches; non-Int cannot equal an Int
                    // build key, so both probe outcomes are "no match".
                    if let DenseKey::Key(k) = dense_key(prow, probe_keys) {
                        if let Some(matches) = dense.get(&k) {
                            for &bi in matches {
                                emit(bi, prow, &mut rows);
                            }
                        }
                    }
                }
            }
        }
    } else {
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> = fx_map_with_capacity(build_rows.len());
        for (i, row) in build_rows.iter().enumerate() {
            let key = Table::key_of(row, build_keys);
            if !key.iter().any(Value::is_null) {
                map.entry(key).or_default().push(i);
            }
        }
        for block in probe.blocks() {
            for prow in block.rows() {
                let key = Table::key_of(prow, probe_keys);
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = map.get(&key) {
                    for &bi in matches {
                        emit(bi, prow, &mut rows);
                    }
                }
            }
        }
    }
    Table::from_rows_unchecked(schema, rows)
}

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl AggState {
    fn new(func: &AggFunc, input_is_float: bool) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count(_) => AggState::Count(0),
            AggFunc::Sum(_) => {
                if input_is_float {
                    AggState::SumFloat(0.0, false)
                } else {
                    AggState::SumInt(0, false)
                }
            }
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
            AggFunc::Avg(_) => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, func: &AggFunc, row: &Row) {
        match (self, func) {
            (AggState::Count(n), AggFunc::CountStar) => *n += 1,
            (AggState::Count(n), AggFunc::Count(c)) => {
                if !row[*c].is_null() {
                    *n += 1;
                }
            }
            (AggState::SumInt(acc, seen), AggFunc::Sum(c)) => {
                if let Some(v) = row[*c].as_int() {
                    *acc += v;
                    *seen = true;
                }
            }
            (AggState::SumFloat(acc, seen), AggFunc::Sum(c)) => {
                if let Some(v) = row[*c].as_float() {
                    *acc += v;
                    *seen = true;
                }
            }
            (AggState::Min(cur), AggFunc::Min(c)) => {
                let v = &row[*c];
                if !v.is_null() && cur.as_ref().is_none_or(|m| v < m) {
                    *cur = Some(v.clone());
                }
            }
            (AggState::Max(cur), AggFunc::Max(c)) => {
                let v = &row[*c];
                if !v.is_null() && cur.as_ref().is_none_or(|m| v > m) {
                    *cur = Some(v.clone());
                }
            }
            (AggState::Avg { sum, n }, AggFunc::Avg(c)) => {
                if let Some(v) = row[*c].as_float() {
                    *sum += v;
                    *n += 1;
                }
            }
            _ => unreachable!("agg state/func mismatch"),
        }
    }

    /// Fold another chunk's partial state (same function) into `self`.
    /// Used by the parallel aggregate's merge step; the float variants
    /// merge too, but the planner never parallelizes them (see
    /// [`aggs_order_insensitive`]) because float addition order changes
    /// the bits.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (AggState::SumInt(acc, seen), AggState::SumInt(b, sb)) => {
                *acc += b;
                *seen |= sb;
            }
            (AggState::SumFloat(acc, seen), AggState::SumFloat(b, sb)) => {
                *acc += b;
                *seen |= sb;
            }
            (AggState::Min(cur), AggState::Min(v)) => {
                if let Some(v) = v {
                    if cur.as_ref().is_none_or(|m| v < *m) {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(v)) => {
                if let Some(v) = v {
                    if cur.as_ref().is_none_or(|m| v > *m) {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Avg { sum, n }, AggState::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            _ => unreachable!("agg state merge mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(v, seen) => {
                if seen {
                    Value::Int(v)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(v, seen) => {
                if seen {
                    Value::Float(v)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Which aggregates read a float column and therefore accumulate in
/// `f64` (SUM only; COUNT/MIN/MAX are type-agnostic).
fn float_sum_inputs(input: &Table, aggs: &[AggExpr]) -> Vec<bool> {
    use crate::value::DataType;
    aggs.iter()
        .map(|a| match a.func {
            AggFunc::Sum(c) => input
                .schema()
                .column(c)
                .map(|col| col.dtype == DataType::Float)
                .unwrap_or(false),
            _ => false,
        })
        .collect()
}

/// True when every aggregate is exact or order-insensitive, so per-chunk
/// partial states can be merged without changing a single bit of the
/// result. Float SUM and AVG accumulate in IEEE-754 addition order, which
/// is not associative — those keep the serial path so same-seed runs stay
/// byte-identical at any thread count.
fn aggs_order_insensitive(input: &Table, aggs: &[AggExpr]) -> bool {
    aggs.iter()
        .zip(float_sum_inputs(input, aggs))
        .all(|(a, is_float)| match a.func {
            AggFunc::Avg(_) => false,
            AggFunc::Sum(_) => !is_float,
            AggFunc::CountStar | AggFunc::Count(_) | AggFunc::Min(_) | AggFunc::Max(_) => true,
        })
}

/// Grouped aggregation over a table, producing `out_schema` rows sorted by
/// group key. Exposed so the MPP executor can run segment-local aggregates.
pub fn aggregate_table(
    input: &Table,
    group_by: &[usize],
    aggs: &[AggExpr],
    out_schema: Schema,
) -> Result<Table> {
    let float_inputs = float_sum_inputs(input, aggs);

    let make_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(float_inputs.iter())
            .map(|(a, &is_f)| AggState::new(&a.func, is_f))
            .collect()
    };

    let mut groups: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
    // A global aggregate (no GROUP BY) must yield one row even on empty
    // input, so seed the single group eagerly.
    if group_by.is_empty() {
        groups.insert(Vec::new(), make_states());
    }
    for block in input.blocks() {
        for row in block.rows() {
            let key = Table::key_of(row, group_by);
            let states = groups.entry(key).or_insert_with(make_states);
            for (state, agg) in states.iter_mut().zip(aggs.iter()) {
                state.update(&agg.func, row);
            }
        }
    }

    Ok(finish_groups(groups, out_schema))
}

/// Parallel grouped aggregation: each worker folds its chunk into a
/// partial group map; partials are merged in chunk order, then finished
/// exactly like [`aggregate_table`] (same empty-group seeding, same
/// sorted output). Only called when [`aggs_order_insensitive`] holds.
fn par_aggregate_table(
    input: &Table,
    group_by: &[usize],
    aggs: &[AggExpr],
    out_schema: Schema,
    workers: usize,
) -> Result<(Table, Par)> {
    let float_inputs = float_sum_inputs(input, aggs);
    let make_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(float_inputs.iter())
            .map(|(a, &is_f)| AggState::new(&a.func, is_f))
            .collect()
    };

    let partials = map_chunks(input.rows(), workers, |_, chunk| {
        let busy = Instant::now();
        let mut groups: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
        for row in chunk {
            let key = Table::key_of(row, group_by);
            let states = groups.entry(key).or_insert_with(&make_states);
            for (state, agg) in states.iter_mut().zip(aggs.iter()) {
                state.update(&agg.func, row);
            }
        }
        vec![(groups, busy.elapsed())]
    });

    let mut groups: FxHashMap<Vec<Value>, Vec<AggState>> = FxHashMap::default();
    if group_by.is_empty() {
        groups.insert(Vec::new(), make_states());
    }
    let mut worker_elapsed = Vec::with_capacity(partials.len());
    for (partial, busy) in partials {
        worker_elapsed.push(busy);
        for (key, states) in partial {
            match groups.entry(key) {
                Entry::Occupied(mut e) => {
                    for (acc, s) in e.get_mut().iter_mut().zip(states) {
                        acc.merge(s);
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(states);
                }
            }
        }
    }
    let workers = worker_elapsed.len().max(1);
    Ok((
        finish_groups(groups, out_schema),
        Par {
            workers,
            worker_elapsed,
        },
    ))
}

/// Finish agg states into output rows, sorted by group key (deterministic
/// output order helps tests and diffing).
fn finish_groups(groups: FxHashMap<Vec<Value>, Vec<AggState>>, out_schema: Schema) -> Table {
    let mut rows: Vec<Row> = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut row = key;
        for state in states {
            row.push(state.finish());
        }
        rows.push(row);
    }
    rows.sort();
    Table::from_rows_unchecked(out_schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggExpr;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let people = Table::from_rows(
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("city", DataType::Int),
                Column::nullable("w", DataType::Float),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Float(0.9)],
                vec![Value::Int(2), Value::Int(10), Value::Null],
                vec![Value::Int(3), Value::Int(20), Value::Float(0.5)],
            ],
        )
        .unwrap();
        let cities = Table::from_rows(
            Schema::ints(&["cid", "country"]),
            vec![
                vec![Value::Int(10), Value::Int(100)],
                vec![Value::Int(20), Value::Int(200)],
            ],
        )
        .unwrap();
        cat.create("people", people).unwrap();
        cat.create("cities", cities).unwrap();
        cat
    }

    #[test]
    fn scan_and_filter() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").filter(Expr::col(1).eq(Expr::lit(10i64)));
        let (out, metrics) = exec.execute(&plan).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(metrics.rows_out, 2);
        assert_eq!(metrics.children[0].rows_out, 3);
    }

    #[test]
    fn inner_join_concatenates() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").hash_join(Plan::scan("cities"), vec![1], vec![0]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().width(), 5);
        // person 1 joined with country 100
        let row = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(1))
            .unwrap();
        assert_eq!(row[4], Value::Int(100));
    }

    #[test]
    fn semi_and_anti_join() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let only10 = Table::from_rows_unchecked(Schema::ints(&["cid"]), vec![vec![Value::Int(10)]]);
        let semi = Plan::scan("people").join(
            Plan::values(only10.clone()),
            vec![1],
            vec![0],
            JoinKind::LeftSemi,
        );
        assert_eq!(exec.execute_table(&semi).unwrap().len(), 2);
        let anti = Plan::scan("people").join(
            Plan::values(only10),
            vec![1],
            vec![0],
            JoinKind::LeftAnti,
        );
        let out = exec.execute_table(&anti).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(3));
        assert_eq!(out.schema().width(), 3); // left schema preserved
    }

    #[test]
    fn null_keys_never_match() {
        let cat = Catalog::new();
        let schema = Schema::new(vec![Column::nullable("k", DataType::Int)]);
        let t = Table::from_rows(
            schema.clone(),
            vec![vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap();
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("t").hash_join(Plan::scan("t"), vec![0], vec![0]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1); // only Int(1) matches itself
    }

    #[test]
    fn null_keys_never_match_in_parallel() {
        let cat = Catalog::new();
        let schema = Schema::new(vec![Column::nullable("k", DataType::Int)]);
        let t = Table::from_rows(
            schema.clone(),
            vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Null]],
        )
        .unwrap();
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat).with_threads(4).with_parallel_threshold(0);
        let plan = Plan::scan("t").hash_join(Plan::scan("t"), vec![0], vec![0]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn aggregate_grouped() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").aggregate(
            vec![1],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Count(2), "nw"),
                AggExpr::new(AggFunc::Min(0), "mn"),
                AggExpr::new(AggFunc::Avg(2), "aw"),
            ],
        );
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 2);
        let g10 = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(10))
            .unwrap();
        assert_eq!(g10[1], Value::Int(2)); // COUNT(*)
        assert_eq!(g10[2], Value::Int(1)); // COUNT(w) skips NULL
        assert_eq!(g10[3], Value::Int(1)); // MIN(id)
        assert_eq!(g10[4], Value::Float(0.9)); // AVG over non-null
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let cat = Catalog::new();
        cat.create("e", Table::empty(Schema::ints(&["a"]))).unwrap();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("e").aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Sum(0), "s"),
                AggExpr::new(AggFunc::Max(0), "m"),
            ],
        );
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
        assert!(out.rows()[0][1].is_null());
        assert!(out.rows()[0][2].is_null());
    }

    #[test]
    fn distinct_union_sort_limit() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let ids = Plan::scan("people").project_cols(&[1], &["city"]);
        let plan = ids
            .clone()
            .union_all(ids)
            .distinct()
            .sort(vec![0])
            .limit(1);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(10));
    }

    #[test]
    fn union_width_mismatch_fails_at_exec() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").union_all(Plan::scan("cities"));
        assert!(exec.execute(&plan).is_err());
    }

    #[test]
    fn join_key_arity_mismatch_rejected() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").hash_join(Plan::scan("cities"), vec![0, 1], vec![0]);
        assert!(matches!(exec.execute(&plan), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn metrics_tree_matches_plan_shape() {
        let cat = catalog();
        // Optimization off: this test pins the metrics tree to the plan as
        // written (the optimizer would push the filter below the join).
        let exec = Executor::new(&cat).with_optimize(false);
        let plan = Plan::scan("people")
            .hash_join(Plan::scan("cities"), vec![1], vec![0])
            .filter(Expr::col(4).gt(Expr::lit(100i64)));
        let (_, metrics) = exec.execute(&plan).unwrap();
        assert!(metrics.description.starts_with("Filter"));
        assert!(metrics.children[0].description.contains("Hash Join"));
        assert_eq!(metrics.children[0].children.len(), 2);
        let mut count = 0;
        metrics.visit(&mut |_, _| count += 1);
        assert_eq!(count, 4);
        assert!(metrics.total_elapsed() >= metrics.elapsed);
        // The node-entry timer spans children: every child's wall fits
        // inside its parent's.
        assert!(metrics.children[0].wall <= metrics.wall);
    }

    #[test]
    fn total_elapsed_uses_single_parent_timer() {
        // Two children that each ran 90ms *concurrently* under a parent
        // whose wall-clock was 100ms. Summing per-node times (the old
        // semantics) would claim 10 + 90 + 90 = 190ms of elapsed time for
        // a node that finished in 100ms; the single parent timer cannot
        // double-count overlap.
        let child = || ExecMetrics {
            description: "child".into(),
            rows_out: 0,
            est_rows: 0,
            elapsed: Duration::from_millis(90),
            wall: Duration::from_millis(90),
            workers: 1,
            worker_elapsed: Vec::new(),
            buffer: None,
            children: vec![],
        };
        let parent = ExecMetrics {
            description: "parent".into(),
            rows_out: 0,
            est_rows: 0,
            elapsed: Duration::from_millis(10),
            wall: Duration::from_millis(100),
            workers: 2,
            worker_elapsed: vec![Duration::from_millis(90); 2],
            buffer: None,
            children: vec![child(), child()],
        };
        assert_eq!(parent.total_elapsed(), Duration::from_millis(100));
        let naive_sum = parent.elapsed
            + parent
                .children
                .iter()
                .map(|c| c.total_elapsed())
                .sum::<Duration>();
        assert!(parent.total_elapsed() < naive_sum);
    }

    #[test]
    fn parallel_execution_matches_serial_and_reports_workers() {
        let cat = Catalog::new();
        let big = Table::from_rows_unchecked(
            Schema::ints(&["k", "v"]),
            (0..300i64)
                .map(|i| vec![Value::Int(i % 17), Value::Int(i)])
                .collect(),
        );
        let dim = Table::from_rows_unchecked(
            Schema::ints(&["k", "tag"]),
            (0..17i64).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect(),
        );
        cat.create("big", big).unwrap();
        cat.create("dim", dim).unwrap();
        let plan = Plan::scan("big")
            .hash_join(Plan::scan("dim"), vec![0], vec![0])
            .aggregate(
                vec![3],
                vec![
                    AggExpr::new(AggFunc::CountStar, "n"),
                    AggExpr::new(AggFunc::Sum(1), "s"),
                ],
            );
        let serial = Executor::new(&cat).with_threads(1).execute_table(&plan).unwrap();
        let (par, metrics) = Executor::new(&cat)
            .with_threads(4)
            .with_parallel_threshold(1)
            .execute(&plan)
            .unwrap();
        assert_eq!(format!("{serial:?}"), format!("{par:?}"));
        // Aggregate and join both engaged multiple workers.
        assert!(metrics.workers > 1, "aggregate should go parallel");
        assert_eq!(metrics.workers, metrics.worker_elapsed.len());
        assert!(metrics.children[0].workers > 1, "join should go parallel");
    }

    #[test]
    fn float_order_sensitive_aggregates_stay_serial() {
        let cat = catalog();
        let plan = Plan::scan("people").aggregate(
            vec![1],
            vec![
                AggExpr::new(AggFunc::Sum(2), "sw"), // float SUM
                AggExpr::new(AggFunc::Avg(2), "aw"),
            ],
        );
        let (out, metrics) = Executor::new(&cat)
            .with_threads(8)
            .with_parallel_threshold(0)
            .execute(&plan)
            .unwrap();
        assert_eq!(metrics.workers, 1, "float SUM/AVG must not parallelize");
        let serial = Executor::new(&cat).with_threads(1).execute_table(&plan).unwrap();
        assert_eq!(format!("{serial:?}"), format!("{out:?}"));
    }

    #[test]
    fn project_computes_expressions() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").project(vec![
            (Expr::col(0), "id"),
            (Expr::col(2).is_null(), "missing_w"),
        ]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.schema().names(), vec!["id", "missing_w"]);
        assert_eq!(out.rows()[1][1], Value::Int(1));
    }

    /// The grounding join probe must take the dense paths: all-int keys
    /// select the `[i64; N]` build map, and probing a *spilled* table
    /// must read keys straight out of the columnar chunks' dense `u32`
    /// arrays without reconstructing `Value`s. Counter deltas prove the
    /// fast paths actually ran — a silent fallback to the generic probe
    /// would still pass every result-equality test.
    #[test]
    fn dense_int_join_probes_spilled_chunks_without_boxing() {
        use crate::spill::{SpillPolicy, StorageContext};
        let cat = Catalog::new();
        let ctx = StorageContext::in_temp(64).unwrap();
        cat.set_spill_policy(Some(SpillPolicy {
            ctx,
            threshold_rows: 1024,
        }));
        let probe = Table::from_rows_unchecked(
            Schema::ints(&["k", "v"]),
            (0..10_000i64).map(|i| vec![Value::Int(i % 97), Value::Int(i)]).collect(),
        );
        let dim = Table::from_rows_unchecked(
            Schema::ints(&["k"]),
            (0..97i64).map(|k| vec![Value::Int(k)]).collect(),
        );
        cat.create("probe", probe).unwrap();
        cat.create("dim", dim).unwrap();
        assert!(cat.get("probe").unwrap().is_spilled());

        let joins_before = dense_int_join_count();
        let blocks_before = dense_u32_probe_block_count();
        // Serial inner join, dim side built, spilled side probed.
        let plan = Plan::scan("probe").hash_join(Plan::scan("dim"), vec![0], vec![0]);
        let out = Executor::new(&cat)
            .with_threads(1)
            .with_optimize(false)
            .execute_table(&plan)
            .unwrap();
        assert_eq!(out.len(), 10_000);
        assert!(
            dense_int_join_count() > joins_before,
            "all-int join keys must select the dense build"
        );
        assert!(
            dense_u32_probe_block_count() >= blocks_before + 2,
            "a 10k-row spilled probe side spans >= 2 dense-u32 chunks"
        );
    }
}
