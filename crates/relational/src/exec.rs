//! The plan executor.
//!
//! Executes [`Plan`] trees bottom-up, materializing a [`Table`] per
//! operator (set-oriented execution, like the SQL engines the paper runs
//! on). Every node records its own wall-clock time and output cardinality
//! so `EXPLAIN ANALYZE`-style output (Figure 4) can be rendered from any
//! execution.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::plan::{AggFunc, JoinKind, Plan};
use crate::table::{Row, Table};
use crate::value::Value;

/// Per-node execution statistics, mirroring the plan tree.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Operator description (e.g. `Seq Scan on TPi`).
    pub description: String,
    /// Rows produced by this node.
    pub rows_out: usize,
    /// Time spent in this node, excluding children.
    pub elapsed: Duration,
    /// Child metrics, in plan order.
    pub children: Vec<ExecMetrics>,
}

impl ExecMetrics {
    /// Total time including children.
    pub fn total_elapsed(&self) -> Duration {
        self.elapsed + self.children.iter().map(|c| c.total_elapsed()).sum::<Duration>()
    }

    /// Visit every node depth-first.
    pub fn visit(&self, f: &mut dyn FnMut(&ExecMetrics, usize)) {
        fn go(node: &ExecMetrics, depth: usize, f: &mut dyn FnMut(&ExecMetrics, usize)) {
            f(node, depth);
            for c in &node.children {
                go(c, depth + 1, f);
            }
        }
        go(self, 0, f);
    }
}

/// Either a shared snapshot (scans) or an operator-owned table.
enum Batch {
    Shared(Arc<Table>),
    Owned(Table),
}

impl Batch {
    fn table(&self) -> &Table {
        match self {
            Batch::Shared(t) => t,
            Batch::Owned(t) => t,
        }
    }

    fn into_table(self) -> Table {
        match self {
            Batch::Shared(t) => (*t).clone(),
            Batch::Owned(t) => t,
        }
    }
}

/// Executes plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
}

impl<'a> Executor<'a> {
    /// Build an executor over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor { catalog }
    }

    /// Execute a plan, returning the result and per-node metrics.
    pub fn execute(&self, plan: &Plan) -> Result<(Table, ExecMetrics)> {
        let (batch, metrics) = self.run(plan)?;
        Ok((batch.into_table(), metrics))
    }

    /// Execute a plan, returning only the result table.
    pub fn execute_table(&self, plan: &Plan) -> Result<Table> {
        Ok(self.execute(plan)?.0)
    }

    fn run(&self, plan: &Plan) -> Result<(Batch, ExecMetrics)> {
        match plan {
            Plan::Scan { table } => {
                let start = Instant::now();
                let t = self.catalog.get(table)?;
                let metrics = ExecMetrics {
                    description: plan.describe(),
                    rows_out: t.len(),
                    elapsed: start.elapsed(),
                    children: vec![],
                };
                Ok((Batch::Shared(t), metrics))
            }
            Plan::Values { table } => {
                let metrics = ExecMetrics {
                    description: plan.describe(),
                    rows_out: table.len(),
                    elapsed: Duration::ZERO,
                    children: vec![],
                };
                Ok((Batch::Owned(table.clone()), metrics))
            }
            Plan::Filter { input, predicate } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let src = batch.table();
                let mut out = Vec::new();
                for row in src.rows() {
                    if predicate.eval(row)?.is_truthy() {
                        out.push(row.clone());
                    }
                }
                let table = Table::from_rows_unchecked(src.schema().clone(), out);
                Ok(self.done(plan, table, start, vec![child]))
            }
            Plan::Project { input, exprs } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let src = batch.table();
                let lookup = |name: &str| self.catalog.schema_of(name);
                let schema = plan.schema(&lookup)?;
                let mut rows = Vec::with_capacity(src.len());
                for row in src.rows() {
                    let mut out = Vec::with_capacity(exprs.len());
                    for (e, _) in exprs {
                        out.push(e.eval(row)?);
                    }
                    rows.push(out);
                }
                let table = Table::from_rows_unchecked(schema, rows);
                Ok(self.done(plan, table, start, vec![child]))
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                if left_keys.len() != right_keys.len() {
                    return Err(Error::InvalidPlan(format!(
                        "join key arity mismatch: {} vs {}",
                        left_keys.len(),
                        right_keys.len()
                    )));
                }
                let (lb, lm) = self.run(left)?;
                let (rb, rm) = self.run(right)?;
                let start = Instant::now();
                let table = hash_join(lb.table(), rb.table(), left_keys, right_keys, *kind);
                Ok(self.done(plan, table, start, vec![lm, rm]))
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let lookup = |name: &str| self.catalog.schema_of(name);
                let schema = plan.schema(&lookup)?;
                let table = aggregate_table(batch.table(), group_by, aggs, schema)?;
                Ok(self.done(plan, table, start, vec![child]))
            }
            Plan::Distinct { input } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let mut table = batch.into_table();
                table.dedup_rows();
                Ok(self.done(plan, table, start, vec![child]))
            }
            Plan::UnionAll { left, right } => {
                let (lb, lm) = self.run(left)?;
                let (rb, rm) = self.run(right)?;
                let start = Instant::now();
                let lt = lb.table();
                let rt = rb.table();
                if lt.schema().width() != rt.schema().width() {
                    return Err(Error::InvalidPlan(format!(
                        "UNION ALL width mismatch: {} vs {}",
                        lt.schema().width(),
                        rt.schema().width()
                    )));
                }
                let mut table = lb.into_table();
                table.extend_from(rb.into_table());
                Ok(self.done(plan, table, start, vec![lm, rm]))
            }
            Plan::Sort { input, keys } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let mut table = batch.into_table();
                table.sort_by_cols(keys);
                Ok(self.done(plan, table, start, vec![child]))
            }
            Plan::Limit { input, n } => {
                let (batch, child) = self.run(input)?;
                let start = Instant::now();
                let src = batch.table();
                let rows: Vec<Row> = src.rows().iter().take(*n).cloned().collect();
                let table = Table::from_rows_unchecked(src.schema().clone(), rows);
                Ok(self.done(plan, table, start, vec![child]))
            }
        }
    }

    fn done(
        &self,
        plan: &Plan,
        table: Table,
        start: Instant,
        children: Vec<ExecMetrics>,
    ) -> (Batch, ExecMetrics) {
        let metrics = ExecMetrics {
            description: plan.describe(),
            rows_out: table.len(),
            elapsed: start.elapsed(),
            children,
        };
        (Batch::Owned(table), metrics)
    }
}

/// Multi-key hash equi-join. For inner joins the hash table is built on
/// whichever input is smaller (as a cost-based optimizer would choose) and
/// the larger side probes; the output row layout is always
/// `left ++ right` regardless. Rows with a NULL in any key column never
/// match (SQL semantics).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    kind: JoinKind,
) -> Table {
    match kind {
        JoinKind::Inner => {
            let schema = left.schema().join(right.schema());
            let mut rows = Vec::new();
            if left.len() <= right.len() {
                // Build on the left, probe with the right.
                let mut build: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(left.len());
                for (i, row) in left.rows().iter().enumerate() {
                    let key = Table::key_of(row, left_keys);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    build.entry(key).or_default().push(i);
                }
                for rrow in right.rows() {
                    let key = Table::key_of(rrow, right_keys);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = build.get(&key) {
                        for &li in matches {
                            let mut out = left.rows()[li].clone();
                            out.extend_from_slice(rrow);
                            rows.push(out);
                        }
                    }
                }
            } else {
                // Build on the right, probe with the left.
                let mut build: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(right.len());
                for (i, row) in right.rows().iter().enumerate() {
                    let key = Table::key_of(row, right_keys);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    build.entry(key).or_default().push(i);
                }
                for lrow in left.rows() {
                    let key = Table::key_of(lrow, left_keys);
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = build.get(&key) {
                        for &ri in matches {
                            let mut out = lrow.clone();
                            out.extend_from_slice(&right.rows()[ri]);
                            rows.push(out);
                        }
                    }
                }
            }
            Table::from_rows_unchecked(schema, rows)
        }
        JoinKind::LeftSemi | JoinKind::LeftAnti => {
            let mut build: HashMap<Vec<Value>, Vec<usize>> =
                HashMap::with_capacity(right.len());
            for (i, row) in right.rows().iter().enumerate() {
                let key = Table::key_of(row, right_keys);
                if key.iter().any(Value::is_null) {
                    continue;
                }
                build.entry(key).or_default().push(i);
            }
            let want_match = kind == JoinKind::LeftSemi;
            let mut rows = Vec::new();
            for lrow in left.rows() {
                let key = Table::key_of(lrow, left_keys);
                let matched =
                    !key.iter().any(Value::is_null) && build.contains_key(&key);
                if matched == want_match {
                    rows.push(lrow.clone());
                }
            }
            Table::from_rows_unchecked(left.schema().clone(), rows)
        }
    }
}

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl AggState {
    fn new(func: &AggFunc, input_is_float: bool) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count(_) => AggState::Count(0),
            AggFunc::Sum(_) => {
                if input_is_float {
                    AggState::SumFloat(0.0, false)
                } else {
                    AggState::SumInt(0, false)
                }
            }
            AggFunc::Min(_) => AggState::Min(None),
            AggFunc::Max(_) => AggState::Max(None),
            AggFunc::Avg(_) => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, func: &AggFunc, row: &Row) {
        match (self, func) {
            (AggState::Count(n), AggFunc::CountStar) => *n += 1,
            (AggState::Count(n), AggFunc::Count(c)) => {
                if !row[*c].is_null() {
                    *n += 1;
                }
            }
            (AggState::SumInt(acc, seen), AggFunc::Sum(c)) => {
                if let Some(v) = row[*c].as_int() {
                    *acc += v;
                    *seen = true;
                }
            }
            (AggState::SumFloat(acc, seen), AggFunc::Sum(c)) => {
                if let Some(v) = row[*c].as_float() {
                    *acc += v;
                    *seen = true;
                }
            }
            (AggState::Min(cur), AggFunc::Min(c)) => {
                let v = &row[*c];
                if !v.is_null() && cur.as_ref().is_none_or(|m| v < m) {
                    *cur = Some(v.clone());
                }
            }
            (AggState::Max(cur), AggFunc::Max(c)) => {
                let v = &row[*c];
                if !v.is_null() && cur.as_ref().is_none_or(|m| v > m) {
                    *cur = Some(v.clone());
                }
            }
            (AggState::Avg { sum, n }, AggFunc::Avg(c)) => {
                if let Some(v) = row[*c].as_float() {
                    *sum += v;
                    *n += 1;
                }
            }
            _ => unreachable!("agg state/func mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt(v, seen) => {
                if seen {
                    Value::Int(v)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(v, seen) => {
                if seen {
                    Value::Float(v)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Grouped aggregation over a table, producing `out_schema` rows sorted by
/// group key. Exposed so the MPP executor can run segment-local aggregates.
pub fn aggregate_table(
    input: &Table,
    group_by: &[usize],
    aggs: &[crate::plan::AggExpr],
    out_schema: crate::schema::Schema,
) -> Result<Table> {
    use crate::value::DataType;
    let float_inputs: Vec<bool> = aggs
        .iter()
        .map(|a| match a.func {
            AggFunc::Sum(c) => {
                input
                    .schema()
                    .column(c)
                    .map(|col| col.dtype == DataType::Float)
                    .unwrap_or(false)
            }
            _ => false,
        })
        .collect();

    let make_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(float_inputs.iter())
            .map(|(a, &is_f)| AggState::new(&a.func, is_f))
            .collect()
    };

    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    // A global aggregate (no GROUP BY) must yield one row even on empty
    // input, so seed the single group eagerly.
    if group_by.is_empty() {
        groups.insert(Vec::new(), make_states());
    }
    for row in input.rows() {
        let key = Table::key_of(row, group_by);
        let states = groups.entry(key).or_insert_with(make_states);
        for (state, agg) in states.iter_mut().zip(aggs.iter()) {
            state.update(&agg.func, row);
        }
    }

    let mut rows: Vec<Row> = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut row = key;
        for state in states {
            row.push(state.finish());
        }
        rows.push(row);
    }
    // Deterministic output order helps tests and diffing.
    rows.sort();
    Ok(Table::from_rows_unchecked(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggExpr;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let people = Table::from_rows(
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("city", DataType::Int),
                Column::nullable("w", DataType::Float),
            ]),
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Float(0.9)],
                vec![Value::Int(2), Value::Int(10), Value::Null],
                vec![Value::Int(3), Value::Int(20), Value::Float(0.5)],
            ],
        )
        .unwrap();
        let cities = Table::from_rows(
            Schema::ints(&["cid", "country"]),
            vec![
                vec![Value::Int(10), Value::Int(100)],
                vec![Value::Int(20), Value::Int(200)],
            ],
        )
        .unwrap();
        cat.create("people", people).unwrap();
        cat.create("cities", cities).unwrap();
        cat
    }

    #[test]
    fn scan_and_filter() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").filter(Expr::col(1).eq(Expr::lit(10i64)));
        let (out, metrics) = exec.execute(&plan).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(metrics.rows_out, 2);
        assert_eq!(metrics.children[0].rows_out, 3);
    }

    #[test]
    fn inner_join_concatenates() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").hash_join(Plan::scan("cities"), vec![1], vec![0]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().width(), 5);
        // person 1 joined with country 100
        let row = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(1))
            .unwrap();
        assert_eq!(row[4], Value::Int(100));
    }

    #[test]
    fn semi_and_anti_join() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let only10 = Table::from_rows_unchecked(Schema::ints(&["cid"]), vec![vec![Value::Int(10)]]);
        let semi = Plan::scan("people").join(
            Plan::values(only10.clone()),
            vec![1],
            vec![0],
            JoinKind::LeftSemi,
        );
        assert_eq!(exec.execute_table(&semi).unwrap().len(), 2);
        let anti = Plan::scan("people").join(
            Plan::values(only10),
            vec![1],
            vec![0],
            JoinKind::LeftAnti,
        );
        let out = exec.execute_table(&anti).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(3));
        assert_eq!(out.schema().width(), 3); // left schema preserved
    }

    #[test]
    fn null_keys_never_match() {
        let cat = Catalog::new();
        let schema = Schema::new(vec![Column::nullable("k", DataType::Int)]);
        let t = Table::from_rows(
            schema.clone(),
            vec![vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap();
        cat.create("t", t).unwrap();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("t").hash_join(Plan::scan("t"), vec![0], vec![0]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1); // only Int(1) matches itself
    }

    #[test]
    fn aggregate_grouped() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").aggregate(
            vec![1],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Count(2), "nw"),
                AggExpr::new(AggFunc::Min(0), "mn"),
                AggExpr::new(AggFunc::Avg(2), "aw"),
            ],
        );
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 2);
        let g10 = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(10))
            .unwrap();
        assert_eq!(g10[1], Value::Int(2)); // COUNT(*)
        assert_eq!(g10[2], Value::Int(1)); // COUNT(w) skips NULL
        assert_eq!(g10[3], Value::Int(1)); // MIN(id)
        assert_eq!(g10[4], Value::Float(0.9)); // AVG over non-null
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let cat = Catalog::new();
        cat.create("e", Table::empty(Schema::ints(&["a"]))).unwrap();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("e").aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Sum(0), "s"),
                AggExpr::new(AggFunc::Max(0), "m"),
            ],
        );
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
        assert!(out.rows()[0][1].is_null());
        assert!(out.rows()[0][2].is_null());
    }

    #[test]
    fn distinct_union_sort_limit() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let ids = Plan::scan("people").project_cols(&[1], &["city"]);
        let plan = ids
            .clone()
            .union_all(ids)
            .distinct()
            .sort(vec![0])
            .limit(1);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(10));
    }

    #[test]
    fn union_width_mismatch_fails_at_exec() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").union_all(Plan::scan("cities"));
        assert!(exec.execute(&plan).is_err());
    }

    #[test]
    fn join_key_arity_mismatch_rejected() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").hash_join(Plan::scan("cities"), vec![0, 1], vec![0]);
        assert!(matches!(exec.execute(&plan), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn metrics_tree_matches_plan_shape() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people")
            .hash_join(Plan::scan("cities"), vec![1], vec![0])
            .filter(Expr::col(4).gt(Expr::lit(100i64)));
        let (_, metrics) = exec.execute(&plan).unwrap();
        assert!(metrics.description.starts_with("Filter"));
        assert!(metrics.children[0].description.contains("Hash Join"));
        assert_eq!(metrics.children[0].children.len(), 2);
        let mut count = 0;
        metrics.visit(&mut |_, _| count += 1);
        assert_eq!(count, 4);
        assert!(metrics.total_elapsed() >= metrics.elapsed);
    }

    #[test]
    fn project_computes_expressions() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = Plan::scan("people").project(vec![
            (Expr::col(0), "id"),
            (Expr::col(2).is_null(), "missing_w"),
        ]);
        let out = exec.execute_table(&plan).unwrap();
        assert_eq!(out.schema().names(), vec!["id", "missing_w"]);
        assert_eq!(out.rows()[1][1], Value::Int(1));
    }
}
