//! Columnar chunk codec for spilled tables.
//!
//! A spilled table is a sequence of row-group *chunks*, each encoded
//! column-major into one heap record. The encoder picks a layout per
//! column by inspecting its values:
//!
//! | tag | layout | chosen when |
//! |-----|--------|-------------|
//! | 0 | dense `u32` array | every value is `Int` in `0..=u32::MAX` — the id-interned entity/relation columns from `crates/kb` |
//! | 1 | `i64` array + null bitmap | `Int`/`Null` |
//! | 2 | `f64` bit array + null bitmap | `Float`/`Null` (raw bits: exact round-trip incl. NaN payloads and `-0.0`) |
//! | 3 | per-chunk string dictionary + `u32` id array + null bitmap | `Str`/`Null` |
//! | 4 | tagged per-value fallback | anything else (mixed-type columns from unchecked rows) |
//!
//! Decoding yields a [`DecodedChunk`] that hands operators either
//! materialized rows or, for tag-0 columns, the dense `&[u32]` slice
//! the join fast path consumes without boxing through [`Value`].
//! Round-trip is exact: `decode(encode(rows)).rows() == rows`.
//!
//! All integers little-endian, matching `crates/storage`'s codecs.

use std::sync::{Arc, OnceLock};

use crate::error::{Error, Result};
use crate::table::Row;
use crate::value::Value;

/// Rows per chunk. Chunk boundaries are always aligned to this, no
/// matter how a table was appended, so a spilled table's chunking —
/// and therefore every streamed execution over it — is a pure function
/// of its row list.
pub const CHUNK_ROWS: usize = 4096;

const TAG_U32: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_VAR: u8 = 4;

/// One decoded column.
#[derive(Debug)]
pub enum ColumnData {
    /// Dense non-null ints that fit `u32` (interned ids).
    U32(Vec<u32>),
    /// Ints with optional nulls.
    I64 {
        /// Values (0 where null).
        vals: Vec<i64>,
        /// Bitmap, bit i set = row i is NULL; `None` = no nulls.
        nulls: Option<Vec<u8>>,
    },
    /// Floats (raw bits) with optional nulls.
    F64 {
        /// Raw `f64` bits (0 where null).
        bits: Vec<u64>,
        /// Bitmap, bit i set = row i is NULL; `None` = no nulls.
        nulls: Option<Vec<u8>>,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Dictionary ids per row (0 where null).
        ids: Vec<u32>,
        /// Bitmap, bit i set = row i is NULL; `None` = no nulls.
        nulls: Option<Vec<u8>>,
        /// First-occurrence-ordered dictionary.
        dict: Vec<Arc<str>>,
    },
    /// Tagged per-value fallback.
    Var(Vec<Value>),
}

/// A decoded row-group.
#[derive(Debug)]
pub struct DecodedChunk {
    cols: Vec<ColumnData>,
    len: usize,
    rows: OnceLock<Vec<Row>>,
}

impl DecodedChunk {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense `u32` slice of `col`, when it was tag-0 encoded.
    pub fn dense_u32(&self, col: usize) -> Option<&[u32]> {
        match self.cols.get(col)? {
            ColumnData::U32(v) => Some(v),
            _ => None,
        }
    }

    /// Materialize (once) and return the chunk's rows.
    pub fn rows(&self) -> &[Row] {
        self.rows.get_or_init(|| {
            let mut rows: Vec<Row> = (0..self.len)
                .map(|_| Vec::with_capacity(self.cols.len()))
                .collect();
            for col in &self.cols {
                match col {
                    ColumnData::U32(vals) => {
                        for (r, &v) in rows.iter_mut().zip(vals) {
                            r.push(Value::Int(v as i64));
                        }
                    }
                    ColumnData::I64 { vals, nulls } => {
                        for (i, (r, &v)) in rows.iter_mut().zip(vals).enumerate() {
                            r.push(if bit(nulls, i) {
                                Value::Null
                            } else {
                                Value::Int(v)
                            });
                        }
                    }
                    ColumnData::F64 { bits, nulls } => {
                        for (i, (r, &b)) in rows.iter_mut().zip(bits).enumerate() {
                            r.push(if bit(nulls, i) {
                                Value::Null
                            } else {
                                Value::Float(f64::from_bits(b))
                            });
                        }
                    }
                    ColumnData::Str { ids, nulls, dict } => {
                        for (i, (r, &id)) in rows.iter_mut().zip(ids).enumerate() {
                            r.push(if bit(nulls, i) {
                                Value::Null
                            } else {
                                Value::Str(Arc::clone(&dict[id as usize]))
                            });
                        }
                    }
                    ColumnData::Var(vals) => {
                        for (r, v) in rows.iter_mut().zip(vals) {
                            r.push(v.clone());
                        }
                    }
                }
            }
            rows
        })
    }
}

fn bit(nulls: &Option<Vec<u8>>, i: usize) -> bool {
    match nulls {
        Some(bm) => bm[i / 8] & (1 << (i % 8)) != 0,
        None => false,
    }
}

// ---- encoding ----

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.0.extend_from_slice(b);
    }
}

fn null_bitmap(rows: &[Row], col: usize) -> Option<Vec<u8>> {
    if rows.iter().all(|r| !r[col].is_null()) {
        return None;
    }
    let mut bm = vec![0u8; rows.len().div_ceil(8)];
    for (i, r) in rows.iter().enumerate() {
        if r[col].is_null() {
            bm[i / 8] |= 1 << (i % 8);
        }
    }
    Some(bm)
}

fn write_bitmap(w: &mut W, bm: &Option<Vec<u8>>) {
    match bm {
        None => w.u8(0),
        Some(bm) => {
            w.u8(1);
            w.bytes(bm);
        }
    }
}

/// Encode `rows` (all the same arity) into one chunk record.
pub fn encode_chunk(rows: &[Row]) -> Vec<u8> {
    let ncols = rows.first().map_or(0, Vec::len);
    let mut w = W(Vec::with_capacity(16 + rows.len() * ncols * 5));
    w.u32(rows.len() as u32);
    w.u32(ncols as u32);
    for c in 0..ncols {
        encode_column(&mut w, rows, c);
    }
    w.0
}

fn encode_column(w: &mut W, rows: &[Row], c: usize) {
    let mut all_u32 = true;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_str = true;
    for r in rows {
        match &r[c] {
            Value::Int(v) => {
                all_float = false;
                all_str = false;
                if *v < 0 || *v > u32::MAX as i64 {
                    all_u32 = false;
                }
            }
            Value::Null => {
                all_u32 = false;
            }
            Value::Float(_) => {
                all_u32 = false;
                all_int = false;
                all_str = false;
            }
            Value::Str(_) => {
                all_u32 = false;
                all_int = false;
                all_float = false;
            }
        }
    }
    if all_u32 && all_int {
        w.u8(TAG_U32);
        for r in rows {
            w.u32(r[c].as_int().unwrap() as u32);
        }
    } else if all_int {
        w.u8(TAG_I64);
        write_bitmap(w, &null_bitmap(rows, c));
        for r in rows {
            w.u64(r[c].as_int().unwrap_or(0) as u64);
        }
    } else if all_float {
        w.u8(TAG_F64);
        write_bitmap(w, &null_bitmap(rows, c));
        for r in rows {
            let bits = match &r[c] {
                Value::Float(f) => f.to_bits(),
                _ => 0,
            };
            w.u64(bits);
        }
    } else if all_str {
        w.u8(TAG_STR);
        write_bitmap(w, &null_bitmap(rows, c));
        let mut dict: Vec<Arc<str>> = Vec::new();
        let mut lookup: probkb_support::hash::FxHashMap<&str, u32> =
            probkb_support::hash::FxHashMap::default();
        let mut ids = Vec::with_capacity(rows.len());
        for r in rows {
            let id = match &r[c] {
                Value::Str(s) => *lookup.entry(s.as_ref()).or_insert_with(|| {
                    dict.push(Arc::clone(s));
                    (dict.len() - 1) as u32
                }),
                _ => 0,
            };
            ids.push(id);
        }
        w.u32(dict.len() as u32);
        for s in &dict {
            w.u32(s.len() as u32);
            w.bytes(s.as_bytes());
        }
        for id in ids {
            w.u32(id);
        }
    } else {
        w.u8(TAG_VAR);
        for r in rows {
            match &r[c] {
                Value::Null => w.u8(0),
                Value::Int(v) => {
                    w.u8(1);
                    w.u64(*v as u64);
                }
                Value::Float(f) => {
                    w.u8(2);
                    w.u64(f.to_bits());
                }
                Value::Str(s) => {
                    w.u8(3);
                    w.u32(s.len() as u32);
                    w.bytes(s.as_bytes());
                }
            }
        }
    }
}

// ---- decoding ----

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Storage(format!(
                "chunk truncated at byte {} (want {n} more of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn read_bitmap(r: &mut R<'_>, nrows: usize) -> Result<Option<Vec<u8>>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take(nrows.div_ceil(8))?.to_vec())),
        t => Err(Error::Storage(format!("bad bitmap marker {t}"))),
    }
}

/// Decode one chunk record.
pub fn decode_chunk(bytes: &[u8]) -> Result<DecodedChunk> {
    let mut r = R { buf: bytes, pos: 0 };
    let nrows = r.u32()? as usize;
    let ncols = r.u32()? as usize;
    if nrows > CHUNK_ROWS * 2 || ncols > 1 << 16 {
        return Err(Error::Storage(format!(
            "implausible chunk header: {nrows} rows x {ncols} cols"
        )));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let tag = r.u8()?;
        let col = match tag {
            TAG_U32 => {
                let mut vals = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    vals.push(r.u32()?);
                }
                ColumnData::U32(vals)
            }
            TAG_I64 => {
                let nulls = read_bitmap(&mut r, nrows)?;
                let mut vals = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    vals.push(r.u64()? as i64);
                }
                ColumnData::I64 { vals, nulls }
            }
            TAG_F64 => {
                let nulls = read_bitmap(&mut r, nrows)?;
                let mut bits = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    bits.push(r.u64()?);
                }
                ColumnData::F64 { bits, nulls }
            }
            TAG_STR => {
                let nulls = read_bitmap(&mut r, nrows)?;
                let dict_len = r.u32()? as usize;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| Error::Storage("non-UTF8 dictionary entry".into()))?;
                    dict.push(Arc::<str>::from(s));
                }
                let mut ids = Vec::with_capacity(nrows);
                for i in 0..nrows {
                    let id = r.u32()?;
                    if !bit(&nulls, i) && id as usize >= dict.len() {
                        return Err(Error::Storage(format!(
                            "dictionary id {id} out of range ({})",
                            dict.len()
                        )));
                    }
                    ids.push(id);
                }
                ColumnData::Str { ids, nulls, dict }
            }
            TAG_VAR => {
                let mut vals = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    vals.push(match r.u8()? {
                        0 => Value::Null,
                        1 => Value::Int(r.u64()? as i64),
                        2 => Value::Float(f64::from_bits(r.u64()?)),
                        3 => {
                            let len = r.u32()? as usize;
                            let bytes = r.take(len)?;
                            let s = std::str::from_utf8(bytes)
                                .map_err(|_| Error::Storage("non-UTF8 value".into()))?;
                            Value::str(s)
                        }
                        t => return Err(Error::Storage(format!("bad value tag {t}"))),
                    });
                }
                ColumnData::Var(vals)
            }
            t => return Err(Error::Storage(format!("bad column tag {t}"))),
        };
        cols.push(col);
    }
    if r.pos != bytes.len() {
        return Err(Error::Storage(format!(
            "chunk has {} trailing bytes",
            bytes.len() - r.pos
        )));
    }
    Ok(DecodedChunk {
        cols,
        len: nrows,
        rows: OnceLock::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rows: Vec<Row>) {
        let enc = encode_chunk(&rows);
        let dec = decode_chunk(&enc).unwrap();
        assert_eq!(dec.len(), rows.len());
        assert_eq!(dec.rows(), rows.as_slice());
    }

    #[test]
    fn id_columns_take_dense_u32() {
        let rows: Vec<Row> = (0..100i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3 + 1)])
            .collect();
        let dec = decode_chunk(&encode_chunk(&rows)).unwrap();
        assert!(dec.dense_u32(0).is_some(), "id column not dense");
        assert_eq!(dec.dense_u32(1).unwrap()[2], 7);
        assert_eq!(dec.rows(), rows.as_slice());
        // Dense encoding is 4 bytes/value plus small headers.
        assert!(encode_chunk(&rows).len() < 100 * 2 * 5 + 32);
    }

    #[test]
    fn negative_and_large_ints_fall_back_to_i64() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(-1)],
            vec![Value::Int(u32::MAX as i64 + 1)],
            vec![Value::Int(0)],
        ];
        let dec = decode_chunk(&encode_chunk(&rows)).unwrap();
        assert!(dec.dense_u32(0).is_none());
        assert_eq!(dec.rows(), rows.as_slice());
    }

    #[test]
    fn nulls_floats_strings_roundtrip() {
        roundtrip(vec![
            vec![Value::Null, Value::Float(1.5), Value::str("alpha")],
            vec![Value::Int(3), Value::Null, Value::str("beta")],
            vec![Value::Int(4), Value::Float(-0.0), Value::Null],
            vec![Value::Int(5), Value::Float(f64::NAN), Value::str("alpha")],
        ]);
    }

    #[test]
    fn float_bits_roundtrip_exactly() {
        let vals = [0.0f64, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e-320, 3.14];
        let rows: Vec<Row> = vals.iter().map(|&f| vec![Value::Float(f)]).collect();
        let dec = decode_chunk(&encode_chunk(&rows)).unwrap();
        for (r, &f) in dec.rows().iter().zip(&vals) {
            match &r[0] {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn string_dictionary_interns_repeats() {
        let rows: Vec<Row> = (0..1000)
            .map(|i| vec![Value::str(if i % 2 == 0 { "yes" } else { "no" })])
            .collect();
        let enc = encode_chunk(&rows);
        // 1000 u32 ids + 2 dictionary entries, far less than 1000 strings.
        assert!(enc.len() < 1000 * 4 + 64, "dictionary not interning: {}", enc.len());
        roundtrip(rows);
    }

    #[test]
    fn mixed_column_uses_var() {
        roundtrip(vec![
            vec![Value::Int(1)],
            vec![Value::str("oops")],
            vec![Value::Float(2.5)],
            vec![Value::Null],
        ]);
    }

    #[test]
    fn empty_chunk_roundtrips() {
        roundtrip(vec![]);
    }

    #[test]
    fn corrupt_chunks_error_not_panic() {
        let rows: Vec<Row> = (0..10i64).map(|i| vec![Value::Int(i)]).collect();
        let enc = encode_chunk(&rows);
        for cut in 0..enc.len() {
            assert!(decode_chunk(&enc[..cut]).is_err(), "cut {cut} decoded");
        }
        let mut garbage = enc.clone();
        garbage[8] = 99; // bad column tag
        assert!(decode_chunk(&garbage).is_err());
    }
}
