//! Golden-output test for EXPLAIN ANALYZE, covering the worker-count
//! annotations of the morsel-driven executor. Durations vary run to run,
//! so every `<digits>(s|ms|us)` token is normalized to `<T>` before the
//! comparison; row counts, worker counts, and tree shape are exact.

use probkb_relational::prelude::*;

/// Replace duration tokens (`1.20ms`, `300.0us`, `2.00s`) with `<T>`.
/// Plain numbers (`rows=600`, `left[0]`) are kept: a digit run is only a
/// duration if it is immediately followed by a unit suffix.
fn normalize(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let prev_alnum = i > 0 && bytes[i - 1].is_ascii_alphanumeric();
        if bytes[i].is_ascii_digit() && !prev_alnum {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                j += 1;
            }
            let rest = &text[j..];
            let unit_len = if rest.starts_with("us") || rest.starts_with("ms") {
                2
            } else if rest.starts_with('s') {
                1
            } else {
                0
            };
            if unit_len > 0 {
                out.push_str("<T>");
                i = j + unit_len;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// 600 facts (k = i mod 20) joined against a 20-key dim table, then
/// grouped: with 4 threads the 600-row probe and aggregate split into
/// exactly 4 morsels, so the worker annotations are deterministic.
fn catalog() -> Catalog {
    let cat = Catalog::new();
    // Goldens pin the in-memory rendering: force the spill policy off
    // rather than inheriting PROBKB_SPILL_ROWS (CI runs the suite with
    // out-of-core storage forced on too, which would add `buf:`
    // annotations — those have their own golden in explain.rs).
    cat.set_spill_policy(None);
    let fact = Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        (0..600i64)
            .map(|i| vec![Value::Int(i % 20), Value::Int(i)])
            .collect(),
    );
    let dim = Table::from_rows_unchecked(
        Schema::ints(&["k", "w"]),
        (0..20i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect(),
    );
    cat.create("fact", fact).unwrap();
    cat.create("dim", dim).unwrap();
    cat
}

fn plan() -> Plan {
    Plan::scan("fact")
        .hash_join(Plan::scan("dim"), vec![0], vec![0])
        .aggregate(vec![0], vec![AggExpr::new(AggFunc::CountStar, "n")])
}

#[test]
fn explain_analyze_parallel_golden() {
    let cat = catalog();
    // Goldens pin the planner-on rendering, so force the optimizer
    // rather than inheriting the PROBKB_OPTIMIZE process default (CI
    // runs the suite with it forced off too).
    let (_, metrics) = Executor::new(&cat)
        .with_threads(4)
        .with_parallel_threshold(1)
        .with_optimize(true)
        .execute(&plan())
        .unwrap();
    let golden = "\
HashAggregate group_by=[0] aggs=[\"n\"]  (rows=20, est=20, time=<T>, workers=4 [<T> <T> <T> <T>])
  -> Hash Join on left[0] = right[0], build=right  (rows=600, est=600, time=<T>, workers=4 [<T> <T> <T> <T>])
    -> Seq Scan on fact  (rows=600, est=600, time=<T>)
    -> Seq Scan on dim  (rows=20, est=20, time=<T>)
";
    assert_eq!(normalize(&explain_analyze(&metrics)), golden);
}

#[test]
fn explain_analyze_serial_golden() {
    let cat = catalog();
    let (_, metrics) = Executor::new(&cat)
        .with_threads(1)
        .with_optimize(true)
        .execute(&plan())
        .unwrap();
    let golden = "\
HashAggregate group_by=[0] aggs=[\"n\"]  (rows=20, est=20, time=<T>)
  -> Hash Join on left[0] = right[0], build=right  (rows=600, est=600, time=<T>)
    -> Seq Scan on fact  (rows=600, est=600, time=<T>)
    -> Seq Scan on dim  (rows=20, est=20, time=<T>)
";
    assert_eq!(normalize(&explain_analyze(&metrics)), golden);
}

#[test]
fn explain_analyze_without_optimizer_keeps_auto_build_side() {
    let cat = catalog();
    let (_, metrics) = Executor::new(&cat)
        .with_threads(1)
        .with_optimize(false)
        .execute(&plan())
        .unwrap();
    let golden = "\
HashAggregate group_by=[0] aggs=[\"n\"]  (rows=20, est=20, time=<T>)
  -> Hash Join on left[0] = right[0]  (rows=600, est=600, time=<T>)
    -> Seq Scan on fact  (rows=600, est=600, time=<T>)
    -> Seq Scan on dim  (rows=20, est=20, time=<T>)
";
    assert_eq!(normalize(&explain_analyze(&metrics)), golden);
}

/// A filter that *materializes* only 10 of 600 fact rows, but whose
/// estimate (1/3 inequality selectivity → 200 rows) still exceeds the
/// 20-row dim side. The old smaller-materialized-input heuristic would
/// build on the filtered fact side (10 rows ≤ 20); the cost-based planner
/// builds on dim — the golden pins the flipped build side and shows the
/// misestimate (`rows=10, est=200`) in the same breath.
#[test]
fn skewed_filter_flips_build_side_golden() {
    let cat = catalog();
    let plan = Plan::scan("fact")
        .filter(Expr::col(1).lt(Expr::lit(10i64)))
        .hash_join(Plan::scan("dim"), vec![0], vec![0]);
    let (out, metrics) = Executor::new(&cat)
        .with_threads(1)
        .with_optimize(true)
        .execute(&plan)
        .unwrap();
    let golden = "\
Hash Join on left[0] = right[0], build=right  (rows=10, est=200, time=<T>)
  -> Filter: (#1 < 10)  (rows=10, est=200, time=<T>)
    -> Seq Scan on fact  (rows=600, est=600, time=<T>)
  -> Seq Scan on dim  (rows=20, est=20, time=<T>)
";
    assert_eq!(normalize(&explain_analyze(&metrics)), golden);
    // The flipped build side is a physical choice only: results match the
    // unoptimized oracle row for row.
    let oracle = Executor::new(&cat)
        .with_threads(1)
        .with_optimize(false)
        .execute_table(&plan)
        .unwrap();
    assert_eq!(format!("{:?}", out.rows()), format!("{:?}", oracle.rows()));
}

#[test]
fn normalize_only_touches_durations() {
    assert_eq!(
        normalize("x  (rows=600, time=1.20ms, workers=4 [300.0us 2.00s])"),
        "x  (rows=600, time=<T>, workers=4 [<T> <T>])"
    );
    assert_eq!(normalize("left[0] = right[0]"), "left[0] = right[0]");
}
