//! Differential suite for the out-of-core storage layer: every plan in
//! the workload must produce **byte-identical** output (rows AND row
//! order, compared via `Debug`) whether its tables live in memory or in
//! buffer-managed pages, at every buffer-pool size, thread count, and
//! optimizer setting. This is the acceptance gate for the paged heap:
//! spilling is invisible to query results by construction, and these
//! tests pin that construction.
//!
//! The spilled catalogs additionally carry disk-resident B-tree indexes
//! on the join keys while the in-memory baseline carries hash indexes,
//! so the index-join fast path is exercised against a different index
//! implementation and must still agree byte for byte.

use std::sync::Arc;

use probkb_relational::prelude::*;

/// Rows for the fact table: 3 int columns, enough rows to span several
/// 4096-row column chunks so chunk boundaries are actually exercised.
fn fact_rows() -> Vec<Vec<Value>> {
    // Deterministic pseudo-random stream (LCG) — no RNG dependency.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    (0..12_000)
        .map(|i| {
            vec![
                Value::Int(next() % 500),
                Value::Int(next() % 40),
                Value::Int(i),
            ]
        })
        .collect()
}

fn dim_rows() -> Vec<Vec<Value>> {
    (0..500i64)
        .map(|k| vec![Value::Int(k), Value::Int(k % 7)])
        .collect()
}

/// Build the workload catalog. `pool_pages = None` keeps every table in
/// memory (with hash indexes); `Some(n)` spills through an `n`-page
/// buffer pool (with B-tree indexes).
fn catalog(pool_pages: Option<u32>) -> Catalog {
    let cat = Catalog::new();
    cat.set_spill_policy(None);
    if let Some(pages) = pool_pages {
        let ctx: Arc<StorageContext> = StorageContext::in_temp(pages as usize).unwrap();
        cat.set_spill_policy(Some(SpillPolicy {
            ctx,
            threshold_rows: 1024,
        }));
    }
    cat.create(
        "fact",
        Table::from_rows_unchecked(Schema::ints(&["k", "g", "v"]), fact_rows()),
    )
    .unwrap();
    cat.create(
        "dim",
        Table::from_rows_unchecked(Schema::ints(&["k", "c"]), dim_rows()),
    )
    .unwrap();
    if pool_pages.is_some() {
        assert!(cat.get("fact").unwrap().is_spilled(), "fact must spill");
        cat.build_btree_index("fact", &[0]).unwrap();
        cat.build_btree_index("dim", &[0]).unwrap();
    } else {
        cat.build_index("fact", &[0], 1).unwrap();
        cat.build_index("dim", &[0], 1).unwrap();
    }
    cat
}

/// The plan workload: every operator family grounding leans on.
fn plans() -> Vec<Plan> {
    vec![
        Plan::scan("fact").filter(Expr::col(0).lt(Expr::lit(100i64))),
        Plan::scan("fact").project_cols(&[1, 0], &["g", "k"]),
        Plan::scan("fact").hash_join(Plan::scan("dim"), vec![0], vec![0]),
        Plan::scan("dim").hash_join(Plan::scan("fact"), vec![0], vec![0]),
        Plan::scan("fact").join(Plan::scan("dim").filter(Expr::col(1).lt(Expr::lit(3i64))), vec![0], vec![0], JoinKind::LeftSemi),
        Plan::scan("fact").join(Plan::scan("dim").filter(Expr::col(1).lt(Expr::lit(3i64))), vec![0], vec![0], JoinKind::LeftAnti),
        Plan::scan("fact").aggregate(
            vec![1],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Min(2), "mn"),
            ],
        ),
        Plan::scan("fact").project_cols(&[1], &["g"]).distinct(),
        Plan::scan("fact")
            .hash_join(Plan::scan("dim"), vec![0], vec![0])
            .filter(Expr::col(4).eq(Expr::lit(2i64)))
            .aggregate(vec![1], vec![AggExpr::new(AggFunc::CountStar, "n")]),
        Plan::scan("fact").sort(vec![1, 0]).limit(777),
    ]
}

fn run(cat: &Catalog, plan: &Plan, threads: usize, optimize: bool) -> String {
    let out = Executor::new(cat)
        .with_threads(threads)
        .with_parallel_threshold(0)
        .with_optimize(optimize)
        .execute_table(plan)
        .unwrap();
    format!("{out:?}")
}

/// The full matrix in one test body: pools {64, 1024, unlimited} ×
/// threads {1, 4} × optimizer {off, on}. The in-memory serial run is
/// the oracle for each optimizer setting; everything else must match
/// it byte for byte.
#[test]
fn workload_is_identical_across_pools_threads_optimizer() {
    let mem = catalog(None);
    let spilled: Vec<(u32, Catalog)> =
        [64u32, 1024].iter().map(|&p| (p, catalog(Some(p)))).collect();
    for (pi, plan) in plans().iter().enumerate() {
        for optimize in [false, true] {
            let oracle = run(&mem, plan, 1, optimize);
            for threads in [1usize, 4] {
                let got = run(&mem, plan, threads, optimize);
                assert_eq!(oracle, got, "plan {pi} mem threads={threads} opt={optimize}");
                for (pages, cat) in &spilled {
                    let got = run(cat, plan, threads, optimize);
                    assert_eq!(
                        oracle, got,
                        "plan {pi} pool={pages} threads={threads} opt={optimize}"
                    );
                }
            }
        }
    }
}

/// Mutation parity: inserts, deletes, and dedup must leave a spilled
/// catalog's tables byte-identical to an in-memory catalog driven by
/// the same operations (deletes/dedup transparently unspill).
#[test]
fn mutations_are_identical_under_spill() {
    let mem = catalog(None);
    let sp = catalog(Some(64));
    let extra: Vec<Vec<Value>> = (0..5_000i64)
        .map(|i| vec![Value::Int(i % 11), Value::Int(i % 3), Value::Int(-i)])
        .collect();
    mem.insert_rows("fact", extra.clone()).unwrap();
    sp.insert_rows("fact", extra).unwrap();
    assert!(sp.get("fact").unwrap().is_spilled());
    assert_eq!(
        format!("{:?}", mem.get("fact").unwrap()),
        format!("{:?}", sp.get("fact").unwrap())
    );

    let doomed: std::collections::HashSet<Vec<Value>> =
        [vec![Value::Int(2)], vec![Value::Int(5)]].into_iter().collect();
    let a = mem.delete_matching("fact", &[1], &doomed).unwrap();
    let b = sp.delete_matching("fact", &[1], &doomed).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        format!("{:?}", mem.get("fact").unwrap()),
        format!("{:?}", sp.get("fact").unwrap())
    );

    let a = mem.dedup_table("fact", &[0, 1]).unwrap();
    let b = sp.dedup_table("fact", &[0, 1]).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        format!("{:?}", mem.get("fact").unwrap()),
        format!("{:?}", sp.get("fact").unwrap())
    );
}

/// Incremental index maintenance parity: appending to an indexed,
/// spilled table keeps B-tree-driven joins identical to the hash-index
/// baseline.
#[test]
fn incremental_index_maintenance_is_identical() {
    let mem = catalog(None);
    let sp = catalog(Some(64));
    let extra: Vec<Vec<Value>> = (0..6_000i64)
        .map(|i| vec![Value::Int(400 + i % 200), Value::Int(i % 5), Value::Int(i)])
        .collect();
    mem.insert_rows("fact", extra.clone()).unwrap();
    sp.insert_rows("fact", extra).unwrap();
    let plan = Plan::scan("dim").hash_join(Plan::scan("fact"), vec![0], vec![0]);
    assert_eq!(run(&mem, &plan, 1, true), run(&sp, &plan, 1, true));
    assert_eq!(run(&mem, &plan, 4, true), run(&sp, &plan, 4, true));
}
