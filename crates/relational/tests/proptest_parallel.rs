//! Differential serial-vs-parallel property suite for the morsel-driven
//! executor: every randomized plan must produce the same rows at 1, 2,
//! and 8 threads. The parallel threshold is forced to zero so even tiny
//! random tables exercise the parallel operators; the design guarantee
//! is stronger than multiset equality — chunk-ordered concatenation
//! keeps the output row *order* identical to serial, so the tests
//! compare tables exactly.

use probkb_support::check::prelude::*;

use probkb_relational::prelude::*;

/// A small random table of `width` int columns with values in 0..domain.
fn arb_table(width: usize, domain: i64, max_rows: usize) -> impl Strategy<Value = Table> {
    let names: Vec<String> = (0..width).map(|i| format!("c{i}")).collect();
    prop::collection::vec(prop::collection::vec(0..domain, width), 0..=max_rows).prop_map(
        move |rows| {
            let cols: Vec<&str> = names.iter().map(String::as_str).collect();
            Table::from_rows_unchecked(
                Schema::ints(&cols),
                rows.into_iter()
                    .map(|r| r.into_iter().map(Value::Int).collect())
                    .collect(),
            )
        },
    )
}

/// Execute `plan` with an explicit thread count (threshold 0 so the
/// parallel path is taken regardless of input size). Serial is pinned to
/// one thread explicitly — the suite must behave the same under any
/// ambient `PROBKB_THREADS`.
fn run_at(cat: &Catalog, plan: &Plan, threads: usize) -> Table {
    Executor::new(cat)
        .with_threads(threads)
        .with_parallel_threshold(0)
        .execute_table(plan)
        .unwrap()
}

/// Assert the plan's output is identical (rows AND row order) at 1, 2,
/// and 8 threads.
fn assert_thread_invariant(cat: &Catalog, plan: &Plan) {
    let serial = run_at(cat, plan, 1);
    for threads in [2usize, 8] {
        let parallel = run_at(cat, plan, threads);
        assert_eq!(
            format!("{serial:?}"),
            format!("{parallel:?}"),
            "threads={threads}"
        );
    }
}

proptest! {
    /// Inner join output is thread-count invariant.
    #[test]
    fn inner_join_is_thread_invariant(
        left in arb_table(2, 6, 40),
        right in arb_table(2, 6, 40),
    ) {
        let cat = Catalog::new();
        cat.create("l", left).unwrap();
        cat.create("r", right).unwrap();
        let plan = Plan::scan("l").hash_join(Plan::scan("r"), vec![0], vec![0]);
        assert_thread_invariant(&cat, &plan);
    }

    /// Semi and anti joins are thread-count invariant.
    #[test]
    fn semi_and_anti_joins_are_thread_invariant(
        left in arb_table(2, 5, 40),
        right in arb_table(1, 5, 40),
    ) {
        let cat = Catalog::new();
        cat.create("l", left).unwrap();
        cat.create("r", right).unwrap();
        for kind in [JoinKind::LeftSemi, JoinKind::LeftAnti] {
            let plan = Plan::scan("l").join(Plan::scan("r"), vec![0], vec![0], kind);
            assert_thread_invariant(&cat, &plan);
        }
    }

    /// Grouped aggregation over the order-insensitive functions is
    /// thread-count invariant.
    #[test]
    fn aggregate_is_thread_invariant(t in arb_table(2, 5, 60)) {
        let cat = Catalog::new();
        cat.create("t", t).unwrap();
        let plan = Plan::scan("t").aggregate(
            vec![0],
            vec![
                AggExpr::new(AggFunc::CountStar, "n"),
                AggExpr::new(AggFunc::Count(1), "c1"),
                AggExpr::new(AggFunc::Sum(1), "s1"),
                AggExpr::new(AggFunc::Min(1), "lo"),
                AggExpr::new(AggFunc::Max(1), "hi"),
            ],
        );
        assert_thread_invariant(&cat, &plan);
    }

    /// AVG forces that aggregate onto the serial path, but the plan as a
    /// whole must still be thread-count invariant.
    #[test]
    fn avg_aggregate_is_thread_invariant(t in arb_table(2, 5, 60)) {
        let cat = Catalog::new();
        cat.create("t", t).unwrap();
        let plan = Plan::scan("t").aggregate(
            vec![0],
            vec![AggExpr::new(AggFunc::Avg(1), "mean")],
        );
        assert_thread_invariant(&cat, &plan);
    }

    /// A multi-operator plan tree (filter → join → project → aggregate)
    /// is thread-count invariant end to end.
    #[test]
    fn plan_tree_is_thread_invariant(
        t in arb_table(3, 6, 50),
        u in arb_table(2, 6, 50),
        threshold in 0i64..6,
    ) {
        let cat = Catalog::new();
        cat.create("t", t).unwrap();
        cat.create("u", u).unwrap();
        let plan = Plan::scan("t")
            .filter(Expr::col(0).lt(Expr::lit(threshold)))
            .hash_join(Plan::scan("u"), vec![1], vec![0])
            .project(vec![
                (Expr::col(0), "a"),
                (Expr::col(2), "b"),
                (Expr::col(4), "c"),
            ])
            .aggregate(
                vec![0],
                vec![
                    AggExpr::new(AggFunc::Sum(1), "s"),
                    AggExpr::new(AggFunc::Max(2), "m"),
                    AggExpr::new(AggFunc::CountStar, "n"),
                ],
            );
        assert_thread_invariant(&cat, &plan);
    }
}

#[test]
fn empty_inputs_are_thread_invariant() {
    let cat = Catalog::new();
    cat.create("e", Table::empty(Schema::ints(&["k", "v"]))).unwrap();
    let full = Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        (0..50i64).map(|i| vec![Value::Int(i % 5), Value::Int(i)]).collect(),
    );
    cat.create("f", full).unwrap();
    let plans = [
        Plan::scan("e").hash_join(Plan::scan("e"), vec![0], vec![0]),
        Plan::scan("e").hash_join(Plan::scan("f"), vec![0], vec![0]),
        Plan::scan("f").hash_join(Plan::scan("e"), vec![0], vec![0]),
        Plan::scan("e").aggregate(vec![0], vec![AggExpr::new(AggFunc::CountStar, "n")]),
        Plan::scan("e").filter(Expr::col(0).lt(Expr::lit(3))),
    ];
    for plan in &plans {
        assert_thread_invariant(&cat, plan);
    }
}

#[test]
fn all_keys_collide_is_thread_invariant() {
    // Every row shares one join key: a single build partition gets all
    // the skew and the self-join explodes quadratically (120² rows).
    let skew = Table::from_rows_unchecked(
        Schema::ints(&["k", "v"]),
        (0..120i64).map(|i| vec![Value::Int(7), Value::Int(i)]).collect(),
    );
    let cat = Catalog::new();
    cat.create("s", skew).unwrap();
    let join = Plan::scan("s").hash_join(Plan::scan("s"), vec![0], vec![0]);
    assert_thread_invariant(&cat, &join);
    let agg = Plan::scan("s").aggregate(
        vec![0],
        vec![
            AggExpr::new(AggFunc::CountStar, "n"),
            AggExpr::new(AggFunc::Sum(1), "s"),
        ],
    );
    assert_thread_invariant(&cat, &agg);
}
