//! Property-based tests for the relational engine: operators are checked
//! against naive reference implementations over arbitrary small relations.

use std::collections::{HashMap, HashSet};

use probkb_support::check::prelude::*;

use probkb_relational::prelude::*;

/// A small random table of `width` int columns with values in 0..domain.
fn arb_table(width: usize, domain: i64, max_rows: usize) -> impl Strategy<Value = Table> {
    let names: Vec<String> = (0..width).map(|i| format!("c{i}")).collect();
    prop::collection::vec(prop::collection::vec(0..domain, width), 0..=max_rows).prop_map(
        move |rows| {
            let cols: Vec<&str> = names.iter().map(String::as_str).collect();
            Table::from_rows_unchecked(
                Schema::ints(&cols),
                rows.into_iter()
                    .map(|r| r.into_iter().map(Value::Int).collect())
                    .collect(),
            )
        },
    )
}

fn ints(row: &[Value]) -> Vec<i64> {
    row.iter().map(|v| v.as_int().unwrap()).collect()
}

proptest! {
    /// Inner hash join agrees with the nested-loop definition.
    #[test]
    fn join_matches_nested_loop(
        left in arb_table(2, 6, 40),
        right in arb_table(2, 6, 40),
    ) {
        let cat = Catalog::new();
        cat.create("l", left.clone()).unwrap();
        cat.create("r", right.clone()).unwrap();
        let plan = Plan::scan("l").hash_join(Plan::scan("r"), vec![0], vec![0]);
        let out = Executor::new(&cat).execute_table(&plan).unwrap();

        let mut expected: Vec<Vec<i64>> = Vec::new();
        for l in left.rows() {
            for r in right.rows() {
                if l[0] == r[0] {
                    let mut row = ints(l);
                    row.extend(ints(r));
                    expected.push(row);
                }
            }
        }
        let mut got: Vec<Vec<i64>> = out.rows().iter().map(|r| ints(r)).collect();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Semi and anti join partition the left input.
    #[test]
    fn semi_anti_partition_left(
        left in arb_table(2, 5, 30),
        right in arb_table(1, 5, 30),
    ) {
        let cat = Catalog::new();
        cat.create("l", left.clone()).unwrap();
        cat.create("r", right).unwrap();
        let exec = Executor::new(&cat);
        let semi = exec.execute_table(
            &Plan::scan("l").join(Plan::scan("r"), vec![0], vec![0], JoinKind::LeftSemi),
        ).unwrap();
        let anti = exec.execute_table(
            &Plan::scan("l").join(Plan::scan("r"), vec![0], vec![0], JoinKind::LeftAnti),
        ).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), left.len());
        // No row appears in both.
        let semi_keys: HashSet<Vec<i64>> = semi.rows().iter().map(|r| ints(r)).collect();
        for row in anti.rows() {
            prop_assert!(!semi_keys.contains(&ints(row)));
        }
    }

    /// DISTINCT yields exactly the set of unique rows and is idempotent.
    #[test]
    fn distinct_is_set_semantics(t in arb_table(2, 4, 50)) {
        let cat = Catalog::new();
        cat.create("t", t.clone()).unwrap();
        let exec = Executor::new(&cat);
        let once = exec.execute_table(&Plan::scan("t").distinct()).unwrap();
        let expected: HashSet<Vec<i64>> = t.rows().iter().map(|r| ints(r)).collect();
        prop_assert_eq!(once.len(), expected.len());
        let twice = exec.execute_table(&Plan::scan("t").distinct().distinct()).unwrap();
        prop_assert_eq!(twice.len(), once.len());
    }

    /// COUNT(*) group-by agrees with a HashMap count.
    #[test]
    fn groupby_count_matches_hashmap(t in arb_table(2, 5, 60)) {
        let cat = Catalog::new();
        cat.create("t", t.clone()).unwrap();
        let plan = Plan::scan("t").aggregate(
            vec![0],
            vec![AggExpr::new(AggFunc::CountStar, "n")],
        );
        let out = Executor::new(&cat).execute_table(&plan).unwrap();
        let mut expected: HashMap<i64, i64> = HashMap::new();
        for row in t.rows() {
            *expected.entry(row[0].as_int().unwrap()).or_default() += 1;
        }
        prop_assert_eq!(out.len(), expected.len());
        for row in out.rows() {
            let g = row[0].as_int().unwrap();
            prop_assert_eq!(row[1].as_int().unwrap(), expected[&g]);
        }
    }

    /// UNION ALL preserves multiplicity: |A ∪B B| = |A| + |B|.
    #[test]
    fn union_all_preserves_bag_cardinality(
        a in arb_table(2, 4, 30),
        b in arb_table(2, 4, 30),
    ) {
        let cat = Catalog::new();
        cat.create("a", a.clone()).unwrap();
        cat.create("b", b.clone()).unwrap();
        let out = Executor::new(&cat)
            .execute_table(&Plan::scan("a").union_all(Plan::scan("b")))
            .unwrap();
        prop_assert_eq!(out.len(), a.len() + b.len());
    }

    /// Filter keeps exactly the rows satisfying the predicate.
    #[test]
    fn filter_agrees_with_predicate(t in arb_table(2, 8, 60), threshold in 0i64..8) {
        let cat = Catalog::new();
        cat.create("t", t.clone()).unwrap();
        let plan = Plan::scan("t").filter(Expr::col(0).lt(Expr::lit(threshold)));
        let out = Executor::new(&cat).execute_table(&plan).unwrap();
        let expected = t
            .rows()
            .iter()
            .filter(|r| r[0].as_int().unwrap() < threshold)
            .count();
        prop_assert_eq!(out.len(), expected);
    }

    /// Sort output is ordered and a permutation of the input.
    #[test]
    fn sort_orders_permutation(t in arb_table(2, 6, 50)) {
        let cat = Catalog::new();
        cat.create("t", t.clone()).unwrap();
        let out = Executor::new(&cat)
            .execute_table(&Plan::scan("t").sort(vec![0, 1]))
            .unwrap();
        prop_assert_eq!(out.len(), t.len());
        for pair in out.rows().windows(2) {
            prop_assert!(ints(&pair[0]) <= ints(&pair[1]));
        }
        let mut a: Vec<Vec<i64>> = t.rows().iter().map(|r| ints(r)).collect();
        let mut b: Vec<Vec<i64>> = out.rows().iter().map(|r| ints(r)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// HashIndex probes agree with a linear scan.
    #[test]
    fn index_agrees_with_scan(t in arb_table(2, 5, 50), probe in 0i64..5) {
        let idx = HashIndex::build(&t, &[0]);
        let expected: Vec<usize> = t
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, r)| r[0] == Value::Int(probe))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(idx.get(&[Value::Int(probe)]).to_vec(), expected);
    }

    /// dedup_by_cols leaves one row per key and keeps first occurrences.
    #[test]
    fn dedup_by_cols_one_per_key(t in arb_table(3, 4, 50)) {
        let mut deduped = t.clone();
        deduped.dedup_by_cols(&[0, 1]);
        let keys: HashSet<Vec<Value>> = t.distinct_keys(&[0, 1]);
        prop_assert_eq!(deduped.len(), keys.len());
        // First occurrence preserved: the first row of t (if any) survives.
        if let Some(first) = t.rows().first() {
            prop_assert_eq!(&deduped.rows()[0], first);
        }
    }
}
