//! Human-readable renderings: the grounding query plans (the Queries 1-i
//! / 2-i of Figure 3) and run reports.

use std::fmt::Write as _;

use probkb_relational::explain::{explain as explain_plan, fmt_duration};

use crate::grounding::GroundingReport;
use crate::queries::{ground_atoms_plan, ground_factors_plan, singleton_factors_plan};
use crate::relmodel::{names, RelationalKb};

/// Render every grounding query of a loaded KB as EXPLAIN trees — one
/// `groundAtoms` (Query 1-i) and one `groundFactors` (Query 2-i) plan per
/// non-empty partition, plus the singleton-factor scan.
pub fn explain_grounding(rel: &RelationalKb) -> String {
    let mut out = String::new();
    for (pattern, table) in &rel.mln {
        let m_name = names::mln(pattern.index());
        let _ = writeln!(
            out,
            "-- partition {pattern} ({} rules) --",
            table.len()
        );
        let _ = writeln!(out, "Query 1-{} (groundAtoms):", pattern.index());
        out.push_str(&indent(&explain_plan(&ground_atoms_plan(
            *pattern, &m_name, names::TPI,
        ))));
        let _ = writeln!(out, "Query 2-{} (groundFactors):", pattern.index());
        out.push_str(&indent(&explain_plan(&ground_factors_plan(
            *pattern, &m_name, names::TPI,
        ))));
    }
    out.push_str("-- singleton factors --\n");
    out.push_str(&indent(&explain_plan(&singleton_factors_plan(names::TPI))));
    out
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}\n"))
        .collect()
}

/// Format an `EXPLAIN ANALYZE`-style annotation line: `name  (k=v, k=v)` —
/// the same shape the relational executor prints for plan nodes
/// (`Hash Join …  (rows=600, time=1.20ms, workers=4)`), reused by the
/// inference reporting so grounding and sampling reports read alike.
pub fn annotate(name: &str, pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}  ({})", body.join(", "))
}

/// Render a grounding report as the per-iteration table the harnesses
/// print (engine, load, iterations, factor pass, totals).
pub fn render_report(report: &GroundingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: load {}, {} iterations ({}), factors {} ({} queries)",
        report.engine,
        fmt_duration(report.load_time),
        report.iterations.len(),
        if report.converged { "converged" } else { "capped" },
        fmt_duration(report.factor_time),
        report.factor_queries,
    );
    if report.precleaned > 0 {
        let _ = writeln!(out, "  preclean removed {} facts", report.precleaned);
    }
    for iter in &report.iterations {
        let _ = writeln!(
            out,
            "  iter {}: +{} facts, -{} deleted, {} total, {} queries, {}",
            iter.iteration,
            iter.new_facts,
            iter.deleted_facts,
            iter.facts_after,
            iter.queries,
            fmt_duration(iter.elapsed),
        );
    }
    let _ = writeln!(
        out,
        "  final: {} facts, {} factors, total {}",
        report.total_facts,
        report.total_factors,
        fmt_duration(report.total_time()),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grounding::{ground, GroundingConfig};
    use crate::relmodel::load;
    use crate::single_node::SingleNodeEngine;
    use probkb_kb::prelude::parse;

    fn kb() -> probkb_kb::prelude::ProbKb {
        parse(
            r#"
            fact 0.96 born_in(RG:Writer, NYC:City)
            rule 1.53 live_in(x:Writer, y:City) :- born_in(x, y)
            rule 0.52 located_in(x:City, y:City) :- born_in(z:Writer, x), born_in(z, y)
            "#,
        )
        .unwrap()
        .build()
    }

    #[test]
    fn explain_covers_every_partition() {
        let rel = load(&kb());
        let text = explain_grounding(&rel);
        assert!(text.contains("Query 1-1"));
        assert!(text.contains("Query 2-1"));
        assert!(text.contains("Query 1-3"));
        assert!(text.contains("Query 2-3"));
        assert!(text.contains("singleton factors"));
        assert!(text.contains("Seq Scan on T_pi"));
        assert!(text.contains("Hash Join"));
        // Length-3 plans join TΠ twice in the body plus once for the head.
        let tpi_scans = text.matches("Seq Scan on T_pi").count();
        assert!(tpi_scans >= 6, "got {tpi_scans} TΠ scans");
    }

    #[test]
    fn annotate_mirrors_plan_node_shape() {
        let line = annotate(
            "PartitionedGibbs",
            &[
                ("workers", "4".into()),
                ("sweeps", "600".into()),
                ("rhat", "1.0042".into()),
            ],
        );
        assert_eq!(line, "PartitionedGibbs  (workers=4, sweeps=600, rhat=1.0042)");
        assert_eq!(annotate("X", &[]), "X  ()");
    }

    #[test]
    fn report_renders_iterations_and_totals() {
        let mut engine = SingleNodeEngine::new();
        let out = ground(&kb(), &mut engine, &GroundingConfig::default()).unwrap();
        let text = render_report(&out.report);
        assert!(text.starts_with("ProbKB:"));
        assert!(text.contains("iter 1:"));
        assert!(text.contains("converged"));
        assert!(text.contains("final:"));
    }
}
